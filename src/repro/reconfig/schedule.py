"""Reconfiguration scenarios: declarative timelines of module changes.

A :class:`Scenario` is a list of timed operations (install / swap /
remove) applied through a :class:`ReconfigurationManager`. Scenarios
make multi-phase experiments reproducible and printable: the E6-style
studies, the examples, and user experiments all share this runner.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fabric.geometry import Rect
from repro.reconfig.manager import ReconfigurationManager, SwapRecord
from repro.reconfig.module import ModuleSpec


class OpKind(enum.Enum):
    INSTALL = "install"
    SWAP = "swap"
    REMOVE = "remove"


@dataclass(frozen=True)
class ScheduledOp:
    """One timed reconfiguration request."""

    at_cycle: int
    kind: OpKind
    region: Rect
    module_out: str = ""                     # SWAP / REMOVE
    module_in: Optional[ModuleSpec] = None   # SWAP / INSTALL
    attach_kwargs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.at_cycle < 0:
            raise ValueError("at_cycle must be >= 0")
        if self.kind in (OpKind.SWAP, OpKind.REMOVE) and not self.module_out:
            raise ValueError(f"{self.kind.value} needs module_out")
        if self.kind in (OpKind.SWAP, OpKind.INSTALL) and self.module_in is None:
            raise ValueError(f"{self.kind.value} needs module_in")


class Scenario:
    """An ordered reconfiguration timeline bound to one manager."""

    def __init__(self, manager: ReconfigurationManager):
        self.manager = manager
        self._ops: List[ScheduledOp] = []
        self.records: List[SwapRecord] = []
        self._armed = False

    # -- declarative construction ----------------------------------------
    def install(self, at_cycle: int, spec: ModuleSpec, region: Rect,
                **attach_kwargs: object) -> "Scenario":
        self._add(ScheduledOp(at_cycle, OpKind.INSTALL, region,
                              module_in=spec,
                              attach_kwargs=dict(attach_kwargs)))
        return self

    def swap(self, at_cycle: int, module_out: str, spec: ModuleSpec,
             region: Rect, **attach_kwargs: object) -> "Scenario":
        self._add(ScheduledOp(at_cycle, OpKind.SWAP, region,
                              module_out=module_out, module_in=spec,
                              attach_kwargs=dict(attach_kwargs)))
        return self

    def remove(self, at_cycle: int, module_out: str,
               region: Rect) -> "Scenario":
        self._add(ScheduledOp(at_cycle, OpKind.REMOVE, region,
                              module_out=module_out))
        return self

    def _add(self, op: ScheduledOp) -> None:
        if self._armed:
            raise RuntimeError("scenario already armed; build first")
        self._ops.append(op)

    @property
    def ops(self) -> List[ScheduledOp]:
        return sorted(self._ops, key=lambda o: o.at_cycle)

    # -- execution ---------------------------------------------------------
    def arm(self) -> None:
        """Schedule every operation on the manager's simulator."""
        if self._armed:
            raise RuntimeError("scenario already armed")
        self._armed = True
        sim = self.manager.sim
        for op in self.ops:
            sim.at(op.at_cycle, self._runner(op))

    def _runner(self, op: ScheduledOp):
        def run(_sim) -> None:
            if op.kind is OpKind.INSTALL:
                rec = self.manager.install(op.module_in, op.region,
                                           **op.attach_kwargs)
            elif op.kind is OpKind.SWAP:
                rec = self.manager.swap(op.module_out, op.module_in,
                                        op.region, **op.attach_kwargs)
            else:
                rec = self.manager.remove(op.module_out, op.region)
            self.records.append(rec)

        return run

    @property
    def done(self) -> bool:
        return (
            self._armed
            and len(self.records) == len(self._ops)
            and all(r.done for r in self.records)
        )

    def run_to_completion(self, max_cycles: int = 10_000_000) -> int:
        """Arm (if needed) and run the simulator until every op finished."""
        if not self._armed:
            self.arm()
        return self.manager.sim.run_until(lambda s: self.done,
                                          max_cycles=max_cycles)

    def report(self) -> str:
        lines = [f"scenario: {len(self._ops)} operations, "
                 f"{len(self.records)} executed"]
        for rec in self.records:
            what = (f"{rec.module_out or '(free)'} -> "
                    f"{rec.module_in or '(blank)'}")
            state = (f"done @{rec.attach_cycle}" if rec.done
                     else "in progress")
            lines.append(f"  [{rec.requested_cycle:>8}] {what:24s} "
                         f"region {rec.region} {state}")
        return "\n".join(lines)
