"""Dynamic partial reconfiguration: modules, placement, and the manager.

The survey's subject is *communication during reconfiguration*; this
package supplies the reconfiguration side: hardware-module descriptors,
online placement (1D column slots for the bus architectures, 2D
rectangles for the NoCs), and a :class:`ReconfigurationManager` that
serializes operations over the single configuration port, charges the
frame-based bitstream cost from :mod:`repro.fabric.bitstream`, and
drives each architecture's freeze/detach/attach hooks in the right
order.
"""

from repro.reconfig.defrag import (
    Move,
    execute_plan,
    fragmentation,
    largest_free_rectangle,
    plan_compaction,
)
from repro.reconfig.module import ModuleSpec
from repro.reconfig.placement import FreeRectPlacer, PlacementError
from repro.reconfig.repository import ModuleRepository, RepositoryError, Variant
from repro.reconfig.manager import ReconfigurationManager, SwapRecord
from repro.reconfig.schedule import OpKind, Scenario, ScheduledOp

__all__ = [
    "FreeRectPlacer",
    "ModuleSpec",
    "ModuleRepository",
    "RepositoryError",
    "Move",
    "OpKind",
    "PlacementError",
    "ReconfigurationManager",
    "Scenario",
    "ScheduledOp",
    "SwapRecord",
    "Variant",
    "execute_plan",
    "fragmentation",
    "largest_free_rectangle",
    "plan_compaction",
]
