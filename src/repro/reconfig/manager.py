"""The reconfiguration manager: serialized module exchange over one
configuration port, with architecture-specific freeze semantics.

A swap proceeds through the phases real DPR systems go through:

1. **quiesce** — wait until no in-flight message involves the outgoing
   module (the application-level discipline the paper assumes: peers
   must stop addressing a module that is about to be swapped);
2. **freeze + detach + rewrite** — the slot/region is isolated for the
   rewrite window (RMBoC cross-points freeze so only established
   channels keep working; BUS-COM stops granting the module's slots;
   the NoCs need nothing — only the module's own region is touched),
   the module leaves the interconnect, and the region's configuration
   frames are rewritten; the duration comes from the frame-based
   bitstream model at the architecture's own clock;
3. **attach + unfreeze** — the incoming module joins at the same
   placement and traffic resumes.

Operations queue FIFO on the single configuration port, exactly like a
single ICAP on silicon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.arch.base import CommArchitecture
from repro.fabric.bitstream import ConfigPort, ReconfigTimingModel
from repro.fabric.device import Device
from repro.fabric.geometry import Rect
from repro.reconfig.module import ModuleSpec
from repro.sim import SimError, Simulator
from repro.sim.backoff import bounded_backoff


@dataclass
class SwapRecord:
    """Bookkeeping for one module exchange."""

    module_out: str
    module_in: str
    region: Rect
    requested_cycle: int
    freeze_cycle: int = -1
    detach_cycle: int = -1
    attach_cycle: int = -1
    reconfig_cycles: int = 0
    aborted: bool = False      # quiesce deadline hit; operation dropped
    rolled_back: bool = False  # corrupted bitstream; old module restored
    retries: int = 0           # rewrite attempts beyond the first

    @property
    def done(self) -> bool:
        return self.attach_cycle >= 0

    @property
    def total_cycles(self) -> int:
        if not self.done:
            raise ValueError("swap not finished")
        return self.attach_cycle - self.requested_cycle

    @property
    def downtime_cycles(self) -> int:
        """Cycles the slot had no operational module."""
        if not self.done:
            raise ValueError("swap not finished")
        return self.attach_cycle - self.detach_cycle


class ReconfigurationManager:
    """Serializes reconfiguration operations for one architecture."""

    def __init__(self, arch: CommArchitecture, device: Device,
                 port: Optional[ConfigPort] = None,
                 quiesce_timeout: int = 100_000,
                 strict_quiesce: bool = False,
                 max_retries: int = 3,
                 retry_backoff: int = 64,
                 retry_backoff_cap: int = 4096):
        self.arch = arch
        self.sim: Simulator = arch.sim
        self.timing = ReconfigTimingModel(device, port or ConfigPort())
        self.quiesce_timeout = quiesce_timeout
        #: True restores the pre-hardening behaviour: a quiesce deadline
        #: raises SimError instead of aborting the operation gracefully
        self.strict_quiesce = strict_quiesce
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        #: clamp on the exponential retry wait — the fault path (RMBoC
        #: ``fault_backoff_cap``) was capped but this path was not, so
        #: a high ``max_retries`` could grow an unbounded stall
        self.retry_backoff_cap = retry_backoff_cap
        self.records: List[SwapRecord] = []
        self._busy = False
        self._pending: List[Callable[[], None]] = []
        # fault hooks (armed by repro.faults)
        self._corrupt_next = 0
        self._corrupt_notify: Optional[Callable[[str, int], None]] = None
        self._quiesce_stick = 0
        self._stick_notify: Optional[Callable[[str, int], None]] = None

    # ------------------------------------------------------------------
    # fault hooks (repro.faults)
    # ------------------------------------------------------------------
    def fault_corrupt_next(
        self, notify: Optional[Callable[[str, int], None]] = None,
        count: int = 1,
    ) -> None:
        """Arm a bitstream-integrity failure for the next ``count`` swap
        rewrites: each affected rewrite completes, fails its readback
        check, and triggers the bounded retry/rollback machinery.
        ``notify(phase, cycle)`` fires at ``"detected"``/``"recovered"``."""
        self._corrupt_next += count
        self._corrupt_notify = notify

    def fault_stick_quiesce(
        self, extra_cycles: int,
        notify: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        """Arm a stuck quiescence: the next swap/removal's quiesce phase
        refuses to complete for ``extra_cycles`` beyond its start.  If
        that crosses ``quiesce_timeout`` the operation aborts gracefully
        (or raises under ``strict_quiesce``)."""
        if extra_cycles < 1:
            raise ValueError("extra_cycles must be >= 1")
        self._quiesce_stick = extra_cycles
        self._stick_notify = notify

    def _take_stick(self, quiesce_from: int):
        """Consume an armed stuck-quiesce for a quiesce starting now."""
        stick_until = quiesce_from + self._quiesce_stick
        notify, self._stick_notify = self._stick_notify, None
        self._quiesce_stick = 0
        return stick_until, notify

    def _abort_quiesce(
        self, record: SwapRecord, rid: int, kind: str,
        stick_notify: Optional[Callable[[str, int], None]],
        on_done: Optional[Callable[[SwapRecord], None]],
    ) -> None:
        """Graceful degradation at the quiesce deadline: drop the
        operation, alert, and keep the system running on the old module
        instead of hanging the configuration port forever."""
        sim = self.sim
        record.aborted = True
        sim.stats.counter("reconfig.quiesce_aborted").inc()
        if sim.telemetering:
            sim.telemetry.count(sim.cycle, "reconfig.quiesce_aborted")
        if sim.tracing:
            sim.emit("reconfig", "quiesce_aborted", out=record.module_out,
                     kind=kind)
            sim.span_end("reconfig", "quiesce", key=rid, status="aborted")
            sim.span_end("reconfig", kind, key=rid, status="aborted")
        if stick_notify is not None:
            stick_notify("detected", sim.cycle)
            stick_notify("recovered", sim.cycle)
        self._busy = False
        if on_done is not None:
            on_done(record)
        if self._pending:
            self._pending.pop(0)()

    # ------------------------------------------------------------------
    def module_quiescent(self, module: str) -> bool:
        """No undelivered message involves ``module``."""
        return not any(
            m.src == module or m.dst == module
            for m in self.arch.log.pending()
        )

    def reconfig_cycles(self, region: Rect) -> int:
        """User-clock cycles to rewrite ``region`` on this architecture."""
        return self.timing.cycles(region, self.arch.fmax_hz())

    @property
    def busy(self) -> bool:
        return self._busy or bool(self._pending)

    # ------------------------------------------------------------------
    def swap(
        self,
        module_out: str,
        module_in: ModuleSpec,
        region: Rect,
        on_done: Optional[Callable[[SwapRecord], None]] = None,
        **attach_kwargs: object,
    ) -> SwapRecord:
        """Queue an exchange of ``module_out`` for ``module_in``.

        ``attach_kwargs`` are forwarded to ``arch.attach`` for the
        incoming module (e.g. ``rect``/``access`` for DyNoC,
        ``rect``/``switch`` for CoNoChi); when omitted, the outgoing
        module's placement is reused where the architecture allows it.
        """
        record = SwapRecord(
            module_out=module_out,
            module_in=module_in.name,
            region=region,
            requested_cycle=self.sim.cycle,
        )
        self.records.append(record)
        rid = len(self.records) - 1
        if self.sim.tracing:
            self.sim.span_begin("reconfig", "swap", key=rid,
                               out=module_out, into=module_in.name)

        def start() -> None:
            self._begin(record, rid, module_in, dict(attach_kwargs), on_done)

        if self._busy:
            self._pending.append(start)
        else:
            start()
        return record

    def install(
        self,
        module_in: ModuleSpec,
        region: Rect,
        on_done: Optional[Callable[[SwapRecord], None]] = None,
        **attach_kwargs: object,
    ) -> SwapRecord:
        """Configure a new module into a free region (no outgoing module)."""
        record = SwapRecord(
            module_out="",
            module_in=module_in.name,
            region=region,
            requested_cycle=self.sim.cycle,
        )
        self.records.append(record)
        rid = len(self.records) - 1
        if self.sim.tracing:
            self.sim.span_begin("reconfig", "install", key=rid,
                                into=module_in.name)

        def start() -> None:
            self._busy = True
            record.freeze_cycle = self.sim.cycle
            record.detach_cycle = self.sim.cycle
            record.reconfig_cycles = self.reconfig_cycles(region)
            if self.sim.tracing:
                self.sim.emit("reconfig", "rewrite_start", out="",
                              into=module_in.name,
                              cycles=record.reconfig_cycles)
                self.sim.span_begin("reconfig", "rewrite", key=rid,
                                    into=module_in.name)
            self.sim.stats.counter("reconfig.installs").inc()

            def finish(sim: Simulator) -> None:
                self.arch.attach(module_in.name, **attach_kwargs)
                self._unfreeze_new(record)
                if sim.tracing:
                    sim.emit("reconfig", "attached", module=module_in.name)
                    sim.span_end("reconfig", "rewrite", key=rid)
                    sim.span_end("reconfig", "install", key=rid)
                record.attach_cycle = sim.cycle
                self._busy = False
                if on_done is not None:
                    on_done(record)
                if self._pending:
                    self._pending.pop(0)()

            self.sim.after(record.reconfig_cycles, finish)

        if self._busy:
            self._pending.append(start)
        else:
            start()
        return record

    def remove(
        self,
        module_out: str,
        region: Rect,
        on_done: Optional[Callable[[SwapRecord], None]] = None,
    ) -> SwapRecord:
        """Blank a module's region (quiesce, detach, rewrite; no attach).

        The record's ``attach_cycle`` marks blanking completion.
        """
        record = SwapRecord(
            module_out=module_out,
            module_in="",
            region=region,
            requested_cycle=self.sim.cycle,
        )
        self.records.append(record)
        rid = len(self.records) - 1
        if self.sim.tracing:
            self.sim.span_begin("reconfig", "remove", key=rid,
                                out=module_out)

        def start() -> None:
            self._busy = True
            quiesce_from = self.sim.cycle
            deadline = quiesce_from + self.quiesce_timeout
            stick_until, stick_notify = self._take_stick(quiesce_from)
            if self.sim.tracing:
                self.sim.span_begin("reconfig", "quiesce", key=rid,
                                    out=module_out)

            def poll(sim: Simulator) -> None:
                if (sim.cycle >= stick_until
                        and self.module_quiescent(module_out)):
                    if sim.telemetering:
                        sim.telemetry.record_quiesce(
                            sim.cycle, sim.cycle - quiesce_from
                        )
                    if sim.tracing:
                        sim.span_end("reconfig", "quiesce", key=rid)
                        sim.span_begin("reconfig", "rewrite", key=rid,
                                       out=module_out)
                    if stick_notify is not None:
                        stick_notify("recovered", sim.cycle)
                    self._freeze(module_out)
                    record.freeze_cycle = sim.cycle
                    record.detach_cycle = sim.cycle
                    self.arch.detach(module_out)
                    record.reconfig_cycles = self.reconfig_cycles(region)
                    self.sim.stats.counter("reconfig.removals").inc()

                    def finish(s2: Simulator) -> None:
                        record.attach_cycle = s2.cycle
                        if s2.tracing:
                            s2.span_end("reconfig", "rewrite", key=rid)
                            s2.span_end("reconfig", "remove", key=rid)
                        self._busy = False
                        if on_done is not None:
                            on_done(record)
                        if self._pending:
                            self._pending.pop(0)()

                    sim.after(record.reconfig_cycles, finish)
                elif sim.cycle >= deadline:
                    if self.strict_quiesce:
                        raise SimError(
                            f"removal of {module_out!r}: traffic did not "
                            f"quiesce within {self.quiesce_timeout} cycles"
                        )
                    self._abort_quiesce(record, rid, "remove",
                                        stick_notify, on_done)
                else:
                    sim.after(1, poll)

            self.sim.after(0, poll)

        if self._busy:
            self._pending.append(start)
        else:
            start()
        return record

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def _begin(self, record: SwapRecord, rid: int, spec: ModuleSpec,
               attach_kwargs: Dict[str, object],
               on_done: Optional[Callable[[SwapRecord], None]]) -> None:
        self._busy = True
        rollback_kwargs = self._capture_placement(record.module_out)
        placement_kwargs = dict(rollback_kwargs)
        placement_kwargs.update(attach_kwargs)
        quiesce_from = self.sim.cycle
        deadline = quiesce_from + self.quiesce_timeout
        stick_until, stick_notify = self._take_stick(quiesce_from)
        if self.sim.tracing:
            self.sim.span_begin("reconfig", "quiesce", key=rid,
                                out=record.module_out)

        def poll_quiesce(sim: Simulator) -> None:
            if (sim.cycle >= stick_until
                    and self.module_quiescent(record.module_out)):
                if sim.telemetering:
                    sim.telemetry.record_quiesce(
                        sim.cycle, sim.cycle - quiesce_from
                    )
                if sim.tracing:
                    sim.span_end("reconfig", "quiesce", key=rid)
                if stick_notify is not None:
                    stick_notify("recovered", sim.cycle)
                self._rewrite(record, rid, spec, placement_kwargs,
                              rollback_kwargs, on_done)
            elif sim.cycle >= deadline:
                if self.strict_quiesce:
                    raise SimError(
                        f"swap of {record.module_out!r}: traffic did not "
                        f"quiesce within {self.quiesce_timeout} cycles"
                    )
                self._abort_quiesce(record, rid, "swap",
                                    stick_notify, on_done)
            else:
                sim.after(1, poll_quiesce)

        self.sim.after(0, poll_quiesce)

    def _rewrite(self, record: SwapRecord, rid: int, spec: ModuleSpec,
                 placement_kwargs: Dict[str, object],
                 rollback_kwargs: Dict[str, object],
                 on_done: Optional[Callable[[SwapRecord], None]]) -> None:
        arch = self.arch
        # Freeze only for the rewrite window itself: traffic was already
        # quiesced, and draining must not be blocked by the freeze.
        record.freeze_cycle = self.sim.cycle
        self._freeze(record.module_out)
        record.detach_cycle = self.sim.cycle
        arch.detach(record.module_out)
        self.sim.stats.counter("reconfig.swaps").inc()
        self._attempt(record, rid, spec, placement_kwargs,
                      rollback_kwargs, on_done)

    def _attempt(self, record: SwapRecord, rid: int, spec: ModuleSpec,
                 placement_kwargs: Dict[str, object],
                 rollback_kwargs: Dict[str, object],
                 on_done: Optional[Callable[[SwapRecord], None]]) -> None:
        """One rewrite of the (already detached) region; the completion
        integrity check routes to attach, retry, or rollback."""
        arch = self.arch
        cycles = self.reconfig_cycles(record.region)
        record.reconfig_cycles += cycles
        if self.sim.tracing:
            self.sim.emit("reconfig", "rewrite_start", out=record.module_out,
                          into=record.module_in, cycles=cycles)
            self.sim.span_begin("reconfig", "rewrite", key=rid,
                                out=record.module_out, into=record.module_in)
        self.sim.stats.counter("reconfig.cycles").inc(cycles)

        def finish(sim: Simulator) -> None:
            if self._corrupt_next > 0:
                # readback/CRC failed: the frames written are garbage
                self._corrupt_next -= 1
                if sim.tracing:
                    sim.span_end("reconfig", "rewrite", key=rid,
                                 status="corrupt")
                self._on_corrupt(record, rid, spec, placement_kwargs,
                                 rollback_kwargs, on_done)
                return
            arch.attach(spec.name, **placement_kwargs)
            if sim.tracing:
                sim.emit("reconfig", "attached", module=spec.name)
                sim.span_end("reconfig", "rewrite", key=rid)
                sim.span_end("reconfig", "swap", key=rid)
            self._unfreeze_new(record)
            record.attach_cycle = sim.cycle
            if record.retries and self._corrupt_notify is not None:
                notify, self._corrupt_notify = self._corrupt_notify, None
                notify("recovered", sim.cycle)
            self._busy = False
            if on_done is not None:
                on_done(record)
            if self._pending:
                self._pending.pop(0)()

        self.sim.after(cycles, finish)

    def _on_corrupt(self, record: SwapRecord, rid: int, spec: ModuleSpec,
                    placement_kwargs: Dict[str, object],
                    rollback_kwargs: Dict[str, object],
                    on_done: Optional[Callable[[SwapRecord], None]]) -> None:
        sim = self.sim
        sim.stats.counter("reconfig.bitstream_corrupt").inc()
        if sim.telemetering:
            sim.telemetry.count(sim.cycle, "reconfig.bitstream_corrupt")
        if sim.tracing:
            sim.emit("reconfig", "bitstream_corrupt",
                     into=record.module_in, attempt=record.retries + 1)
        if self._corrupt_notify is not None and record.retries == 0:
            self._corrupt_notify("detected", sim.cycle)
        if record.retries < self.max_retries:
            # bounded retry with exponential backoff before re-driving
            # the configuration port
            record.retries += 1
            backoff = bounded_backoff(self.retry_backoff, record.retries,
                                      cap=self.retry_backoff_cap)
            sim.stats.counter("reconfig.retries").inc()
            sim.after(backoff,
                      lambda s: self._attempt(record, rid, spec,
                                              placement_kwargs,
                                              rollback_kwargs, on_done))
            return
        # retries exhausted: roll back — rewrite the region with the
        # outgoing module's (known-good) frames and reattach it
        record.rolled_back = True
        sim.stats.counter("reconfig.rollbacks").inc()
        cycles = self.reconfig_cycles(record.region)
        record.reconfig_cycles += cycles
        if sim.tracing:
            sim.emit("reconfig", "rollback_start", out=record.module_out,
                     cycles=cycles)
            sim.span_begin("reconfig", "rewrite", key=rid,
                           into=record.module_out, rollback=True)

        def rollback_done(s2: Simulator) -> None:
            s2_arch = self.arch
            if record.module_out:
                s2_arch.attach(record.module_out, **rollback_kwargs)
                self._unfreeze_name(record.module_out)
            if s2.tracing:
                s2.emit("reconfig", "rolled_back", module=record.module_out)
                s2.span_end("reconfig", "rewrite", key=rid, rollback=True)
                s2.span_end("reconfig", "swap", key=rid,
                            status="rolled_back")
            record.attach_cycle = s2.cycle
            if self._corrupt_notify is not None:
                notify, self._corrupt_notify = self._corrupt_notify, None
                notify("recovered", s2.cycle)
            self._busy = False
            if on_done is not None:
                on_done(record)
            if self._pending:
                self._pending.pop(0)()

        sim.after(cycles, rollback_done)

    # ------------------------------------------------------------------
    # architecture-specific adapters
    # ------------------------------------------------------------------
    def _capture_placement(self, module: str) -> Dict[str, object]:
        arch = self.arch
        if arch.KEY == "rmboc":
            return {"xp": arch.xp_of(module)}  # type: ignore[attr-defined]
        if arch.KEY == "dynoc":
            pl = arch.placement_of(module)  # type: ignore[attr-defined]
            return {"rect": pl.rect, "access": pl.access}
        if arch.KEY == "conochi":
            rect = arch.grid.modules.get(module)  # type: ignore[attr-defined]
            out: Dict[str, object] = {
                "switch": arch._module_switch[module]  # type: ignore[attr-defined]
            }
            if rect is not None:
                out["rect"] = rect
            return out
        return {}

    def _freeze(self, module: str) -> None:
        arch = self.arch
        if arch.KEY == "rmboc":
            arch.freeze_slot(arch.xp_of(module))  # type: ignore[attr-defined]
        elif arch.KEY == "buscom":
            arch.freeze_module(module)  # type: ignore[attr-defined]
        # NoCs: reconfiguration only touches the module's own region.

    def _unfreeze_new(self, record: SwapRecord) -> None:
        self._unfreeze_name(record.module_in)

    def _unfreeze_name(self, module: str) -> None:
        arch = self.arch
        if arch.KEY == "rmboc":
            arch.unfreeze_slot(  # type: ignore[attr-defined]
                arch.xp_of(module)  # type: ignore[attr-defined]
            )
        # BUS-COM: the incoming module attaches unfrozen; the outgoing
        # module's frozen flag died with its detach.
