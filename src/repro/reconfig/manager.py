"""The reconfiguration manager: serialized module exchange over one
configuration port, with architecture-specific freeze semantics.

A swap proceeds through the phases real DPR systems go through:

1. **quiesce** — wait until no in-flight message involves the outgoing
   module (the application-level discipline the paper assumes: peers
   must stop addressing a module that is about to be swapped);
2. **freeze + detach + rewrite** — the slot/region is isolated for the
   rewrite window (RMBoC cross-points freeze so only established
   channels keep working; BUS-COM stops granting the module's slots;
   the NoCs need nothing — only the module's own region is touched),
   the module leaves the interconnect, and the region's configuration
   frames are rewritten; the duration comes from the frame-based
   bitstream model at the architecture's own clock;
3. **attach + unfreeze** — the incoming module joins at the same
   placement and traffic resumes.

Operations queue FIFO on the single configuration port, exactly like a
single ICAP on silicon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.arch.base import CommArchitecture
from repro.fabric.bitstream import ConfigPort, ReconfigTimingModel
from repro.fabric.device import Device
from repro.fabric.geometry import Rect
from repro.reconfig.module import ModuleSpec
from repro.sim import SimError, Simulator


@dataclass
class SwapRecord:
    """Bookkeeping for one module exchange."""

    module_out: str
    module_in: str
    region: Rect
    requested_cycle: int
    freeze_cycle: int = -1
    detach_cycle: int = -1
    attach_cycle: int = -1
    reconfig_cycles: int = 0

    @property
    def done(self) -> bool:
        return self.attach_cycle >= 0

    @property
    def total_cycles(self) -> int:
        if not self.done:
            raise ValueError("swap not finished")
        return self.attach_cycle - self.requested_cycle

    @property
    def downtime_cycles(self) -> int:
        """Cycles the slot had no operational module."""
        if not self.done:
            raise ValueError("swap not finished")
        return self.attach_cycle - self.detach_cycle


class ReconfigurationManager:
    """Serializes reconfiguration operations for one architecture."""

    def __init__(self, arch: CommArchitecture, device: Device,
                 port: Optional[ConfigPort] = None,
                 quiesce_timeout: int = 100_000):
        self.arch = arch
        self.sim: Simulator = arch.sim
        self.timing = ReconfigTimingModel(device, port or ConfigPort())
        self.quiesce_timeout = quiesce_timeout
        self.records: List[SwapRecord] = []
        self._busy = False
        self._pending: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    def module_quiescent(self, module: str) -> bool:
        """No undelivered message involves ``module``."""
        return not any(
            m.src == module or m.dst == module
            for m in self.arch.log.pending()
        )

    def reconfig_cycles(self, region: Rect) -> int:
        """User-clock cycles to rewrite ``region`` on this architecture."""
        return self.timing.cycles(region, self.arch.fmax_hz())

    @property
    def busy(self) -> bool:
        return self._busy or bool(self._pending)

    # ------------------------------------------------------------------
    def swap(
        self,
        module_out: str,
        module_in: ModuleSpec,
        region: Rect,
        on_done: Optional[Callable[[SwapRecord], None]] = None,
        **attach_kwargs: object,
    ) -> SwapRecord:
        """Queue an exchange of ``module_out`` for ``module_in``.

        ``attach_kwargs`` are forwarded to ``arch.attach`` for the
        incoming module (e.g. ``rect``/``access`` for DyNoC,
        ``rect``/``switch`` for CoNoChi); when omitted, the outgoing
        module's placement is reused where the architecture allows it.
        """
        record = SwapRecord(
            module_out=module_out,
            module_in=module_in.name,
            region=region,
            requested_cycle=self.sim.cycle,
        )
        self.records.append(record)
        rid = len(self.records) - 1
        if self.sim.tracing:
            self.sim.span_begin("reconfig", "swap", key=rid,
                               out=module_out, into=module_in.name)

        def start() -> None:
            self._begin(record, rid, module_in, dict(attach_kwargs), on_done)

        if self._busy:
            self._pending.append(start)
        else:
            start()
        return record

    def install(
        self,
        module_in: ModuleSpec,
        region: Rect,
        on_done: Optional[Callable[[SwapRecord], None]] = None,
        **attach_kwargs: object,
    ) -> SwapRecord:
        """Configure a new module into a free region (no outgoing module)."""
        record = SwapRecord(
            module_out="",
            module_in=module_in.name,
            region=region,
            requested_cycle=self.sim.cycle,
        )
        self.records.append(record)
        rid = len(self.records) - 1
        if self.sim.tracing:
            self.sim.span_begin("reconfig", "install", key=rid,
                                into=module_in.name)

        def start() -> None:
            self._busy = True
            record.freeze_cycle = self.sim.cycle
            record.detach_cycle = self.sim.cycle
            record.reconfig_cycles = self.reconfig_cycles(region)
            if self.sim.tracing:
                self.sim.emit("reconfig", "rewrite_start", out="",
                              into=module_in.name,
                              cycles=record.reconfig_cycles)
                self.sim.span_begin("reconfig", "rewrite", key=rid,
                                    into=module_in.name)
            self.sim.stats.counter("reconfig.installs").inc()

            def finish(sim: Simulator) -> None:
                self.arch.attach(module_in.name, **attach_kwargs)
                self._unfreeze_new(record)
                if sim.tracing:
                    sim.emit("reconfig", "attached", module=module_in.name)
                    sim.span_end("reconfig", "rewrite", key=rid)
                    sim.span_end("reconfig", "install", key=rid)
                record.attach_cycle = sim.cycle
                self._busy = False
                if on_done is not None:
                    on_done(record)
                if self._pending:
                    self._pending.pop(0)()

            self.sim.after(record.reconfig_cycles, finish)

        if self._busy:
            self._pending.append(start)
        else:
            start()
        return record

    def remove(
        self,
        module_out: str,
        region: Rect,
        on_done: Optional[Callable[[SwapRecord], None]] = None,
    ) -> SwapRecord:
        """Blank a module's region (quiesce, detach, rewrite; no attach).

        The record's ``attach_cycle`` marks blanking completion.
        """
        record = SwapRecord(
            module_out=module_out,
            module_in="",
            region=region,
            requested_cycle=self.sim.cycle,
        )
        self.records.append(record)
        rid = len(self.records) - 1
        if self.sim.tracing:
            self.sim.span_begin("reconfig", "remove", key=rid,
                                out=module_out)

        def start() -> None:
            self._busy = True
            quiesce_from = self.sim.cycle
            deadline = quiesce_from + self.quiesce_timeout
            if self.sim.tracing:
                self.sim.span_begin("reconfig", "quiesce", key=rid,
                                    out=module_out)

            def poll(sim: Simulator) -> None:
                if self.module_quiescent(module_out):
                    if sim.telemetering:
                        sim.telemetry.record_quiesce(
                            sim.cycle, sim.cycle - quiesce_from
                        )
                    if sim.tracing:
                        sim.span_end("reconfig", "quiesce", key=rid)
                        sim.span_begin("reconfig", "rewrite", key=rid,
                                       out=module_out)
                    self._freeze(module_out)
                    record.freeze_cycle = sim.cycle
                    record.detach_cycle = sim.cycle
                    self.arch.detach(module_out)
                    record.reconfig_cycles = self.reconfig_cycles(region)
                    self.sim.stats.counter("reconfig.removals").inc()

                    def finish(s2: Simulator) -> None:
                        record.attach_cycle = s2.cycle
                        if s2.tracing:
                            s2.span_end("reconfig", "rewrite", key=rid)
                            s2.span_end("reconfig", "remove", key=rid)
                        self._busy = False
                        if on_done is not None:
                            on_done(record)
                        if self._pending:
                            self._pending.pop(0)()

                    sim.after(record.reconfig_cycles, finish)
                elif sim.cycle >= deadline:
                    raise SimError(
                        f"removal of {module_out!r}: traffic did not "
                        f"quiesce within {self.quiesce_timeout} cycles"
                    )
                else:
                    sim.after(1, poll)

            self.sim.after(0, poll)

        if self._busy:
            self._pending.append(start)
        else:
            start()
        return record

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def _begin(self, record: SwapRecord, rid: int, spec: ModuleSpec,
               attach_kwargs: Dict[str, object],
               on_done: Optional[Callable[[SwapRecord], None]]) -> None:
        self._busy = True
        placement_kwargs = self._capture_placement(record.module_out)
        placement_kwargs.update(attach_kwargs)
        quiesce_from = self.sim.cycle
        deadline = quiesce_from + self.quiesce_timeout
        if self.sim.tracing:
            self.sim.span_begin("reconfig", "quiesce", key=rid,
                                out=record.module_out)

        def poll_quiesce(sim: Simulator) -> None:
            if self.module_quiescent(record.module_out):
                if sim.telemetering:
                    sim.telemetry.record_quiesce(
                        sim.cycle, sim.cycle - quiesce_from
                    )
                if sim.tracing:
                    sim.span_end("reconfig", "quiesce", key=rid)
                self._rewrite(record, rid, spec, placement_kwargs, on_done)
            elif sim.cycle >= deadline:
                raise SimError(
                    f"swap of {record.module_out!r}: traffic did not "
                    f"quiesce within {self.quiesce_timeout} cycles"
                )
            else:
                sim.after(1, poll_quiesce)

        self.sim.after(0, poll_quiesce)

    def _rewrite(self, record: SwapRecord, rid: int, spec: ModuleSpec,
                 placement_kwargs: Dict[str, object],
                 on_done: Optional[Callable[[SwapRecord], None]]) -> None:
        arch = self.arch
        # Freeze only for the rewrite window itself: traffic was already
        # quiesced, and draining must not be blocked by the freeze.
        record.freeze_cycle = self.sim.cycle
        self._freeze(record.module_out)
        record.detach_cycle = self.sim.cycle
        arch.detach(record.module_out)
        record.reconfig_cycles = self.reconfig_cycles(record.region)
        if self.sim.tracing:
            self.sim.emit("reconfig", "rewrite_start", out=record.module_out,
                          into=record.module_in,
                          cycles=record.reconfig_cycles)
            self.sim.span_begin("reconfig", "rewrite", key=rid,
                                out=record.module_out, into=record.module_in)
        self.sim.stats.counter("reconfig.swaps").inc()
        self.sim.stats.counter("reconfig.cycles").inc(record.reconfig_cycles)

        def finish(sim: Simulator) -> None:
            arch.attach(spec.name, **placement_kwargs)
            if sim.tracing:
                sim.emit("reconfig", "attached", module=spec.name)
                sim.span_end("reconfig", "rewrite", key=rid)
                sim.span_end("reconfig", "swap", key=rid)
            self._unfreeze_new(record)
            record.attach_cycle = sim.cycle
            self._busy = False
            if on_done is not None:
                on_done(record)
            if self._pending:
                self._pending.pop(0)()

        self.sim.after(record.reconfig_cycles, finish)

    # ------------------------------------------------------------------
    # architecture-specific adapters
    # ------------------------------------------------------------------
    def _capture_placement(self, module: str) -> Dict[str, object]:
        arch = self.arch
        if arch.KEY == "rmboc":
            return {"xp": arch.xp_of(module)}  # type: ignore[attr-defined]
        if arch.KEY == "dynoc":
            pl = arch.placement_of(module)  # type: ignore[attr-defined]
            return {"rect": pl.rect, "access": pl.access}
        if arch.KEY == "conochi":
            rect = arch.grid.modules.get(module)  # type: ignore[attr-defined]
            out: Dict[str, object] = {
                "switch": arch._module_switch[module]  # type: ignore[attr-defined]
            }
            if rect is not None:
                out["rect"] = rect
            return out
        return {}

    def _freeze(self, module: str) -> None:
        arch = self.arch
        if arch.KEY == "rmboc":
            arch.freeze_slot(arch.xp_of(module))  # type: ignore[attr-defined]
        elif arch.KEY == "buscom":
            arch.freeze_module(module)  # type: ignore[attr-defined]
        # NoCs: reconfiguration only touches the module's own region.

    def _unfreeze_new(self, record: SwapRecord) -> None:
        arch = self.arch
        if arch.KEY == "rmboc":
            arch.unfreeze_slot(  # type: ignore[attr-defined]
                arch.xp_of(record.module_in)  # type: ignore[attr-defined]
            )
        # BUS-COM: the incoming module attaches unfrozen; the outgoing
        # module's frozen flag died with its detach.
