"""Observation sessions: trace/profile simulators you didn't build.

The experiment harnesses construct their simulators internally — often
several per experiment — so there is no parameter to thread a tracer
through.  :class:`ObservationSession` instead installs a construction
hook (:func:`repro.sim.engine.set_new_sim_hook`): every
:class:`~repro.sim.Simulator` built while the session is active gets a
tracer attached and/or the profiler enabled, and is collected for
export afterwards::

    with ObservationSession(trace=True, profile=True) as obs:
        result = registry()["e1"]()
    write_chrome_trace("trace-e1.json", obs.sims)

This is what the ``repro trace`` / ``repro profile`` CLI subcommands
use.  Sessions nest by chaining to the previously installed hook;
exiting restores it.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.sim.engine import Simulator, set_new_sim_hook
from repro.sim.trace import Tracer

#: sentinel distinguishing "env var was unset" from "was empty string"
_UNSET = object()


class ObservationSession:
    """Attach observability to every Simulator constructed in scope.

    Parameters
    ----------
    trace:
        Attach a fresh :class:`Tracer` to each new simulator.
    profile:
        Enable the wall-clock profiler on each new simulator.
    telemetry:
        Attach a :class:`~repro.obs.flows.FlowTelemetry` (with an
        :class:`~repro.obs.alerts.AlertEngine` evaluating ``rules``)
        to each new simulator — the ``repro watch`` data source.
    journeys:
        Attach a :class:`~repro.obs.journey.JourneyRecorder` to each
        new simulator (the ``repro explain`` data source), sampling
        deterministically with ``journey_seed`` / ``journey_rate`` and
        bounded by ``journey_max_records``.
    rules:
        Alert rules for the telemetry engine (default: the canonical
        :func:`~repro.obs.alerts.default_rules` set).
    max_events / keep:
        Tracer capacity policy; the default keeps the *tail* so the end
        of long runs stays observable.
    engine:
        Simulation engine for every simulator the observed harness
        builds: ``"object"``, ``"vec"``, or None (leave the ambient
        default).  Implemented by setting
        :data:`repro.sim.vec.engine.ENGINE_ENV` for the duration of the
        session and restoring it on exit — the same channel
        ``repro sweep --engine`` uses, so observed runs and swept runs
        resolve the engine identically.
    """

    def __init__(self, trace: bool = True, profile: bool = False,
                 telemetry: bool = False, journeys: bool = False,
                 rules=None, max_events: int = 500_000, keep: str = "tail",
                 journey_rate: float = 1.0, journey_seed: int = 0,
                 journey_max_records: int = 100_000,
                 engine: Optional[str] = None):
        if engine is not None:
            from repro.sim.vec.engine import ENGINES

            if engine not in ENGINES:
                raise ValueError(
                    f"unknown engine {engine!r}; known: {ENGINES}")
        self.trace = trace
        self.profile = profile
        self.telemetry = telemetry
        self.journeys = journeys
        self.rules = rules
        self.max_events = max_events
        self.keep = keep
        self.journey_rate = journey_rate
        self.journey_seed = journey_seed
        self.journey_max_records = journey_max_records
        self.engine = engine
        #: every simulator constructed while the session was active
        self.sims: List[Simulator] = []
        self._prev = None
        self._active = False
        self._saved_engine_env = _UNSET

    # ------------------------------------------------------------------
    def _on_new_sim(self, sim: Simulator) -> None:
        if self.trace and sim.tracer is None:
            sim.tracer = Tracer(max_events=self.max_events, keep=self.keep)
        if self.profile and sim.profiler is None:
            from repro.obs.profile import Profiler

            sim.profile = True
            sim.profiler = Profiler()
        if self.telemetry and sim.telemetry is None:
            from repro.obs.alerts import AlertEngine
            from repro.obs.flows import FlowTelemetry

            tel = FlowTelemetry()
            # a private engine per simulator: breach episodes and burn
            # rates are per-fabric state (the rule list is shared)
            tel.engine = AlertEngine(self.rules)
            tel.attach(sim)
        if self.journeys and sim.journey is None:
            from repro.obs.journey import JourneyRecorder

            sim.journey = JourneyRecorder(
                seed=self.journey_seed, rate=self.journey_rate,
                max_records=self.journey_max_records)
        self.sims.append(sim)
        if self._prev is not None:
            self._prev(sim)

    def __enter__(self) -> "ObservationSession":
        if self._active:
            raise RuntimeError("ObservationSession is not re-entrant")
        self._active = True
        if self.engine is not None:
            from repro.sim.vec.engine import ENGINE_ENV

            self._saved_engine_env = os.environ.get(ENGINE_ENV, _UNSET)
            os.environ[ENGINE_ENV] = self.engine
        self._prev = set_new_sim_hook(self._on_new_sim)
        return self

    def __exit__(self, *exc_info: object) -> None:
        set_new_sim_hook(self._prev)
        self._prev = None
        self._active = False
        if self.engine is not None:
            from repro.sim.vec.engine import ENGINE_ENV

            if self._saved_engine_env is _UNSET:
                os.environ.pop(ENGINE_ENV, None)
            else:
                os.environ[ENGINE_ENV] = self._saved_engine_env
            self._saved_engine_env = _UNSET

    # ------------------------------------------------------------------
    @property
    def traced_sims(self) -> List[Simulator]:
        """Observed simulators that have a tracer attached."""
        return [s for s in self.sims if s.tracer is not None]

    def total_events(self) -> int:
        return sum(len(s.tracer) for s in self.traced_sims)

    def total_spans(self) -> int:
        return sum(len(s.tracer.spans) for s in self.traced_sims)

    @property
    def telemetry_sims(self) -> List[Simulator]:
        """Observed simulators that carry a telemetry collector."""
        return [s for s in self.sims if s.telemetry is not None]

    @property
    def journey_sims(self) -> List[Simulator]:
        """Observed simulators that carry a journey recorder."""
        return [s for s in self.sims if s.journey is not None]

    def flush_alerts(self) -> None:
        """Force a final rule evaluation on every observed simulator
        (so sub-eval_interval runs still surface their alerts)."""
        for sim in self.telemetry_sims:
            sim.telemetry.evaluate_now(sim.cycle)


def observe_named(name: str, trace: bool = True, profile: bool = False,
                  telemetry: bool = False, journeys: bool = False,
                  rules=None, max_events: int = 500_000, keep: str = "tail",
                  journey_rate: float = 1.0, journey_seed: int = 0,
                  journey_max_records: int = 100_000,
                  engine: Optional[str] = None,
                  ) -> "tuple[object, ObservationSession]":
    """Run a registered experiment/ablation harness under observation.

    Always runs serially in-process with the result cache bypassed —
    a cached result would have nothing to observe.  Returns
    ``(result, session)``.
    """
    from repro.analysis.parallel import registry

    harnesses = registry()
    if name not in harnesses:
        raise KeyError(
            f"unknown experiment {name!r}; known: "
            f"{', '.join(sorted(harnesses))}"
        )
    session = ObservationSession(trace=trace, profile=profile,
                                 telemetry=telemetry, journeys=journeys,
                                 rules=rules,
                                 max_events=max_events, keep=keep,
                                 journey_rate=journey_rate,
                                 journey_seed=journey_seed,
                                 journey_max_records=journey_max_records,
                                 engine=engine)
    with session:
        result = harnesses[name]()
    if telemetry:
        session.flush_alerts()
    return result, session
