"""Per-message journey records with hop-level latency attribution.

A :class:`JourneyRecorder` attaches a lightweight provenance record to
each in-flight :class:`~repro.arch.base.Message` and stamps *segments*
— source enqueue, arbitration/slot wait, link transit, router detour,
NI/fabric queueing, delivery — as the message moves through the fabric.
The stamp sites live in the architectures' object-code paths next to
the existing telemetry hooks, guarded by the cheap ``sim.journeying``
boolean, so a journeys-off run executes one dead boolean test per site
and stays bit-identical to pre-journey traces.

Stamping is *cursor-based*: every record keeps the last stamped cycle
(initially the creation cycle) and :meth:`JourneyRecorder.stamp_to`
appends ``(kind, cursor, end)`` and advances the cursor.  Segments are
therefore contiguous by construction — the attributed cycles of a
delivered message sum to ``delivered - created`` minus an explicit
residual, which is reported, never silently dropped.

Sampling is deterministic and engine-independent: the keep/skip
decision for message ``mid`` is a pure function of ``(seed, mid)`` (a
CRC32 threshold test), so the same seed samples the same messages on
the object and the vec engine, and across reruns.  ``max_records``
additionally caps memory (keep-first; the overflow count is reported).

On top of the raw records:

* :func:`aggregate_flows` decomposes per-flow latency into per-segment
  attributions;
* :func:`critical_path` reports the dominant segment chain behind the
  p50/p99 of a flow;
* :func:`build_journey_document` / :func:`explain_experiment` produce
  the stable ``repro.journey/1`` document behind ``repro explain``;
* :func:`validate_journey` structurally checks such a document (CI);
* :func:`render_explain` renders it for the terminal.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Optional, Tuple

#: stable schema tag for ``repro explain --json`` documents
JOURNEY_SCHEMA = "repro.journey/1"

#: every segment kind a stamp site may emit (closed vocabulary: the
#: validator rejects anything else, so a typo at a stamp site fails CI
#: instead of minting a new latency category)
SEGMENT_KINDS = (
    "source_enqueue",    # waiting in the sender's NI / injection queue
    "arbitration_wait",  # bus grant / router port / switch arbitration
    "slot_wait",         # TDMA slot alignment (BUS-COM)
    "setup_wait",        # circuit establishment (RMBoC channels)
    "ni_queue",          # network-interface serialization queues
    "link_transit",      # occupying a wire / bus / lane
    "router_detour",     # S-XY deviation hops around an obstacle (DyNoC)
    "delivery",          # final-hop ejection into the destination port
)

_CRC_DENOM = float(2 ** 32)


def sampled(seed: int, mid: int, rate: float) -> bool:
    """Pure keep/skip decision for message ``mid`` — identical across
    engines and reruns because it depends only on ``(seed, mid)``."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    h = zlib.crc32(f"{seed}/{mid}".encode("ascii")) & 0xFFFFFFFF
    return h / _CRC_DENOM < rate


class JourneyRecord:
    """Provenance of one sampled message."""

    __slots__ = ("mid", "src", "dst", "payload_bytes", "created",
                 "cursor", "segments", "delivered", "dropped",
                 "drop_why", "fault", "retrans_of")

    def __init__(self, mid: int, src: str, dst: str,
                 payload_bytes: int, created: int) -> None:
        self.mid = mid
        self.src = src
        self.dst = dst
        self.payload_bytes = payload_bytes
        self.created = created
        #: last stamped cycle — stamps always extend from here
        self.cursor = created
        #: contiguous ``[kind, start, end]`` triples (end exclusive of
        #: nothing: a segment covers cycles ``start .. end``)
        self.segments: List[List[Any]] = []
        self.delivered = -1
        self.dropped = False
        self.drop_why: Optional[str] = None
        #: causing fault, when a fault dropped this message or triggered
        #: it as a retransmission: {"index", "kind", "target", "injected"}
        self.fault: Optional[Dict[str, Any]] = None
        #: mid of the dropped original this message retransmits
        self.retrans_of: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def latency(self) -> Optional[int]:
        return self.delivered - self.created if self.delivered >= 0 else None

    @property
    def attributed(self) -> int:
        """Cycles covered by named segments (contiguous from created)."""
        return self.cursor - self.created

    @property
    def residual(self) -> Optional[int]:
        """Delivered cycles no stamp site claimed (explicit, reported)."""
        if self.delivered < 0:
            return None
        return max(0, self.delivered - self.cursor)

    def by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for kind, start, end in self.segments:
            out[kind] = out.get(kind, 0) + (end - start)
        return out

    def as_dict(self) -> Dict[str, Any]:
        return {
            "mid": self.mid,
            "src": self.src,
            "dst": self.dst,
            "bytes": self.payload_bytes,
            "created": self.created,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "drop_why": self.drop_why,
            "fault": self.fault,
            "retrans_of": self.retrans_of,
            "segments": [[k, s, e] for k, s, e in self.segments],
            "residual": self.residual,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("delivered" if self.delivered >= 0
                 else "dropped" if self.dropped else "pending")
        return (f"JourneyRecord(mid={self.mid}, {self.src}->{self.dst}, "
                f"{state}, segments={len(self.segments)})")


class JourneyRecorder:
    """Per-simulator journey store (attach via ``sim.journey = ...``).

    All hot-path methods tolerate unsampled mids (dict miss, return) so
    stamp sites never need their own sampling test.
    """

    def __init__(self, seed: int = 0, rate: float = 1.0,
                 max_records: int = 100_000) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.seed = int(seed)
        self.rate = float(rate)
        self.max_records = int(max_records)
        self.records: Dict[int, JourneyRecord] = {}
        #: messages skipped by the sampling decision
        self.sampled_out = 0
        #: messages skipped by the max_records cap (keep-first)
        self.capped = 0

    # ------------------------------------------------------------------
    # hot path — every method behind ``sim.journeying``
    # ------------------------------------------------------------------
    def start(self, msg, cycle: int) -> None:
        """Open a record for a freshly injected message (sampling and
        cap decisions happen here, once per message)."""
        if not sampled(self.seed, msg.mid, self.rate):
            self.sampled_out += 1
            return
        if len(self.records) >= self.max_records:
            self.capped += 1
            return
        self.records[msg.mid] = JourneyRecord(
            msg.mid, msg.src, msg.dst, msg.payload_bytes, cycle)

    def stamp_to(self, mid: int, kind: str, end: int) -> None:
        """Append segment ``(kind, cursor, end)`` and advance the
        cursor.  ``end <= cursor`` is a no-op (zero-length wait), and
        an adjacent same-kind segment is extended in place — so
        fragment-level stamps of one message merge into contiguous
        coverage instead of overlapping."""
        rec = self.records.get(mid)
        if rec is None or end <= rec.cursor:
            return
        segs = rec.segments
        if segs and segs[-1][0] == kind:
            segs[-1][2] = end
        else:
            segs.append([kind, rec.cursor, end])
        rec.cursor = end

    def finalize(self, msg, cycle: int) -> None:
        """The message was delivered at ``cycle``."""
        rec = self.records.get(msg.mid)
        if rec is not None:
            rec.delivered = cycle

    def drop(self, msg, cycle: int, why: str = "fault",
             fault: Optional[Dict[str, Any]] = None) -> None:
        """The message was consumed by a fault at ``cycle``."""
        rec = self.records.get(msg.mid)
        if rec is not None:
            rec.dropped = True
            rec.drop_why = why
            if fault is not None:
                rec.fault = fault

    def link_retransmission(self, copy_mid: int, orig_mid: int,
                            fault: Optional[Dict[str, Any]] = None) -> None:
        """Chain a retransmit copy back to its dropped original and the
        causing fault (the copy's record was opened by the normal send
        path; the original stays flagged dropped)."""
        rec = self.records.get(copy_mid)
        if rec is not None:
            rec.retrans_of = orig_mid
            if fault is not None:
                rec.fault = fault

    # ------------------------------------------------------------------
    def delivered_records(self) -> List[JourneyRecord]:
        return [r for r in self.records.values() if r.delivered >= 0]

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic dump of every record, keyed by mid — the
        object-vs-vec equivalence tests compare these directly."""
        return {
            "sampling": {"seed": self.seed, "rate": self.rate,
                         "max_records": self.max_records},
            "sampled_out": self.sampled_out,
            "capped": self.capped,
            "records": {str(mid): self.records[mid].as_dict()
                        for mid in sorted(self.records)},
        }

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"JourneyRecorder(records={len(self.records)}, "
                f"rate={self.rate}, seed={self.seed})")


# ----------------------------------------------------------------------
# aggregation / critical-path analysis
# ----------------------------------------------------------------------
def _pct(sorted_vals: List[int], q: float) -> int:
    """Nearest-rank percentile on a pre-sorted non-empty list."""
    n = len(sorted_vals)
    rank = max(1, -(-int(q * n * 1000) // 1000))  # ceil without floats drift
    idx = min(n - 1, max(0, rank - 1))
    return sorted_vals[idx]


def critical_path(rec: JourneyRecord) -> Dict[str, Any]:
    """The segment chain of one delivered record, in time order, with
    the residual appended explicitly when non-zero."""
    chain = [{"kind": k, "start": s, "end": e, "cycles": e - s}
             for k, s, e in rec.segments]
    residual = rec.residual or 0
    return {
        "mid": rec.mid,
        "latency": rec.latency,
        "chain": chain,
        "residual": residual,
        "dominant": (max(chain, key=lambda seg: (seg["cycles"],
                                                 -chain.index(seg)))["kind"]
                     if chain else None),
    }


def aggregate_flows(recorder: JourneyRecorder) -> List[Dict[str, Any]]:
    """Decompose each flow's sampled latency into per-segment
    attributions, with the unattributed residual reported explicitly.

    Returns one row per (src, dst) flow, sorted for determinism.
    """
    flows: Dict[Tuple[str, str], List[JourneyRecord]] = {}
    for rec in recorder.delivered_records():
        flows.setdefault((rec.src, rec.dst), []).append(rec)
    rows: List[Dict[str, Any]] = []
    for (src, dst) in sorted(flows):
        recs = flows[(src, dst)]
        lats = sorted(r.latency for r in recs)
        total = sum(lats)
        by_kind: Dict[str, int] = {}
        residual = 0
        for r in recs:
            for kind, cycles in r.by_kind().items():
                by_kind[kind] = by_kind.get(kind, 0) + cycles
            residual += r.residual or 0
        attributed = sum(by_kind.values())
        coverage = attributed / total if total else 1.0
        segments = {
            kind: {"cycles": cycles,
                   "share": cycles / total if total else 0.0}
            for kind, cycles in sorted(by_kind.items())
        }
        slowest = (sorted(by_kind.items(), key=lambda kv: (-kv[1], kv[0]))
                   [0][0] if by_kind else None)
        p50, p99 = _pct(lats, 0.50), _pct(lats, 0.99)

        def _at(lat_target: int) -> Dict[str, Any]:
            # deterministic pick: the lowest-mid record at that latency
            pick = min((r for r in recs if r.latency == lat_target),
                       key=lambda r: r.mid)
            return critical_path(pick)

        rows.append({
            "src": src,
            "dst": dst,
            "sampled": len(recs),
            "latency": {"total": total, "mean": total / len(recs),
                        "p50": p50, "p99": p99,
                        "max": lats[-1], "min": lats[0]},
            "segments": segments,
            "attributed": attributed,
            "residual": residual,
            "coverage": coverage,
            "slowest_segment": slowest,
            "critical_paths": {"p50": _at(p50), "p99": _at(p99)},
        })
    return rows


def flow_slowest_segments(recorder) -> Dict[Tuple[str, str], str]:
    """(src, dst) -> dominant segment kind, for the watch dashboard."""
    out: Dict[Tuple[str, str], str] = {}
    for row in aggregate_flows(recorder):
        if row["slowest_segment"] is not None:
            out[(row["src"], row["dst"])] = row["slowest_segment"]
    return out


# ----------------------------------------------------------------------
# repro.journey/1 document
# ----------------------------------------------------------------------
def build_journey_document(session, experiment: str,
                           engine: Optional[str] = None) -> Dict[str, Any]:
    """Assemble the stable ``repro.journey/1`` document from an
    :class:`~repro.obs.session.ObservationSession` whose simulators
    carry journey recorders."""
    sims = []
    total_records = 0
    total_attributed = 0
    total_latency = 0
    for sim in session.sims:
        jr = sim.journey
        if jr is None:
            continue
        flows = aggregate_flows(jr)
        delivered = jr.delivered_records()
        attributed = sum(row["attributed"] for row in flows)
        latency = sum(row["latency"]["total"] for row in flows)
        total_records += len(jr.records)
        total_attributed += attributed
        total_latency += latency
        sims.append({
            "sim": sim.name,
            "cycle": sim.cycle,
            "sampling": {"seed": jr.seed, "rate": jr.rate,
                         "max_records": jr.max_records},
            "records": len(jr.records),
            "delivered": len(delivered),
            "dropped": sum(1 for r in jr.records.values() if r.dropped),
            "pending": sum(1 for r in jr.records.values()
                           if r.delivered < 0 and not r.dropped),
            "sampled_out": jr.sampled_out,
            "capped": jr.capped,
            "attributed": attributed,
            "residual": latency - attributed,
            "coverage": attributed / latency if latency else 1.0,
            "flows": flows,
        })
    return {
        "schema": JOURNEY_SCHEMA,
        "experiment": experiment,
        "engine": engine,
        "simulators": sims,
        "total_records": total_records,
        "total_flows": sum(len(s["flows"]) for s in sims),
        "coverage": (total_attributed / total_latency
                     if total_latency else 1.0),
    }


def explain_experiment(name: str, engine: Optional[str] = None,
                       rate: float = 1.0, seed: int = 0,
                       max_records: int = 100_000) -> Dict[str, Any]:
    """Run a registered experiment with journeys enabled and return the
    ``repro.journey/1`` latency-attribution document."""
    from repro.obs.session import observe_named

    _, session = observe_named(
        name, trace=False, journeys=True, journey_rate=rate,
        journey_seed=seed, journey_max_records=max_records, engine=engine)
    return build_journey_document(session, name, engine=engine)


def validate_journey(doc: Dict[str, Any]) -> int:
    """Structurally validate a ``repro.journey/1`` document; returns
    the number of flow rows.  Raises :class:`ValueError` on any
    problem — used by the CI obs-smoke job."""
    def fail(msg: str) -> None:
        raise ValueError(f"invalid journey document: {msg}")

    if not isinstance(doc, dict):
        fail("not an object")
    if doc.get("schema") != JOURNEY_SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {JOURNEY_SCHEMA!r}")
    for key in ("experiment", "simulators", "total_records",
                "total_flows", "coverage"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    if not isinstance(doc["simulators"], list):
        fail("simulators is not a list")
    n_flows = 0
    for s in doc["simulators"]:
        for key in ("sim", "cycle", "sampling", "records", "delivered",
                    "dropped", "pending", "sampled_out", "capped",
                    "attributed", "residual", "coverage", "flows"):
            if key not in s:
                fail(f"simulator entry missing {key!r}")
        for key in ("seed", "rate", "max_records"):
            if key not in s["sampling"]:
                fail(f"sampling block missing {key!r}")
        if s["residual"] < 0:
            fail(f"negative residual in {s['sim']!r}")
        for row in s["flows"]:
            n_flows += 1
            for key in ("src", "dst", "sampled", "latency", "segments",
                        "attributed", "residual", "coverage",
                        "slowest_segment", "critical_paths"):
                if key not in row:
                    fail(f"flow row missing {key!r}")
            for key in ("total", "mean", "p50", "p99", "max", "min"):
                if key not in row["latency"]:
                    fail(f"flow latency block missing {key!r}")
            for kind, seg in row["segments"].items():
                if kind not in SEGMENT_KINDS:
                    fail(f"unknown segment kind {kind!r}")
                if "cycles" not in seg or "share" not in seg:
                    fail(f"segment {kind!r} missing cycles/share")
            attributed = sum(seg["cycles"]
                             for seg in row["segments"].values())
            if attributed != row["attributed"]:
                fail(f"flow {row['src']}->{row['dst']}: segment sum "
                     f"{attributed} != attributed {row['attributed']}")
            if row["attributed"] + row["residual"] \
                    != row["latency"]["total"]:
                fail(f"flow {row['src']}->{row['dst']}: attributed + "
                     f"residual != total latency (residual must be "
                     f"explicit, never dropped)")
            for q in ("p50", "p99"):
                cp = row["critical_paths"].get(q)
                if cp is None:
                    fail(f"missing {q} critical path")
                for key in ("mid", "latency", "chain", "residual",
                            "dominant"):
                    if key not in cp:
                        fail(f"{q} critical path missing {key!r}")
                for seg in cp["chain"]:
                    if seg["kind"] not in SEGMENT_KINDS:
                        fail(f"unknown chain kind {seg['kind']!r}")
    if doc["total_flows"] != n_flows:
        fail(f"total_flows {doc['total_flows']} != counted {n_flows}")
    return n_flows


# ----------------------------------------------------------------------
# terminal rendering
# ----------------------------------------------------------------------
def render_explain(doc: Dict[str, Any], top: int = 10) -> str:
    """Human-readable latency attribution report for ``repro explain``."""
    lines: List[str] = []
    lines.append(f"experiment {doc['experiment']}"
                 + (f"  [engine={doc['engine']}]" if doc["engine"] else ""))
    lines.append(f"{doc['total_records']} sampled journeys, "
                 f"{doc['total_flows']} flows, "
                 f"{doc['coverage']:.1%} of latency attributed")
    for s in doc["simulators"]:
        lines.append("")
        lines.append(f"[{s['sim']}] cycle {s['cycle']}: "
                     f"{s['delivered']} delivered / {s['dropped']} dropped "
                     f"/ {s['pending']} pending sampled journeys "
                     f"(coverage {s['coverage']:.1%}, "
                     f"residual {s['residual']} cyc)")
        flows = sorted(s["flows"],
                       key=lambda r: -r["latency"]["total"])[:top]
        if not flows:
            continue
        lines.append(f"  {'flow':<20} {'n':>5} {'p50':>7} {'p99':>7} "
                     f"{'slowest segment':<18} {'cover':>6}")
        for row in flows:
            lines.append(
                f"  {row['src'] + '->' + row['dst']:<20} "
                f"{row['sampled']:>5} "
                f"{row['latency']['p50']:>7} "
                f"{row['latency']['p99']:>7} "
                f"{(row['slowest_segment'] or '-'):<18} "
                f"{row['coverage']:>6.1%}")
            cp = row["critical_paths"]["p99"]
            chain = " + ".join(f"{seg['kind']}:{seg['cycles']}"
                               for seg in cp["chain"])
            if cp["residual"]:
                chain += f" + residual:{cp['residual']}"
            lines.append(f"      p99 path (mid {cp['mid']}, "
                         f"{cp['latency']} cyc): {chain}")
        hidden = len(s["flows"]) - len(flows)
        if hidden > 0:
            lines.append(f"  ... {hidden} more flow(s); --top to widen")
    return "\n".join(lines)
