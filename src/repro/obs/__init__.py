"""Observability layer: spans, kernel self-metrics, exporters, profiling.

This package unifies the kernel's measurement probes
(:mod:`repro.sim.stats`), the protocol event/span tracer
(:mod:`repro.sim.trace`) and the scheduler's own metrics
(:class:`~repro.sim.engine.KernelMetrics`) behind exporters and a
capture harness:

* :mod:`repro.obs.perfetto` — Chrome trace-event / Perfetto JSON;
* :mod:`repro.obs.prom` — Prometheus exposition text + JSON snapshots;
* :mod:`repro.obs.profile` — the opt-in wall-clock profiler
  (``Simulator(profile=True)`` / ``REPRO_SIM_PROFILE=1``);
* :mod:`repro.obs.session` — :class:`ObservationSession`, which hooks
  simulator construction so whole experiment harnesses can be traced
  or profiled without plumbing (the ``repro trace`` / ``repro
  profile`` CLI);
* :mod:`repro.obs.flows` — per-flow/per-link fabric telemetry with
  bounded memory (:class:`FlowTelemetry`);
* :mod:`repro.obs.alerts` — declarative SLO rules over telemetry
  (:class:`AlertEngine`), emitted into traces and Prometheus;
* :mod:`repro.obs.watch` — the live ``repro watch`` dashboard and its
  CI snapshot schema;
* :mod:`repro.obs.journey` — per-message journey records with
  hop-level latency attribution (``repro explain``, sampled via a
  deterministic seed, exported under ``repro.journey/1``);
* :mod:`repro.obs.ledger` — the persistent run ledger: every
  experiment/sweep/chaos run leaves a content-addressed
  ``repro.run/1`` record in a prefix-sharded store (``repro runs``);
* :mod:`repro.obs.diff` — cross-run differential analysis with
  noise-aware significance and latency attribution (``repro diff``)
  plus the baseline regression gate (``repro regress``).

Everything the exporters emit except profiler wall time is
simulation-derived and deterministic; see ``docs/observability.md``.
"""

from repro.sim.engine import WAKE_REASONS, KernelMetrics
from repro.sim.stats import Counter, CounterSnapshot, Histogram, \
    StatsRegistry, StreamingHistogram, TimeSeries
from repro.sim.trace import SpanEvent, TraceEvent, Tracer

from repro.obs.alerts import Alert, AlertEngine, AlertRule, default_rules
from repro.obs.diff import (
    DIFF_SCHEMA,
    Budget,
    diff_runs,
    regress,
    render_diff,
    within_noise,
)
from repro.obs.flows import (
    FlowStats,
    FlowTelemetry,
    LinkStats,
    merge_snapshots,
)
from repro.obs.journey import (
    JOURNEY_SCHEMA,
    JourneyRecord,
    JourneyRecorder,
    aggregate_flows,
    build_journey_document,
    explain_experiment,
    render_explain,
    validate_journey,
)
from repro.obs.ledger import (
    RUN_SCHEMA,
    RunLedger,
    build_run_record,
    ledgered_call,
    render_run,
    validate_run,
)
from repro.obs.perfetto import (
    summarize_trace,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.profile import Profiler
from repro.obs.prom import (
    sanitize_metric_name,
    to_json_snapshot,
    to_prometheus_text,
    validate_exposition,
)
from repro.obs.session import ObservationSession, observe_named
from repro.obs.watch import (
    SNAPSHOT_SCHEMA,
    collect_snapshot,
    render_dashboard,
    validate_snapshot,
    watch_experiment,
)

__all__ = [
    "Alert",
    "AlertEngine",
    "AlertRule",
    "Budget",
    "Counter",
    "CounterSnapshot",
    "DIFF_SCHEMA",
    "FlowStats",
    "FlowTelemetry",
    "Histogram",
    "JOURNEY_SCHEMA",
    "JourneyRecord",
    "JourneyRecorder",
    "KernelMetrics",
    "LinkStats",
    "ObservationSession",
    "Profiler",
    "RUN_SCHEMA",
    "RunLedger",
    "SNAPSHOT_SCHEMA",
    "SpanEvent",
    "StatsRegistry",
    "StreamingHistogram",
    "TimeSeries",
    "TraceEvent",
    "Tracer",
    "WAKE_REASONS",
    "aggregate_flows",
    "build_journey_document",
    "build_run_record",
    "collect_snapshot",
    "default_rules",
    "diff_runs",
    "explain_experiment",
    "ledgered_call",
    "merge_snapshots",
    "observe_named",
    "regress",
    "render_diff",
    "render_explain",
    "render_run",
    "validate_journey",
    "validate_run",
    "within_noise",
    "render_dashboard",
    "sanitize_metric_name",
    "summarize_trace",
    "to_chrome_trace",
    "to_json_snapshot",
    "to_prometheus_text",
    "validate_exposition",
    "validate_snapshot",
    "watch_experiment",
    "write_chrome_trace",
]
