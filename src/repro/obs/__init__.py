"""Observability layer: spans, kernel self-metrics, exporters, profiling.

This package unifies the kernel's measurement probes
(:mod:`repro.sim.stats`), the protocol event/span tracer
(:mod:`repro.sim.trace`) and the scheduler's own metrics
(:class:`~repro.sim.engine.KernelMetrics`) behind exporters and a
capture harness:

* :mod:`repro.obs.perfetto` — Chrome trace-event / Perfetto JSON;
* :mod:`repro.obs.prom` — Prometheus exposition text + JSON snapshots;
* :mod:`repro.obs.profile` — the opt-in wall-clock profiler
  (``Simulator(profile=True)`` / ``REPRO_SIM_PROFILE=1``);
* :mod:`repro.obs.session` — :class:`ObservationSession`, which hooks
  simulator construction so whole experiment harnesses can be traced
  or profiled without plumbing (the ``repro trace`` / ``repro
  profile`` CLI).

Everything the exporters emit except profiler wall time is
simulation-derived and deterministic; see ``docs/observability.md``.
"""

from repro.sim.engine import WAKE_REASONS, KernelMetrics
from repro.sim.stats import Counter, CounterSnapshot, Histogram, \
    StatsRegistry, TimeSeries
from repro.sim.trace import SpanEvent, TraceEvent, Tracer

from repro.obs.perfetto import (
    summarize_trace,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.profile import Profiler
from repro.obs.prom import (
    sanitize_metric_name,
    to_json_snapshot,
    to_prometheus_text,
    validate_exposition,
)
from repro.obs.session import ObservationSession, observe_named

__all__ = [
    "Counter",
    "CounterSnapshot",
    "Histogram",
    "KernelMetrics",
    "ObservationSession",
    "Profiler",
    "SpanEvent",
    "StatsRegistry",
    "TimeSeries",
    "TraceEvent",
    "Tracer",
    "WAKE_REASONS",
    "observe_named",
    "sanitize_metric_name",
    "summarize_trace",
    "to_chrome_trace",
    "to_json_snapshot",
    "to_prometheus_text",
    "validate_exposition",
    "write_chrome_trace",
]
