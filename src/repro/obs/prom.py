"""Prometheus-text and JSON snapshot export for stats and kernel metrics.

:func:`to_prometheus_text` renders a :class:`~repro.sim.stats.StatsRegistry`
plus the kernel self-metrics (and, when enabled, the wall-clock
profiler) in the Prometheus exposition format, so a snapshot can be
scraped, diffed with ``promtool``, or pushed to a gateway.

:func:`to_json_snapshot` is the machine-readable counterpart.  In both
forms, everything except the ``profile`` section is simulation-derived
and bit-identical between fast-path and reference runs of the same
model *except* the ``kernel`` section, which describes the scheduler
itself (see :class:`~repro.sim.engine.KernelMetrics`); wall-clock
profiling time appears only under ``profile`` and is never part of
``StatsRegistry.snapshot()``.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*")
# One label pair: name="value" where the value may contain anything
# except a raw ", \ or newline — those must appear escaped (\", \\, \n).
# Unlike a naive [^{}]* body match this accepts { } inside quoted
# values and *rejects* unescaped quotes/backslashes.
_LABEL_PAIR = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"'
_LABELS = re.compile(r"\{(?:%s(?:,%s)*,?)?\}" % (_LABEL_PAIR, _LABEL_PAIR))
_VALUE_TS = re.compile(r"^[ \t]+(\S+)(?:[ \t]+(-?\d+))?[ \t]*$")

#: histogram quantiles exported as Prometheus summary quantile samples
QUANTILES = (0.5, 0.95, 0.99)


def sanitize_metric_name(name: str) -> str:
    """Map a registry probe name onto the Prometheus name grammar."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not _NAME_OK.match(out):
        out = f"_{out}"
    return out


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _fmt(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


class _Writer:
    def __init__(self, namespace: str):
        self.ns = namespace
        self.lines: List[str] = []
        self._typed: set = set()

    def sample(self, name: str, value: float, mtype: str = "gauge",
               help_text: str = "", labels: Optional[Dict[str, str]] = None
               ) -> None:
        full = f"{self.ns}_{sanitize_metric_name(name)}"
        if full not in self._typed:
            if help_text:
                self.lines.append(f"# HELP {full} {help_text}")
            self.lines.append(f"# TYPE {full} {mtype}")
            self._typed.add(full)
        if labels:
            rendered = ",".join(
                f'{sanitize_metric_name(k)}="{_escape_label(str(v))}"'
                for k, v in labels.items()
            )
            self.lines.append(f"{full}{{{rendered}}} {_fmt(value)}")
        else:
            self.lines.append(f"{full} {_fmt(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def to_prometheus_text(
    sims: Union[Simulator, Sequence[Simulator]],
    namespace: str = "repro",
) -> str:
    """Render counters, histogram summaries, time-series tails, kernel
    self-metrics and profiler buckets for one or more simulators.

    Multiple simulators are distinguished by a ``sim`` label.
    """
    if isinstance(sims, Simulator):
        sims = [sims]
    w = _Writer(namespace)
    many = len(sims) > 1
    for sim in sims:
        base = {"sim": sim.name} if many else {}
        snap = sim.stats.snapshot()
        for name, value in snap["counters"].items():
            w.sample(f"{name}_total", value, "counter",
                     f"model counter {name}", base or None)
        for name in snap["histograms"]:
            hist = sim.stats.get_histogram(name)
            w.sample(f"{name}_count", hist.count, "gauge",
                     f"histogram {name} sample count", base or None)
            # hist.total is exact in both storage modes; the snapshot
            # value is a state dict for bucketed histograms, so it is
            # not summable directly
            w.sample(f"{name}_sum", hist.total, "gauge",
                     f"histogram {name} sample sum", base or None)
            for q in QUANTILES:
                labels = dict(base)
                labels["quantile"] = str(q)
                w.sample(name, hist.percentile(q * 100), "gauge",
                         f"histogram {name} quantiles", labels)
        for name, (cycles, values) in snap["series"].items():
            if values:
                labels = dict(base)
                labels["cycle"] = str(cycles[-1])
                w.sample(f"{name}_last", values[-1], "gauge",
                         f"time series {name} last sample", labels)
        w.sample("sim_final_cycle", sim.cycle, "gauge",
                 "simulated cycles elapsed", base or None)
        for key, value in sim.kmetrics.as_dict().items():
            w.sample(f"kernel_{key}", value, "counter",
                     f"kernel scheduler metric {key}", base or None)
        for name, ticks in sorted(sim.tick_counts().items()):
            labels = dict(base)
            labels["component"] = name
            w.sample("kernel_component_ticks", ticks, "counter",
                     "per-component tick count", labels)
        if sim.profiler is not None:
            for bucket in sorted(sim.profiler.seconds):
                labels = dict(base)
                labels["bucket"] = bucket
                w.sample("profile_seconds", sim.profiler.seconds[bucket],
                         "counter", "host seconds by bucket (wall clock; "
                         "host-dependent)", labels)
                w.sample("profile_calls_total", sim.profiler.calls[bucket],
                         "counter", "profiled calls by bucket", labels)
        if sim.telemetry is not None:
            _telemetry_samples(w, sim.telemetry, sim.cycle, base)
        if getattr(sim, "control", None) is not None:
            _control_samples(w, sim.control, sim.cycle, base)
    return w.text()


def _control_samples(w: _Writer, loop: Any, now: int,
                     base: Dict[str, str]) -> None:
    """Control-plane series from an attached ControlLoop."""
    for status, count in loop.status_counts().items():
        labels = dict(base)
        labels["status"] = status
        w.sample("control_actions_total", count, "counter",
                 "controller decisions by final status", labels)
    for reason, count in sorted(
            loop.guard.suppressed_counts.items()):
        labels = dict(base)
        labels["reason"] = reason
        w.sample("control_suppressed_total", count, "counter",
                 "fires suppressed by the actuation guard", labels)
    w.sample("control_observe_only", int(loop.observe_only), "gauge",
             "1 while the safety budget keeps the controller "
             "observe-only", base or None)
    w.sample("control_inflight", loop.guard.inflight(), "gauge",
             "actions between apply and post-check", base or None)
    for rule, burned in sorted(
            loop.engine.burn_cycles(now).items()):
        labels = dict(base)
        labels["rule"] = rule
        w.sample("control_burn_cycles", burned, "counter",
                 "SLO burn per rule (fired breach cycles)", labels)


def _telemetry_samples(w: _Writer, tel: Any, now: int,
                       base: Dict[str, str]) -> None:
    """Per-flow, per-link and alert series from a FlowTelemetry."""
    for key in sorted(tel.flows):
        flow = tel.flows[key]
        fl = dict(base)
        fl["src"], fl["dst"] = flow.src, flow.dst
        w.sample("flow_messages_total", flow.messages, "counter",
                 "delivered messages per flow", fl)
        w.sample("flow_bytes_total", flow.bytes, "counter",
                 "delivered payload bytes per flow", fl)
        for q in QUANTILES:
            ql = dict(fl)
            ql["quantile"] = str(q)
            w.sample("flow_latency_cycles", flow.latency.percentile(q * 100),
                     "gauge", "per-flow delivery latency quantiles", ql)
            if flow.jitter.count:
                w.sample("flow_jitter_cycles",
                         flow.jitter.percentile(q * 100), "gauge",
                         "per-flow latency jitter quantiles", ql)
    for name in sorted(tel.links):
        link = tel.links[name]
        ll = dict(base)
        ll["link"] = name
        w.sample("link_utilization", link.utilization(now), "gauge",
                 "recent-window link utilization [0,1]", ll)
        w.sample("link_busy_cycles_total", link.busy_cycles, "counter",
                 "total busy cycles per link", ll)
        w.sample("link_queue_watermark", link.queue_watermark, "gauge",
                 "peak queue depth observed per link", ll)
        if link.stalls:
            w.sample("link_stalls_total", link.stalls, "counter",
                     "sender stalls per link", ll)
            w.sample("link_backpressure_p99_cycles",
                     link.wait.percentile(99), "gauge",
                     "p99 sender wait per link", ll)
    for key in sorted(tel.counters):
        cl = dict(base)
        cl["event"] = key
        w.sample("fabric_events_total", tel.counters[key], "counter",
                 "fabric telemetry event counters", cl)
    if tel.quiesce.count:
        w.sample("quiesce_cycles_max", tel.quiesce.max, "gauge",
                 "longest reconfiguration quiesce", base or None)
        w.sample("quiesce_count", tel.quiesce.count, "gauge",
                 "reconfiguration quiesces observed", base or None)
    if tel.mttr.count:
        w.sample("fault_recoveries_total", tel.mttr.count, "counter",
                 "fault recoveries observed", base or None)
        w.sample("fault_mttr_cycles_max", tel.mttr.max, "gauge",
                 "longest fault recovery (injection -> recovered)",
                 base or None)
        for q in QUANTILES:
            ql = dict(base)
            ql["quantile"] = str(q)
            w.sample("fault_mttr_cycles", tel.mttr.percentile(q * 100),
                     "gauge", "fault recovery time quantiles", ql)
    for key in sorted(tel.gauges):
        gl = dict(base)
        gl["signal"] = key
        w.sample("fabric_gauge", tel.gauges[key], "gauge",
                 "latest value per telemetry gauge", gl)
    engine = tel.engine
    if engine is not None:
        active = set(engine.active(now))
        for rule in engine.rules:
            rl = dict(base)
            rl["rule"] = rule.name
            rl["severity"] = rule.severity
            w.sample("alert_fired_total",
                     engine.fired_counts.get(rule.name, 0), "counter",
                     "alerts fired per rule", rl)
            w.sample("alert_active", int(rule.name in active), "gauge",
                     "1 while the rule's breach episode is uncleared", rl)
            w.sample("alert_last_cycle",
                     engine.last_fired.get(rule.name, -1), "gauge",
                     "cycle the rule last fired (-1: never)", rl)
        w.sample("alert_evaluations_total", engine.evaluations, "counter",
                 "rule-set evaluation passes", base or None)
        w.sample("alert_dropped_total", engine.dropped, "counter",
                 "alerts dropped past the retention cap", base or None)


def to_json_snapshot(
    sims: Union[Simulator, Sequence[Simulator]],
) -> Dict[str, Any]:
    """Machine-readable snapshot: model stats, kernel self-metrics,
    tick counts and (when profiling) wall-clock buckets per simulator."""
    if isinstance(sims, Simulator):
        sims = [sims]
    out: Dict[str, Any] = {"simulators": []}
    for sim in sims:
        entry: Dict[str, Any] = {
            "name": sim.name,
            "final_cycle": sim.cycle,
            "fast_path": sim.fast_path,
            "stats": sim.stats.snapshot(),
            "kernel": sim.kmetrics.as_dict(),
            "tick_counts": sim.tick_counts(),
        }
        if sim.profiler is not None:
            entry["profile"] = sim.profiler.as_dict()
        out["simulators"].append(entry)
    return out


def validate_exposition(text: str) -> int:
    """Minimal Prometheus exposition-format check; returns the sample
    count.  Raises :class:`ValueError` with the offending line on the
    first violation.  (Not a full parser — a guard for CI artifacts.)

    Label values are checked against the escaping rules: ``"``, ``\\``
    and newline must appear as ``\\"``, ``\\\\`` and ``\\n``.  Braces
    *inside* a quoted label value are legal and accepted — a prior
    version used a single ``\\{[^{}]*\\}`` body match, which both
    rejected valid values containing ``}`` and waved through unescaped
    quotes.
    """
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        m = _SAMPLE_NAME.match(line)
        if not m:
            raise ValueError(f"line {lineno}: not a valid sample: {line!r}")
        rest = line[m.end():]
        if rest.startswith("{"):
            lm = _LABELS.match(rest)
            if not lm:
                raise ValueError(
                    f"line {lineno}: malformed or unescaped labels: "
                    f"{line!r}"
                )
            rest = rest[lm.end():]
        vm = _VALUE_TS.match(rest)
        if not vm:
            raise ValueError(f"line {lineno}: not a valid sample: {line!r}")
        value = vm.group(1)
        if value not in ("NaN", "+Inf", "-Inf"):
            try:
                float(value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: unparseable value {value!r}"
                ) from None
        samples += 1
    if samples == 0:
        raise ValueError("no samples found in exposition text")
    return samples
