"""Per-flow and per-link fabric telemetry with bounded memory.

While PR 3's tracer records *what happened* (protocol events and
spans), this module records *how the fabric is doing*: per-flow latency
and jitter distributions, per-link/per-router utilization, queue-depth
watermarks, and backpressure — the congestion signals the paper's
end-of-run aggregates hide.

Everything is stored in :class:`~repro.sim.stats.StreamingHistogram`\\ s
and bounded ring buffers, so telemetry memory is O(flows + links)
however long the run.  Collection is attached with::

    tel = FlowTelemetry()
    tel.attach(sim)          # sets sim.telemetry and sim.telemetering

and every fabric instrumentation site guards on the cheap flag::

    if sim.telemetering:
        sim.telemetry.link_busy(sim.cycle, "dynoc.link.1,2->2,2", 3)

so the telemetry-off hot path is unchanged (a single attribute test
that was already false).

Telemetry observes model state but **never writes to** ``sim.stats``:
:meth:`~repro.sim.stats.StatsRegistry.snapshot` — the golden-
equivalence comparator — is bit-identical with telemetry on or off.

When an :class:`~repro.obs.alerts.AlertEngine` is attached
(:attr:`FlowTelemetry.engine`), rules are evaluated lazily from the
record paths at most once per ``eval_interval`` cycles — *not* from an
eager sequential, which would defeat the kernel's fast-forward over
quiescent stretches (and a quiescent fabric records nothing, so there
is nothing new to alert on).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.sim.stats import StreamingHistogram


class FlowStats:
    """Latency/jitter distributions and volume for one (src, dst) flow."""

    __slots__ = ("src", "dst", "messages", "bytes", "latency", "jitter",
                 "_last_latency")

    def __init__(self, src: str, dst: str, exact_cap: int = 512):
        self.src = src
        self.dst = dst
        self.messages = 0
        self.bytes = 0
        self.latency = StreamingHistogram(exact_cap)
        #: |latency - previous latency| of consecutive deliveries
        self.jitter = StreamingHistogram(exact_cap)
        self._last_latency: Optional[float] = None

    def record(self, latency: float, payload_bytes: int = 0) -> None:
        self.messages += 1
        self.bytes += payload_bytes
        self.latency.add(latency)
        if self._last_latency is not None:
            self.jitter.add(abs(latency - self._last_latency))
        self._last_latency = float(latency)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "src": self.src,
            "dst": self.dst,
            "messages": self.messages,
            "bytes": self.bytes,
            "latency": self.latency.summary(),
            "jitter": self.jitter.summary(),
        }


class LinkStats:
    """Utilization, queue depth and backpressure for one link/router/bus.

    Utilization is tracked per fixed-size cycle window: ``note_busy``
    accumulates busy cycles into the current window, and crossing a
    window boundary closes it into a bounded ring buffer of
    ``(window_start_cycle, utilization)`` points — a backpressure-proof
    time series that never grows past ``series_len`` entries.
    """

    __slots__ = ("name", "window", "busy_cycles", "stalls", "wait",
                 "queue_depth", "queue_watermark", "series",
                 "_win_start", "_win_busy", "_prev_busy")

    def __init__(self, name: str, window: int = 1024,
                 series_len: int = 64, exact_cap: int = 512):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.name = name
        self.window = window
        self.busy_cycles = 0
        self.stalls = 0
        #: backpressure: cycles senders waited for this link
        self.wait = StreamingHistogram(exact_cap)
        self.queue_depth = 0
        self.queue_watermark = 0
        self.series: Deque[Tuple[int, float]] = deque(maxlen=series_len)
        self._win_start = 0
        self._win_busy = 0
        #: busy count of the window immediately before the current one
        #: (0 after an idle gap); None before the first window closes
        self._prev_busy: Optional[int] = None

    def _roll(self, now: int) -> None:
        start = (now // self.window) * self.window
        if start > self._win_start:
            if self._win_busy:
                self.series.append(
                    (self._win_start,
                     min(1.0, self._win_busy / self.window))
                )
            # the window preceding `start` is either the one just
            # closed (contiguous) or an idle one that never rolled
            self._prev_busy = (
                self._win_busy
                if start == self._win_start + self.window else 0
            )
            self._win_start = start
            self._win_busy = 0

    def note_busy(self, now: int, cycles: int = 1) -> None:
        self._roll(now)
        self.busy_cycles += cycles
        self._win_busy += cycles

    def note_queue_depth(self, depth: int) -> None:
        self.queue_depth = depth
        if depth > self.queue_watermark:
            self.queue_watermark = depth

    def note_wait(self, now: int, cycles: int) -> None:
        if cycles > 0:
            self.stalls += 1
            self.wait.add(cycles)

    def utilization(self, now: int) -> float:
        """Busy fraction over the trailing ``window`` cycles.

        Blends the current partial window with the immediately
        preceding one (weighted by how much of it still lies inside the
        trailing span).  The naive ``busy / elapsed`` over the partial
        window alone reads 100% whenever a single busy cycle lands just
        after a window boundary — a guaranteed false saturation alert,
        since rule evaluation is driven from the record paths.
        """
        self._roll(now)
        elapsed = min(max(now - self._win_start, 0), self.window)
        if self._prev_busy is None:
            # first window ever: no history to blend with
            return min(1.0, self._win_busy / max(elapsed, 1))
        tail = self._prev_busy * (self.window - elapsed) / self.window
        return min(1.0, (self._win_busy + tail) / self.window)

    def overall_utilization(self, now: int) -> float:
        return min(1.0, self.busy_cycles / now) if now > 0 else 0.0

    def as_dict(self, now: int) -> Dict[str, Any]:
        return {
            "name": self.name,
            "busy_cycles": self.busy_cycles,
            "utilization": self.utilization(now),
            "overall_utilization": self.overall_utilization(now),
            "queue_depth": self.queue_depth,
            "queue_watermark": self.queue_watermark,
            "stalls": self.stalls,
            "wait": self.wait.summary(),
            "series": list(self.series),
        }


class FlowTelemetry:
    """The per-simulator telemetry collector fabrics record into.

    One instance attaches to one :class:`~repro.sim.Simulator` via
    :meth:`attach` (or the ``sim.telemetry`` setter).  All record
    methods take the current cycle first, so collection never reads
    the simulator — the fabric already has ``sim.cycle`` in hand.
    """

    def __init__(self, eval_interval: int = 512, exact_cap: int = 512,
                 window: int = 1024, series_len: int = 64):
        if eval_interval < 1:
            raise ValueError(
                f"eval_interval must be >= 1, got {eval_interval}"
            )
        self.eval_interval = eval_interval
        self.exact_cap = exact_cap
        self.window = window
        self.series_len = series_len
        self.sim = None
        self.flows: Dict[Tuple[str, str], FlowStats] = {}
        self.links: Dict[str, LinkStats] = {}
        self.counters: Dict[str, int] = {}
        #: latest value per gauge key (e.g. "fault.undelivered")
        self.gauges: Dict[str, float] = {}
        #: reconfiguration quiesce durations (cycles)
        self.quiesce = StreamingHistogram(exact_cap)
        #: fault mean-time-to-recovery distribution (cycles)
        self.mttr = StreamingHistogram(exact_cap)
        #: optional repro.obs.alerts.AlertEngine, evaluated lazily
        self.engine = None
        self._next_eval = 0

    # ------------------------------------------------------------------
    def attach(self, sim) -> "FlowTelemetry":
        """Bind to ``sim`` (sets ``sim.telemetry``); returns self."""
        self.sim = sim
        sim.telemetry = self
        return self

    # ------------------------------------------------------------------
    # record paths (all guarded by sim.telemetering at the call site)
    # ------------------------------------------------------------------
    def record_flow(self, now: int, src: str, dst: str, latency: float,
                    payload_bytes: int = 0) -> None:
        flow = self.flows.get((src, dst))
        if flow is None:
            flow = self.flows[(src, dst)] = FlowStats(src, dst,
                                                      self.exact_cap)
        flow.record(latency, payload_bytes)
        self._maybe_eval(now)

    def link(self, name: str) -> LinkStats:
        stats = self.links.get(name)
        if stats is None:
            stats = self.links[name] = LinkStats(
                name, window=self.window, series_len=self.series_len,
                exact_cap=self.exact_cap,
            )
        return stats

    def link_busy(self, now: int, name: str, cycles: int = 1) -> None:
        self.link(name).note_busy(now, cycles)
        self._maybe_eval(now)

    def queue_depth(self, now: int, name: str, depth: int) -> None:
        self.link(name).note_queue_depth(depth)
        self._maybe_eval(now)

    def backpressure(self, now: int, name: str, wait_cycles: int) -> None:
        self.link(name).note_wait(now, wait_cycles)
        self._maybe_eval(now)

    def count(self, now: int, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n
        self._maybe_eval(now)

    def record_quiesce(self, now: int, cycles: int) -> None:
        self.quiesce.add(cycles)
        self._maybe_eval(now)

    def gauge(self, now: int, key: str, value: float) -> None:
        """Record the current value of an instantaneous signal."""
        self.gauges[key] = value
        self._maybe_eval(now)

    def record_fault_recovery(self, now: int, mttr: int) -> None:
        """One fault recovered; ``mttr`` is injection -> recovered."""
        self.mttr.add(mttr)
        self._maybe_eval(now)

    # ------------------------------------------------------------------
    def _maybe_eval(self, now: int) -> None:
        """Run attached alert rules at most once per ``eval_interval``.

        Driven from the record paths (i.e. from commit-visible fabric
        activity), never from a registered sequential: an eager
        sequential would disable the kernel's quiescence fast-forward.
        """
        if self.engine is not None and now >= self._next_eval:
            self._next_eval = now + self.eval_interval
            self.engine.evaluate(self, now)

    def evaluate_now(self, now: Optional[int] = None) -> None:
        """Force one rule evaluation (end-of-run flush)."""
        if self.engine is not None:
            at = now if now is not None else (
                self.sim.cycle if self.sim is not None else self._next_eval
            )
            self.engine.evaluate(self, at)
            self._next_eval = at + self.eval_interval

    # ------------------------------------------------------------------
    def snapshot(self, now: Optional[int] = None) -> Dict[str, Any]:
        """Plain-data snapshot of every flow, link, counter and alert."""
        at = now if now is not None else (
            self.sim.cycle if self.sim is not None else 0
        )
        out: Dict[str, Any] = {
            "cycle": at,
            "flows": [self.flows[k].as_dict() for k in sorted(self.flows)],
            "links": [self.links[k].as_dict(at)
                      for k in sorted(self.links)],
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "quiesce": self.quiesce.summary(),
            "faults": {"mttr": self.mttr.summary()},
        }
        if self.engine is not None:
            out["alerts"] = self.engine.snapshot(at)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (f"FlowTelemetry(flows={len(self.flows)}, "
                f"links={len(self.links)})")


def merge_snapshots(snaps: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Combine per-simulator snapshots into one watch/CI document.

    Flows and links keep their per-simulator identity (they are listed
    under each simulator entry); the top level carries totals so CI
    checks have one place to look.
    """
    alerts: List[Dict[str, Any]] = []
    for snap in snaps:
        alerts.extend(snap.get("alerts", {}).get("alerts", []))
    return {
        "simulators": snaps,
        "total_flows": sum(len(s["flows"]) for s in snaps),
        "total_links": sum(len(s["links"]) for s in snaps),
        "total_alerts": len(alerts),
        "alerts": alerts,
    }
