"""Opt-in wall-clock profiler for the simulation kernel.

Enabled with ``Simulator(profile=True)`` or ``REPRO_SIM_PROFILE=1``,
the kernel times every component tick, every scheduled-event callback
(bucket ``kernel.events``) and the commit phase (``kernel.commit``)
with ``perf_counter`` and attributes the host time by name.  When
disabled — the default — the kernel pays a single ``is None`` test per
step, so simulation results and benchmarks are unaffected.

Wall-time numbers are host- and load-dependent: they are export-only
(see :mod:`repro.obs.prom` / :mod:`repro.obs.perfetto`) and are never
part of ``StatsRegistry.snapshot()``, which is the fast-path
golden-equivalence comparator.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class Profiler:
    """Accumulates wall-clock seconds and call counts by bucket name."""

    __slots__ = ("seconds", "calls")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def add(self, name: str, dt: float) -> None:
        """Attribute ``dt`` seconds to ``name`` (called by the kernel)."""
        self.seconds[name] = self.seconds.get(name, 0.0) + dt
        self.calls[name] = self.calls.get(name, 0) + 1

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def top(self, n: int = 10) -> List[Tuple[str, float, int]]:
        """The ``n`` hottest buckets as (name, seconds, calls)."""
        ranked = sorted(self.seconds.items(), key=lambda kv: -kv[1])
        return [(name, secs, self.calls[name]) for name, secs in ranked[:n]]

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's buckets into this one (multi-sim runs)."""
        for name, secs in other.seconds.items():
            self.seconds[name] = self.seconds.get(name, 0.0) + secs
        for name, count in other.calls.items():
            self.calls[name] = self.calls.get(name, 0) + count

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Plain-data form: {bucket: {"seconds": s, "calls": c}}."""
        return {
            name: {"seconds": self.seconds[name], "calls": self.calls[name]}
            for name in sorted(self.seconds)
        }

    def render_top(self, n: int = 10) -> str:
        """Terminal table of the hottest buckets with share-of-total."""
        total = self.total_seconds
        lines = [f"{'bucket':<28} {'seconds':>10} {'calls':>10} {'share':>7}"]
        for name, secs, calls in self.top(n):
            share = (secs / total * 100.0) if total else 0.0
            lines.append(f"{name:<28} {secs:>10.4f} {calls:>10} {share:>6.1f}%")
        lines.append(f"{'total':<28} {total:>10.4f}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Profiler(buckets={len(self.seconds)}, total={self.total_seconds:.4f}s)"
