"""Live fabric watch: stream telemetry snapshots from a running run.

``repro watch <experiment>`` runs a registered harness with telemetry
attached (via :class:`~repro.obs.session.ObservationSession`) and
refreshes a terminal dashboard of per-flow latencies, per-link
utilization and fired SLO alerts while the experiment executes.  Two
CI-friendly modes bypass the live loop:

* ``--once`` runs the experiment to completion and emits exactly one
  final snapshot;
* ``--json`` replaces the rendered dashboard with the machine-readable
  snapshot document (one JSON object per refresh; pretty-printed when
  combined with ``--once``).

The snapshot document is a stable schema (:data:`SNAPSHOT_SCHEMA`)
checked by :func:`validate_snapshot` — the CI smoke job feeds the
``--once --json`` output straight through it.

With journeys enabled (the default) each flow row additionally carries
``slowest_segment`` — the dominant latency segment from the journey
aggregator (:func:`repro.obs.journey.flow_slowest_segments`) — shown as
its own dashboard column.  The key is *additive*: ``repro.watch/1``
consumers that predate it ignore it, and :func:`validate_snapshot`
checks it only when present.

The live loop reads telemetry that the experiment thread is still
writing.  All telemetry stores are append-only dicts and bounded
deques, so a concurrent reader sees a slightly stale but well-formed
view; the rare ``RuntimeError`` from a dict growing mid-iteration is
caught and that refresh skipped.  The final snapshot is always taken
after the run completes, so ``--once`` output is deterministic.
"""

from __future__ import annotations

import json
import sys
import threading
from typing import Any, Dict, List, Optional, TextIO, Tuple

from repro.obs.flows import merge_snapshots
from repro.obs.journey import SEGMENT_KINDS, flow_slowest_segments
from repro.obs.session import ObservationSession

#: watch snapshot document version; bump on breaking shape changes
SNAPSHOT_SCHEMA = "repro.watch/1"

_CLEAR = "\x1b[2J\x1b[H"


# ----------------------------------------------------------------------
# snapshot document
# ----------------------------------------------------------------------
def collect_snapshot(session: ObservationSession, experiment: str = "",
                     done: bool = True) -> Dict[str, Any]:
    """Merge every observed simulator's telemetry into one document."""
    snaps: List[Dict[str, Any]] = []
    for sim in list(session.sims):
        tel = sim.telemetry
        if tel is None:
            continue
        snap = tel.snapshot()
        snap["sim"] = sim.name
        jr = sim.journey
        if jr is not None and len(jr):
            # additive repro.watch/1 key: dominant latency segment per
            # flow, from the sampled journey records
            slowest = flow_slowest_segments(jr)
            for flow in snap.get("flows", ()):
                seg = slowest.get((flow["src"], flow["dst"]))
                if seg is not None:
                    flow["slowest_segment"] = seg
        snaps.append(snap)
    doc = merge_snapshots(snaps)
    doc["schema"] = SNAPSHOT_SCHEMA
    doc["experiment"] = experiment
    doc["done"] = bool(done)
    controls = [sim.control for sim in list(session.sims)
                if getattr(sim, "control", None) is not None]
    if controls:
        # versioned extension: control-plane decisions, rendered as
        # their own pane.  Pre-controller consumers ignore both keys.
        counts: Dict[str, int] = {}
        recent: List[Dict[str, Any]] = []
        for loop in controls:
            for status, n in loop.status_counts().items():
                counts[status] = counts.get(status, 0) + n
            for record in loop.actions[-8:]:
                recent.append(dict(record.to_dict(), sim=loop.sim.name))
        recent.sort(key=lambda r: (r["cycle"], r["sim"], r["aid"]))
        doc["extensions"] = sorted(
            set(doc.get("extensions", ())) | {"actions/1"})
        doc["actions"] = {
            "counts": dict(sorted(counts.items())),
            "recent": recent[-16:],
            "observe_only": any(l.observe_only for l in controls),
        }
    return doc


def _require(cond: bool, why: str) -> None:
    if not cond:
        raise ValueError(f"watch snapshot: {why}")


def validate_snapshot(doc: Dict[str, Any]) -> int:
    """Schema check for a watch snapshot document; returns the number
    of simulator entries.  Raises :class:`ValueError` on the first
    violation — this is the CI contract for ``--once --json`` output.
    """
    _require(isinstance(doc, dict), "document is not an object")
    _require(doc.get("schema") == SNAPSHOT_SCHEMA,
             f"schema is {doc.get('schema')!r}, expected "
             f"{SNAPSHOT_SCHEMA!r}")
    _require(isinstance(doc.get("experiment"), str), "missing experiment")
    _require(isinstance(doc.get("done"), bool), "missing done flag")
    sims = doc.get("simulators")
    _require(isinstance(sims, list), "simulators is not a list")
    for key in ("total_flows", "total_links", "total_alerts"):
        _require(isinstance(doc.get(key), int) and doc[key] >= 0,
                 f"{key} is not a non-negative int")
    alerts = doc.get("alerts")
    _require(isinstance(alerts, list), "alerts is not a list")
    for alert in alerts:
        for key in ("rule", "cycle", "severity", "message"):
            _require(key in alert, f"alert missing {key!r}")
    for entry in sims:
        _require(isinstance(entry.get("sim"), str),
                 "simulator entry missing sim name")
        _require(isinstance(entry.get("cycle"), int) and entry["cycle"] >= 0,
                 "simulator entry missing cycle")
        _require(isinstance(entry.get("counters"), dict),
                 "simulator entry missing counters")
        _require(isinstance(entry.get("quiesce"), dict),
                 "simulator entry missing quiesce summary")
        for flow in entry.get("flows", ()):
            for key in ("src", "dst", "messages", "bytes",
                        "latency", "jitter"):
                _require(key in flow, f"flow missing {key!r}")
            for key in ("count", "mean", "p50", "p95", "p99", "max"):
                _require(key in flow["latency"],
                         f"flow latency summary missing {key!r}")
            if "slowest_segment" in flow:  # additive; absent pre-journey
                _require(flow["slowest_segment"] in SEGMENT_KINDS,
                         f"flow slowest_segment "
                         f"{flow['slowest_segment']!r} is not a known "
                         f"segment kind")
        for link in entry.get("links", ()):
            for key in ("name", "utilization", "queue_watermark",
                        "stalls", "wait"):
                _require(key in link, f"link missing {key!r}")
            _require(0.0 <= link["utilization"] <= 1.0,
                     f"link {link.get('name')!r} utilization out of range")
    if "actions" in doc:  # actions/1 extension; absent pre-controller
        _require("actions/1" in doc.get("extensions", ()),
                 "actions key present without the actions/1 extension "
                 "marker")
        actions = doc["actions"]
        _require(isinstance(actions.get("counts"), dict),
                 "actions counts is not a dict")
        _require(isinstance(actions.get("observe_only"), bool),
                 "actions missing observe_only flag")
        recent = actions.get("recent")
        _require(isinstance(recent, list), "actions recent is not a list")
        for record in recent:
            for key in ("aid", "rule", "kind", "status", "cycle", "sim"):
                _require(key in record, f"action record missing {key!r}")
    _require(doc["total_flows"] == sum(len(e.get("flows", ()))
                                       for e in sims),
             "total_flows does not match simulator entries")
    _require(doc["total_links"] == sum(len(e.get("links", ()))
                                       for e in sims),
             "total_links does not match simulator entries")
    return len(sims)


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt_cycles(v: float) -> str:
    return f"{v:,.0f}" if v == v else "-"  # NaN-safe


def render_dashboard(doc: Dict[str, Any], max_rows: int = 8) -> str:
    """One refresh of the watch dashboard as plain text."""
    lines: List[str] = []
    state = "done" if doc.get("done") else "running"
    cycle = max((e["cycle"] for e in doc["simulators"]), default=0)
    lines.append(
        f"repro watch — {doc.get('experiment') or '(unnamed)'}  [{state}]  "
        f"cycle {cycle:,}  sims {len(doc['simulators'])}  "
        f"flows {doc['total_flows']}  links {doc['total_links']}  "
        f"alerts {doc['total_alerts']}"
    )
    flows = [
        dict(f, sim=e["sim"])
        for e in doc["simulators"] for f in e.get("flows", ())
    ]
    if flows:
        flows.sort(key=lambda f: -f["latency"]["p99"])
        lines.append("")
        lines.append(f"  {'flow':<26} {'msgs':>7} {'p50':>9} "
                     f"{'p99':>9} {'max':>9} {'slowest seg':<16}")
        for f in flows[:max_rows]:
            lat = f["latency"]
            name = f"{f['sim']}:{f['src']}->{f['dst']}"
            lines.append(
                f"  {name:<26} {f['messages']:>7} "
                f"{_fmt_cycles(lat['p50']):>9} {_fmt_cycles(lat['p99']):>9} "
                f"{_fmt_cycles(lat['max']):>9} "
                f"{f.get('slowest_segment') or '-':<16}"
            )
        if len(flows) > max_rows:
            lines.append(f"  ... {len(flows) - max_rows} more flows")
    links = [
        dict(ln, sim=e["sim"])
        for e in doc["simulators"] for ln in e.get("links", ())
    ]
    if links:
        links.sort(key=lambda ln: -ln["utilization"])
        lines.append("")
        lines.append(f"  {'link':<34} {'util':>6} {'queue^':>7} "
                     f"{'stalls':>7} {'wait p99':>9}")
        for ln in links[:max_rows]:
            name = f"{ln['sim']}:{ln['name']}"
            wait = ln["wait"]["p99"] if ln["wait"]["count"] else 0
            lines.append(
                f"  {name:<34} {ln['utilization']:>5.0%} "
                f"{ln['queue_watermark']:>7} {ln['stalls']:>7} "
                f"{_fmt_cycles(wait):>9}"
            )
        if len(links) > max_rows:
            lines.append(f"  ... {len(links) - max_rows} more links")
    if doc.get("actions"):
        actions = doc["actions"]
        counts = actions["counts"]
        summary = "  ".join(f"{k} {v}" for k, v in counts.items())
        mode = "  [OBSERVE-ONLY]" if actions["observe_only"] else ""
        lines.append("")
        lines.append(f"  actions: {summary or 'none'}{mode}")
        for record in actions["recent"][-max_rows:]:
            what = record["detail"] or record["reason"] or record["rule"]
            lines.append(
                f"  > cycle {record['cycle']:>9,}  "
                f"[{record['status']}] {record['kind']} "
                f"{record['target']}: {what}"
            )
    if doc["alerts"]:
        lines.append("")
        lines.append("  alerts:")
        for alert in doc["alerts"][-max_rows:]:
            lines.append(
                f"  ! cycle {alert['cycle']:>9,}  [{alert['severity']}] "
                f"{alert['rule']}: {alert['message']}"
            )
        if len(doc["alerts"]) > max_rows:
            lines.append(
                f"  ... {len(doc['alerts']) - max_rows} earlier alerts"
            )
    elif doc.get("done"):
        lines.append("")
        lines.append("  no alerts fired")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the watch loop
# ----------------------------------------------------------------------
def _emit(doc: Dict[str, Any], stream: TextIO, json_out: bool,
          pretty: bool, max_rows: int, clear: bool) -> None:
    if json_out:
        text = json.dumps(doc, indent=2 if pretty else None,
                          sort_keys=True, default=str)
        print(text, file=stream, flush=True)
        return
    if clear and stream.isatty():
        stream.write(_CLEAR)
    print(render_dashboard(doc, max_rows=max_rows), file=stream, flush=True)
    if not clear or not stream.isatty():
        print("-" * 72, file=stream, flush=True)


def watch_experiment(
    name: str,
    interval: float = 1.0,
    once: bool = False,
    json_out: bool = False,
    max_rows: int = 8,
    stream: Optional[TextIO] = None,
    rules: Optional[List[Any]] = None,
    clear: bool = True,
    journeys: bool = True,
    engine: Optional[str] = None,
) -> Tuple[Any, Dict[str, Any]]:
    """Run a registered harness under telemetry and stream snapshots.

    ``journeys`` additionally attaches journey recorders so flow rows
    carry their ``slowest_segment``; ``engine`` pins the simulation
    backend (``"object"`` / ``"vec"``) for the run, like ``repro sweep
    --engine``.  Returns ``(result, final_snapshot)``.  Raises
    :class:`KeyError` for an unknown experiment name (the CLI maps that
    to exit code 2).
    """
    from repro.analysis.parallel import registry

    harnesses = registry()
    if name not in harnesses:
        raise KeyError(
            f"unknown experiment {name!r}; known: "
            f"{', '.join(sorted(harnesses))}"
        )
    out = stream if stream is not None else sys.stdout
    session = ObservationSession(trace=False, telemetry=True, rules=rules,
                                 journeys=journeys, engine=engine)

    if once:
        with session:
            result = harnesses[name]()
        session.flush_alerts()
        doc = collect_snapshot(session, name, done=True)
        _emit(doc, out, json_out, pretty=True, max_rows=max_rows,
              clear=False)
        return result, doc

    box: Dict[str, Any] = {}

    def _run() -> None:
        try:
            box["result"] = harnesses[name]()
        except BaseException as exc:  # surfaced after the loop
            box["error"] = exc

    with session:
        worker = threading.Thread(target=_run, name=f"watch-{name}",
                                  daemon=True)
        worker.start()
        while worker.is_alive():
            worker.join(timeout=max(interval, 0.05))
            if not worker.is_alive():
                break
            try:
                doc = collect_snapshot(session, name, done=False)
            except RuntimeError:
                continue  # telemetry grew mid-read; next refresh catches up
            _emit(doc, out, json_out, pretty=False, max_rows=max_rows,
                  clear=clear)
    if "error" in box:
        raise box["error"]
    session.flush_alerts()
    doc = collect_snapshot(session, name, done=True)
    _emit(doc, out, json_out, pretty=False, max_rows=max_rows, clear=clear)
    return box.get("result"), doc


__all__ = [
    "SNAPSHOT_SCHEMA",
    "collect_snapshot",
    "validate_snapshot",
    "render_dashboard",
    "watch_experiment",
]
