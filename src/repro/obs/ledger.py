"""Persistent run ledger: every run leaves a ``repro.run/1`` record.

The paper's contribution is *comparative* — Tables 1–4 rank the six
architectures against each other — yet spans, telemetry, alerts and
journey attributions normally die with their run, so comparisons
between runs, seeds, engines or commits get re-derived ad hoc.  This
module gives every experiment / sweep / chaos / fleet run (opt-out,
not opt-in) a compact persistent record:

* **document** — a ``repro.run/1`` JSON object carrying the run's
  configuration (and its content hash), seed, engine, library
  versions, the paper-table stats the harness returned, kernel
  self-metrics, per-flow/per-link telemetry summaries, alert firings,
  journey attribution aggregates, and resilience metrics (each section
  present when the run produced it);
* **store** — :class:`RunLedger`, a content-addressed on-disk store
  sharded by the first two hex digits of the run id (the ROADMAP
  item-1 "sharded content-addressed store" layout, shared with the
  result cache under ``.repro-cache``), with atomic writes, prefix
  resolution, listing and age/size-bounded garbage collection;
* **checker** — :func:`validate_run`, the structural validator CI runs
  on freshly produced records.

The run id is the SHA-256 of the record's canonical JSON with the
volatile wall-clock section stripped, so identical runs (same seed,
config, engine-independent stats) store under one id — re-running a
deterministic experiment is a write-once no-op.  Records are pure
observations: the ledger attaches only pure-observer instrumentation
(telemetry, journeys) whose bit-identity with unobserved runs is
proven by the obs test suite, so ledgered results equal unledgered
ones.

Opt-out: set ``REPRO_LEDGER=0`` to disable persistence entirely, or
``REPRO_LEDGER_DIR`` to relocate it (default: the result-cache root,
``.repro-cache``/``REPRO_CACHE_DIR``).

Built on top: :mod:`repro.obs.diff` aligns two records and performs
noise-aware differential analysis (``repro diff``), and the
``repro regress`` gate compares fresh runs against a checked-in
baseline ledger.  See ``docs/observability.md``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
import os
import sys
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: schema tag of every ledger record
RUN_SCHEMA = "repro.run/1"

#: bump when the *record layout* changes incompatibly (sections added
#: compatibly don't count); part of the ``versions`` block
RECORD_VERSION = 1

#: environment opt-out: "0"/"off"/"no" disables all ledger writes
LEDGER_ENV = "REPRO_LEDGER"
#: environment override for the ledger root directory
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"
#: run records live under ``<root>/runs/<2-hex-prefix>/<run-id>.json``
RUNS_SUBDIR = "runs"

#: top-level sections excluded from the content hash (wall-clock only;
#: everything else in a record is simulation-derived and deterministic)
VOLATILE_KEYS = ("wall",)

#: per-simulator flow/link summaries kept in a record (top-N by
#: traffic; the omitted count is recorded so truncation is explicit)
MAX_FLOWS_PER_SIM = 64
MAX_LINKS_PER_SIM = 64

#: run kinds the validator accepts
RUN_KINDS = ("experiment", "sweep", "seed", "fleet", "chaos", "adapt")


def ledger_enabled() -> bool:
    """False when ``REPRO_LEDGER`` opts out of persistence."""
    return os.environ.get(LEDGER_ENV, "1").lower() not in ("0", "off", "no")


def default_ledger_dir() -> str:
    """``REPRO_LEDGER_DIR``, else the result-cache root — the ledger
    and the cache share one sharded store tree."""
    override = os.environ.get(LEDGER_DIR_ENV)
    if override:
        return override
    from repro.analysis.parallel import default_cache_dir

    return default_cache_dir()


# ----------------------------------------------------------------------
# canonical JSON + hashing
# ----------------------------------------------------------------------
def jsonable(obj: Any) -> Any:
    """Recursively convert to JSON-serializable plain data.

    Mirrors :func:`repro.analysis.export.to_jsonable` without the
    numpy dependency (the ledger must work on the dependency-free core
    install); numpy scalars are handled structurally via ``item()``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: jsonable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, enum.Enum):
        return obj.name
    if isinstance(obj, bool) or obj is None:
        return obj
    if isinstance(obj, float):
        if math.isnan(obj):
            return "nan"
        if math.isinf(obj):
            return "inf" if obj > 0 else "-inf"
        return obj
    if isinstance(obj, int):
        return obj
    if isinstance(obj, str):
        return obj
    if isinstance(obj, dict):
        return {k if isinstance(k, str) else str(k): jsonable(v)
                for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in obj]
    if hasattr(obj, "item"):  # numpy scalar without importing numpy
        try:
            return jsonable(obj.item())
        except Exception:
            pass
    return str(obj)


def canonical_bytes(record: Dict[str, Any],
                    strip_volatile: bool = True) -> bytes:
    """The record's canonical JSON encoding: sorted keys, minimal
    separators, volatile (wall-clock) sections stripped.  This is what
    gets hashed — and what the determinism tests compare byte for
    byte."""
    doc = {k: v for k, v in record.items()
           if not (strip_volatile and k in VOLATILE_KEYS)}
    return json.dumps(jsonable(doc), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def run_id_of(record: Dict[str, Any]) -> str:
    """Content address of a record: SHA-256 of its canonical bytes,
    truncated to 16 hex digits (64 bits — collision-safe for any
    realistic ledger size)."""
    return hashlib.sha256(canonical_bytes(record)).hexdigest()[:16]


def config_hash(kind: str, name: str,
                config: Optional[Dict[str, Any]]) -> str:
    """Stable hash of a run's *configuration identity* — what must be
    equal for two runs to be "the same setup".  Seed and engine are
    deliberately excluded (they are top-level record fields) so that
    same-config/different-seed and same-config/different-engine runs
    align in ``repro diff``; a fleet's ``seeds`` list is excluded for
    the same reason."""
    cfg = dict(config or {})
    cfg.pop("seed", None)
    cfg.pop("seeds", None)
    payload = json.dumps({"kind": kind, "name": name, "config": cfg},
                         sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def _git_head(start: Optional[str] = None) -> Optional[str]:
    """Best-effort current commit hash: walk up from ``start`` to the
    nearest ``.git`` and read HEAD (no subprocess).  None when not in a
    checkout or on any read problem."""
    d = os.path.abspath(start or os.getcwd())
    while True:
        git = os.path.join(d, ".git")
        if os.path.isdir(git):
            try:
                with open(os.path.join(git, "HEAD"),
                          encoding="utf-8") as fh:
                    head = fh.read().strip()
                if head.startswith("ref:"):
                    ref = head.split(None, 1)[1]
                    ref_path = os.path.join(git, *ref.split("/"))
                    if os.path.isfile(ref_path):
                        with open(ref_path, encoding="utf-8") as fh:
                            return fh.read().strip() or None
                    packed = os.path.join(git, "packed-refs")
                    if os.path.isfile(packed):
                        with open(packed, encoding="utf-8") as fh:
                            for line in fh:
                                if line.strip().endswith(ref):
                                    return line.split()[0]
                    return None
                return head or None
            except OSError:
                return None
        parent = os.path.dirname(d)
        if parent == d:
            return None
        d = parent


def versions_block() -> Dict[str, Any]:
    """The environment-identity block of a record."""
    import repro

    return {
        "package": repro.__version__,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "git": _git_head(),
        "record": RECORD_VERSION,
    }


# ----------------------------------------------------------------------
# record sections from live simulators / sessions
# ----------------------------------------------------------------------
def aggregate_kernel(sims: Iterable[Any]) -> Dict[str, int]:
    """Sum kernel self-metrics across simulators (``commit_max`` takes
    the max — it is a watermark, not a count)."""
    totals: Dict[str, int] = {}
    for sim in sims:
        for key, value in sim.kmetrics.as_dict().items():
            if key == "commit_max":
                totals[key] = max(totals.get(key, 0), value)
            else:
                totals[key] = totals.get(key, 0) + value
    return totals


def _top_items(items: List[Dict[str, Any]], limit: int,
               key: Callable[[Dict[str, Any]], Any]) -> Tuple[
                   List[Dict[str, Any]], int]:
    if len(items) <= limit:
        return items, 0
    kept = sorted(items, key=key)[:limit]
    return kept, len(items) - limit


def telemetry_section(sims: Iterable[Any]) -> List[Dict[str, Any]]:
    """Compact per-simulator flow/link/counter/alert summaries.

    One entry per telemetry-carrying simulator, in construction order
    (deterministic).  Flows and links keep the top
    ``MAX_FLOWS_PER_SIM``/``MAX_LINKS_PER_SIM`` by volume with an
    explicit ``omitted`` count; the bounded utilization ring series is
    dropped (the summaries carry the comparison-relevant signal)."""
    out: List[Dict[str, Any]] = []
    for index, sim in enumerate(sims):
        tel = getattr(sim, "telemetry", None)
        if tel is None:
            continue
        now = sim.cycle
        flows = [tel.flows[k].as_dict() for k in sorted(tel.flows)]
        flows, flows_omitted = _top_items(
            flows, MAX_FLOWS_PER_SIM,
            key=lambda f: (-f["messages"], f["src"], f["dst"]))
        links = []
        for name in sorted(tel.links):
            d = tel.links[name].as_dict(now)
            d.pop("series", None)
            links.append(d)
        links, links_omitted = _top_items(
            links, MAX_LINKS_PER_SIM,
            key=lambda l: (-l["busy_cycles"], l["name"]))
        entry: Dict[str, Any] = {
            "index": index,
            "cycle": now,
            "flows": flows,
            "flows_omitted": flows_omitted,
            "links": links,
            "links_omitted": links_omitted,
            "counters": dict(sorted(tel.counters.items())),
            "gauges": dict(sorted(tel.gauges.items())),
            "quiesce": tel.quiesce.summary(),
            "mttr": tel.mttr.summary(),
        }
        if tel.engine is not None:
            snap = tel.engine.snapshot(now)
            entry["alerts"] = snap["alerts"]
            entry["alerts_dropped"] = snap["dropped"]
        out.append(entry)
    return out


def journey_section(sims: Iterable[Any]) -> Optional[Dict[str, Any]]:
    """Per-flow latency attribution aggregates across every journey-
    carrying simulator — the ``repro diff`` attribution substrate."""
    from repro.obs.journey import aggregate_flows

    entries: List[Dict[str, Any]] = []
    total_attributed = 0
    total_latency = 0
    for index, sim in enumerate(sims):
        jr = getattr(sim, "journey", None)
        if jr is None:
            continue
        flows = aggregate_flows(jr)
        attributed = sum(row["attributed"] for row in flows)
        latency = sum(row["latency"]["total"] for row in flows)
        total_attributed += attributed
        total_latency += latency
        entries.append({
            "index": index,
            "records": len(jr.records),
            "sampled_out": jr.sampled_out,
            "capped": jr.capped,
            "flows": flows,
        })
    if not entries:
        return None
    return {
        "simulators": entries,
        "coverage": (total_attributed / total_latency
                     if total_latency else 1.0),
    }


def alerts_section(sims: Iterable[Any]) -> List[Dict[str, Any]]:
    """Every alert fired across the run's simulators, flattened (the
    per-simulator telemetry entries keep the engine snapshots)."""
    fired: List[Dict[str, Any]] = []
    for index, sim in enumerate(sims):
        tel = getattr(sim, "telemetry", None)
        if tel is None or tel.engine is None:
            continue
        for alert in tel.engine.alerts:
            d = alert.to_dict()
            d["sim"] = index
            fired.append(d)
    return fired


def build_run_record(kind: str, name: str, *,
                     config: Optional[Dict[str, Any]] = None,
                     seed: Optional[int] = None,
                     engine: Optional[str] = None,
                     stats: Any = None,
                     sims: Optional[Iterable[Any]] = None,
                     resilience: Optional[Dict[str, Any]] = None,
                     seed_stats: Optional[Dict[str, Any]] = None,
                     seed_run_ids: Optional[List[str]] = None,
                     noise: Optional[Dict[str, float]] = None,
                     wall_seconds: Optional[float] = None
                     ) -> Dict[str, Any]:
    """Assemble a ``repro.run/1`` record.

    ``stats`` is the run's headline result (an experiment result
    dataclass, sweep rows, chaos document...) — converted to plain
    JSON data.  ``sims`` supplies the observability sections (kernel
    metrics, telemetry, journeys); each section appears only when the
    run produced it.  ``noise`` carries per-metric dispersion hints
    consumed by :mod:`repro.obs.diff` for significance floors.
    """
    if kind not in RUN_KINDS:
        raise ValueError(f"unknown run kind {kind!r}; known: {RUN_KINDS}")
    config = dict(config or {})
    if seed is None and isinstance(config.get("seed"), int):
        seed = config["seed"]
    record: Dict[str, Any] = {
        "schema": RUN_SCHEMA,
        "kind": kind,
        "name": name,
        "seed": seed,
        "engine": engine,
        "config": jsonable(config),
        "config_hash": config_hash(kind, name, config),
        "versions": versions_block(),
        "stats": jsonable(stats),
    }
    sims = list(sims) if sims is not None else []
    if sims:
        record["kernel"] = aggregate_kernel(sims)
        telemetry = telemetry_section(sims)
        if telemetry:
            record["telemetry"] = telemetry
            record["alerts"] = alerts_section(sims)
        journeys = journey_section(sims)
        if journeys is not None:
            record["journeys"] = journeys
    if resilience is not None:
        record["resilience"] = jsonable(resilience)
    if seed_stats is not None:
        record["seed_stats"] = jsonable(seed_stats)
    if seed_run_ids is not None:
        record["seed_run_ids"] = list(seed_run_ids)
    if noise:
        record["noise"] = {k: float(v) for k, v in sorted(noise.items())}
    record["wall"] = {
        "seconds": wall_seconds,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S",
                                     time.gmtime()),
    }
    return record


# ----------------------------------------------------------------------
# the sharded content-addressed store
# ----------------------------------------------------------------------
@dataclasses.dataclass
class RunEntry:
    """One ledger listing row (cheap: summary fields only)."""

    run_id: str
    kind: str
    name: str
    seed: Optional[int]
    engine: Optional[str]
    config_hash: str
    recorded_at: Optional[str]
    wall_seconds: Optional[float]
    path: str
    size: int


class LedgerError(ValueError):
    """Unknown / ambiguous run id, or a structurally broken record."""


class RunLedger:
    """Content-addressed run-record store.

    Layout (shared root with the result cache)::

        <root>/runs/<2-hex-prefix>/<run-id>.json

    Writes are atomic (tmp + rename) and idempotent: storing a record
    whose content already exists is a no-op returning the same id.
    """

    def __init__(self, root: Optional[str] = None):
        self.root = root if root is not None else default_ledger_dir()

    @property
    def runs_dir(self) -> str:
        return os.path.join(self.root, RUNS_SUBDIR)

    def path_for(self, run_id: str) -> str:
        return os.path.join(self.runs_dir, run_id[:2], f"{run_id}.json")

    # ------------------------------------------------------------------
    def store(self, record: Dict[str, Any]) -> str:
        """Persist ``record``; returns its run id."""
        run_id = run_id_of(record)
        path = self.path_for(run_id)
        if os.path.exists(path):
            return run_id
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = json.dumps(jsonable(record), sort_keys=True, indent=1)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(payload)
                fh.write("\n")
            os.replace(tmp, path)
        except OSError:
            # read-only store: the run still happened, just unrecorded
            try:
                os.unlink(tmp)
            except OSError:
                pass
        return run_id

    def load(self, run_id: str) -> Dict[str, Any]:
        path = self.path_for(run_id)
        try:
            with open(path, encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            raise LedgerError(f"no run {run_id!r} in ledger "
                              f"{self.runs_dir}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise LedgerError(f"unreadable run record {path}: "
                              f"{exc}") from exc

    def ids(self) -> List[str]:
        """Every stored run id, sorted."""
        out: List[str] = []
        runs = self.runs_dir
        if not os.path.isdir(runs):
            return out
        for shard in sorted(os.listdir(runs)):
            shard_dir = os.path.join(runs, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for fname in sorted(os.listdir(shard_dir)):
                if fname.endswith(".json"):
                    out.append(fname[:-5])
        return out

    def resolve(self, prefix: str) -> str:
        """Expand a unique run-id prefix to the full id."""
        prefix = prefix.strip().lower()
        if not prefix:
            raise LedgerError("empty run id")
        matches = [i for i in self.ids() if i.startswith(prefix)]
        if not matches:
            raise LedgerError(f"no run matching {prefix!r} in "
                              f"{self.runs_dir}")
        if len(matches) > 1:
            raise LedgerError(
                f"ambiguous run id {prefix!r}: matches "
                f"{', '.join(matches[:8])}"
                + ("..." if len(matches) > 8 else ""))
        return matches[0]

    def entries(self) -> List[RunEntry]:
        """Listing rows for every record, newest first."""
        out: List[RunEntry] = []
        for run_id in self.ids():
            path = self.path_for(run_id)
            try:
                rec = self.load(run_id)
                size = os.path.getsize(path)
            except (LedgerError, OSError):
                continue
            wall = rec.get("wall") or {}
            out.append(RunEntry(
                run_id=run_id,
                kind=rec.get("kind", "?"),
                name=rec.get("name", "?"),
                seed=rec.get("seed"),
                engine=rec.get("engine"),
                config_hash=rec.get("config_hash", ""),
                recorded_at=wall.get("recorded_at"),
                wall_seconds=wall.get("seconds"),
                path=path,
                size=size,
            ))
        out.sort(key=lambda e: (e.recorded_at or "", e.run_id),
                 reverse=True)
        return out

    def gc(self, max_age_days: Optional[float] = None,
           max_bytes: Optional[int] = None,
           dry_run: bool = False) -> "PruneReport":
        """Age/size-bounded eviction of run records (LRU by mtime)."""
        return prune_tree([self.runs_dir], suffixes=(".json",),
                          max_age_days=max_age_days, max_bytes=max_bytes,
                          dry_run=dry_run)

    def __len__(self) -> int:
        return len(self.ids())

    def __repr__(self) -> str:  # pragma: no cover
        return f"RunLedger({self.runs_dir!r}, records={len(self)})"


# ----------------------------------------------------------------------
# shared age/size LRU pruning (ledger records + result-cache pickles)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class PruneReport:
    """What a prune pass scanned and (would have) removed."""

    scanned: int = 0
    scanned_bytes: int = 0
    evicted: List[str] = dataclasses.field(default_factory=list)
    evicted_bytes: int = 0
    dry_run: bool = False

    @property
    def kept(self) -> int:
        return self.scanned - len(self.evicted)

    @property
    def kept_bytes(self) -> int:
        return self.scanned_bytes - self.evicted_bytes

    def render(self) -> str:
        verb = "would evict" if self.dry_run else "evicted"
        return (f"scanned {self.scanned} entr"
                f"{'y' if self.scanned == 1 else 'ies'} "
                f"({self.scanned_bytes / 1024:.0f} KiB); {verb} "
                f"{len(self.evicted)} ({self.evicted_bytes / 1024:.0f} "
                f"KiB), keeping {self.kept}")


def prune_tree(roots: Iterable[str], suffixes: Tuple[str, ...],
               max_age_days: Optional[float] = None,
               max_bytes: Optional[int] = None,
               dry_run: bool = False) -> PruneReport:
    """Evict least-recently-used entries under ``roots``.

    Two bounds, both optional: entries older than ``max_age_days`` go
    first; then, oldest-first, entries are dropped until the total is
    at most ``max_bytes``.  "Used" is the file mtime — the result
    cache refreshes it on every hit, so hot entries survive.  Empty
    shard directories left behind are removed.
    """
    report = PruneReport(dry_run=dry_run)
    files: List[Tuple[float, int, str]] = []  # (mtime, size, path)
    for root in roots:
        if not os.path.isdir(root):
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            for fname in filenames:
                if not fname.endswith(suffixes):
                    continue
                path = os.path.join(dirpath, fname)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                files.append((st.st_mtime, st.st_size, path))
    files.sort()
    report.scanned = len(files)
    report.scanned_bytes = sum(size for _, size, _ in files)

    doomed: Dict[str, int] = {}
    if max_age_days is not None:
        cutoff = time.time() - max_age_days * 86_400
        for mtime, size, path in files:
            if mtime < cutoff:
                doomed[path] = size
    if max_bytes is not None:
        live = report.scanned_bytes - sum(doomed.values())
        for mtime, size, path in files:
            if live <= max_bytes:
                break
            if path not in doomed:
                doomed[path] = size
                live -= size

    for _mtime, size, path in files:
        if path not in doomed:
            continue
        report.evicted.append(path)
        report.evicted_bytes += size
        if not dry_run:
            try:
                os.unlink(path)
            except OSError:
                pass
    if not dry_run:
        for root in roots:
            if not os.path.isdir(root):
                continue
            for dirpath, dirnames, filenames in os.walk(root,
                                                        topdown=False):
                if not dirnames and not filenames and dirpath != root:
                    try:
                        os.rmdir(dirpath)
                    except OSError:
                        pass
    return report


# ----------------------------------------------------------------------
# ledgered execution
# ----------------------------------------------------------------------
def ledgered_call(fn: Callable[[], Any], *, kind: str, name: str,
                  config: Optional[Dict[str, Any]] = None,
                  seed: Optional[int] = None,
                  engine: Optional[str] = None,
                  ledger: Optional[str] = None,
                  journeys: bool = True,
                  journey_rate: float = 1.0,
                  ) -> Tuple[Any, Optional[str]]:
    """Run ``fn`` under pure-observer instrumentation and persist its
    record; returns ``(result, run_id)``.

    The observation is telemetry + (optionally) journeys via
    :class:`~repro.obs.session.ObservationSession` — both proven
    bit-identical to unobserved runs — so the result is exactly what
    ``fn()`` returns without the ledger.  When the ledger is disabled
    (``REPRO_LEDGER=0``) the call is a plain ``fn()`` with no
    instrumentation at all and ``run_id`` is None.
    """
    if not ledger_enabled():
        return fn(), None
    from repro.obs.session import ObservationSession

    session = ObservationSession(trace=False, telemetry=True,
                                 journeys=journeys,
                                 journey_rate=journey_rate,
                                 journey_seed=seed or 0,
                                 engine=engine)
    t0 = time.perf_counter()
    with session:
        result = fn()
    wall = time.perf_counter() - t0
    session.flush_alerts()
    record = build_run_record(kind, name, config=config, seed=seed,
                              engine=engine, stats=result,
                              sims=session.sims, wall_seconds=wall)
    run_id = RunLedger(ledger).store(record)
    return result, run_id


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
_SUMMARY_KEYS = ("count", "mean", "std", "min", "p50", "p95", "p99",
                 "max")


def validate_run(doc: Dict[str, Any]) -> int:
    """Structurally check a ``repro.run/1`` record; returns the number
    of sections present.  Raises :class:`ValueError` on any problem —
    the CI regress-smoke job runs this on freshly written records."""
    def fail(msg: str) -> None:
        raise ValueError(f"invalid run record: {msg}")

    if not isinstance(doc, dict):
        fail("not an object")
    if doc.get("schema") != RUN_SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {RUN_SCHEMA!r}")
    for key in ("kind", "name", "config", "config_hash", "versions",
                "stats", "wall"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    if doc["kind"] not in RUN_KINDS:
        fail(f"unknown kind {doc['kind']!r}")
    if not isinstance(doc["config"], dict):
        fail("config is not an object")
    expect = config_hash(doc["kind"], doc["name"], doc["config"])
    if doc["config_hash"] != expect:
        fail(f"config_hash {doc['config_hash']!r} does not match the "
             f"config (expected {expect!r})")
    for key in ("package", "python", "record"):
        if key not in doc["versions"]:
            fail(f"versions block missing {key!r}")
    if doc.get("engine") not in (None, "object", "vec"):
        fail(f"unknown engine {doc.get('engine')!r}")
    sections = 1  # stats is mandatory
    if "kernel" in doc:
        sections += 1
        if not isinstance(doc["kernel"], dict) \
                or "cycles_stepped" not in doc["kernel"]:
            fail("kernel section lacks cycles_stepped")
    for entry in doc.get("telemetry", ()):
        for key in ("index", "cycle", "flows", "links", "counters"):
            if key not in entry:
                fail(f"telemetry entry missing {key!r}")
        for flow in entry["flows"]:
            for key in ("src", "dst", "messages", "latency"):
                if key not in flow:
                    fail(f"flow summary missing {key!r}")
            for key in _SUMMARY_KEYS:
                if key not in flow["latency"]:
                    fail(f"flow latency summary missing {key!r}")
        for link in entry["links"]:
            for key in ("name", "busy_cycles", "utilization"):
                if key not in link:
                    fail(f"link summary missing {key!r}")
    if "telemetry" in doc:
        sections += 1
        if "alerts" not in doc:
            fail("telemetry present but alerts section missing")
    if "journeys" in doc:
        sections += 1
        j = doc["journeys"]
        if "simulators" not in j or "coverage" not in j:
            fail("journeys section lacks simulators/coverage")
        from repro.obs.journey import SEGMENT_KINDS

        for entry in j["simulators"]:
            for row in entry.get("flows", ()):
                for kind in row.get("segments", {}):
                    if kind not in SEGMENT_KINDS:
                        fail(f"unknown journey segment kind {kind!r}")
    if "resilience" in doc:
        sections += 1
    if "seed_stats" in doc:
        sections += 1
        for metric, spread in doc["seed_stats"].items():
            for key in ("mean", "std", "min", "max", "count"):
                if key not in spread:
                    fail(f"seed_stats[{metric!r}] missing {key!r}")
    wall = doc["wall"]
    if not isinstance(wall, dict) or "recorded_at" not in wall:
        fail("wall section lacks recorded_at")
    return sections


# ----------------------------------------------------------------------
# rendering (repro runs list / show)
# ----------------------------------------------------------------------
def render_entries(entries: List[RunEntry]) -> str:
    if not entries:
        return "ledger is empty"
    lines = [f"{'run id':<18}{'kind':<12}{'name':<12}{'seed':>6}  "
             f"{'engine':<8}{'recorded (UTC)':<21}{'size':>8}"]
    for e in entries:
        lines.append(
            f"{e.run_id:<18}{e.kind:<12}{e.name:<12}"
            f"{e.seed if e.seed is not None else '-':>6}  "
            f"{(e.engine or '-'):<8}{(e.recorded_at or '-'):<21}"
            f"{e.size / 1024:>7.1f}K")
    lines.append(f"{len(entries)} run(s)")
    return "\n".join(lines)


def render_run(doc: Dict[str, Any]) -> str:
    """Terminal summary of one record (``repro runs show``)."""
    lines = [
        f"run          : {run_id_of(doc)}  [{doc['kind']}] {doc['name']}",
        f"seed/engine  : {doc.get('seed')} / "
        f"{doc.get('engine') or 'default'}",
        f"config hash  : {doc['config_hash']}",
        f"versions     : package {doc['versions'].get('package')}, "
        f"python {doc['versions'].get('python')}, "
        f"git {(doc['versions'].get('git') or '-')[:12]}",
    ]
    if doc.get("config"):
        lines.append("config       : " + json.dumps(doc["config"],
                                                    sort_keys=True))
    if "kernel" in doc:
        k = doc["kernel"]
        lines.append(f"kernel       : {k.get('cycles_stepped', 0)} cycles "
                     f"stepped, {k.get('ticks_total', 0)} ticks, "
                     f"{k.get('ff_cycles_skipped', 0)} fast-forwarded")
    for entry in doc.get("telemetry", ()):
        lines.append(f"telemetry[{entry['index']}] : "
                     f"{len(entry['flows'])} flow(s) "
                     f"(+{entry['flows_omitted']} omitted), "
                     f"{len(entry['links'])} link(s), "
                     f"{len(entry.get('alerts', []))} alert(s)")
    if "journeys" in doc:
        lines.append(f"journeys     : coverage "
                     f"{doc['journeys']['coverage']:.1%} across "
                     f"{len(doc['journeys']['simulators'])} simulator(s)")
    if "resilience" in doc:
        r = doc["resilience"]
        lines.append(f"resilience   : survived={r.get('survived')}")
    if "seed_stats" in doc:
        lines.append("seed spread  : "
                     + ", ".join(f"{m} std={s['std']:.3g}"
                                 for m, s in sorted(
                                     doc["seed_stats"].items())))
    wall = doc.get("wall") or {}
    lines.append(f"wall         : {wall.get('seconds')}s at "
                 f"{wall.get('recorded_at')}")
    return "\n".join(lines)
