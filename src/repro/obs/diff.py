"""Differential run analysis: align, compare, attribute, gate.

``repro diff <a> <b>`` takes two ledger records
(:mod:`repro.obs.ledger`) and answers "what changed, is it real, and
*where did it come from*":

* **align** — classify the pair: same config re-run (``identical``),
  same config under a different seed (``seed``), a different engine
  (``engine``) or a different package/commit (``version``), or the
  same seed under a different config (``config``).  The alignment
  picks the noise model: an engine pair must be bit-identical (the vec
  backend's equivalence contract), a seed pair is compared against the
  across-seed spread, a config pair is an intentional comparison.
* **compare** — flatten both records to dotted metric paths and
  compute deltas with *noise-aware significance*: a delta only counts
  when it clears a floor combining an absolute slack, a relative
  fraction of the metric, and a multiple of the across-seed standard
  deviation (``seed_stats``) when the records carry one.  The
  floor-plus-slack shape is the ``bench_kernel_perf`` paired-timing
  noise guard (:func:`within_noise`), reused here verbatim — sub-noise
  deltas are never flagged.
* **attribute** — every significant latency regression is pushed down
  the observability stack: journey segment aggregates say *what kind*
  of wait grew (arbitration, NI queueing, setup, detour...), per-flow
  rows say *which traffic* pays it, and link telemetry says *which
  resource* congested — "p99 +14%: +9% arbitration_wait (m0->m3);
  link bus0 busy +12%".
* **gate** — :func:`regress` re-runs the fleet configurations recorded
  in a checked-in baseline ledger and applies per-metric budgets;
  ``repro regress`` exits 0 (clean) / 1 (regression) / 2 (error), so
  CI gates on observability data, not just test pass/fail.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.ledger import (RUN_SCHEMA, LedgerError, RunLedger,
                              run_id_of, validate_run)

#: schema tag of the document :func:`diff_runs` emits
DIFF_SCHEMA = "repro.diff/1"

#: paired-measurement noise envelope (factor, slack) — the
#: ``bench_kernel_perf`` journey-overhead guard, shared via
#: :func:`within_noise`
NOISE_FACTOR = 2.0
NOISE_SLACK = 0.05

#: flattened metric paths where *larger* is worse (costs); everything
#: matching ``_WORSE_DOWN`` instead treats *smaller* as worse (goods)
_WORSE_DOWN = (
    "*delivered*", "*availability*", "*coverage*", "*recovered*",
    "*survived*", "*ff_cycles_skipped*", "*ff_jumps*",
)

#: never compared at all: unbounded raw series and identifiers
_SKIP_KEYS = ("series", "critical_paths", "records", "alerts", "seed",
              "seeds", "target", "arch", "engine")


def within_noise(candidate: float, reference: float,
                 factor: float = NOISE_FACTOR,
                 slack: float = NOISE_SLACK) -> bool:
    """True when ``candidate`` is within the paired-measurement noise
    envelope of ``reference`` — the ``bench_kernel_perf`` overhead
    guard (``candidate <= reference * factor + slack``).  Used for
    wall-clock comparisons, where only a multiplicative blow-up plus
    an absolute allowance is meaningful."""
    return candidate <= reference * factor + slack


# ----------------------------------------------------------------------
# alignment
# ----------------------------------------------------------------------
def align(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Classify how two run records relate; see the module docstring.

    Returns ``{"mode": ..., "notes": [...]}``.  ``mixed`` means the
    records share neither config nor seed — deltas are reported but
    significance is advisory at best.
    """
    notes: List[str] = []
    same_config = (a.get("kind") == b.get("kind")
                   and a.get("name") == b.get("name")
                   and a.get("config_hash") == b.get("config_hash"))
    # the seed identity covers a fleet's seed *list* too (excluded
    # from the config hash exactly so seed-shifted fleets align here)
    same_seed = (a.get("seed") == b.get("seed")
                 and (a.get("config") or {}).get("seeds")
                 == (b.get("config") or {}).get("seeds"))
    same_engine = a.get("engine") == b.get("engine")
    va, vb = a.get("versions", {}), b.get("versions", {})
    same_version = (va.get("package") == vb.get("package")
                    and va.get("git") == vb.get("git"))
    if not same_version:
        notes.append(f"versions differ: {va.get('package')}@"
                     f"{(va.get('git') or '?')[:10]} vs "
                     f"{vb.get('package')}@{(vb.get('git') or '?')[:10]}")
    if same_config:
        if not same_seed:
            mode = "seed"
            if not same_engine:
                notes.append("engines differ too; the seed noise "
                             "model dominates")
        elif not same_engine:
            mode = "engine"
        elif same_version:
            mode = "identical"
        else:
            mode = "version"
    elif same_seed and a.get("kind") == b.get("kind"):
        mode = "config"
        notes.append(f"configs differ: {a.get('name')}/"
                     f"{a.get('config_hash')[:8]} vs {b.get('name')}/"
                     f"{b.get('config_hash')[:8]}")
    else:
        mode = "mixed"
        notes.append("records share neither config nor seed; "
                     "significance is advisory")
    return {"mode": mode, "notes": notes}


# ----------------------------------------------------------------------
# flattening
# ----------------------------------------------------------------------
def _flatten(value: Any, path: str, out: Dict[str, float]) -> None:
    if isinstance(value, bool):
        out[path] = float(value)
    elif isinstance(value, (int, float)):
        out[path] = float(value)
    elif isinstance(value, dict):
        for key, sub in value.items():
            if key in _SKIP_KEYS:
                continue
            _flatten(sub, f"{path}.{key}" if path else str(key), out)
    elif isinstance(value, list) and len(value) <= 64:
        for i, sub in enumerate(value):
            _flatten(sub, f"{path}.{i}", out)


def flatten_metrics(doc: Dict[str, Any]) -> Dict[str, float]:
    """Every comparable numeric metric of a record as dotted paths.

    Stats flatten in full; telemetry flattens per flow/link keyed by
    identity (src->dst / link name), not list position, so records
    whose flow sets differ still match where they overlap; journeys
    flatten to per-flow per-segment cycle totals.
    """
    out: Dict[str, float] = {}
    _flatten(doc.get("stats"), "stats", out)
    _flatten(doc.get("kernel"), "kernel", out)
    _flatten(doc.get("resilience"), "resilience", out)
    _flatten(doc.get("seed_stats"), "seed_stats", out)
    for entry in doc.get("telemetry", ()):
        base = f"telemetry.{entry.get('index', 0)}"
        for flow in entry.get("flows", ()):
            fbase = f"{base}.flow.{flow['src']}->{flow['dst']}"
            out[f"{fbase}.messages"] = _num(flow["messages"])
            out[f"{fbase}.bytes"] = _num(flow.get("bytes", 0))
            for stat in ("mean", "p50", "p99", "max"):
                out[f"{fbase}.latency.{stat}"] = \
                    _num(flow["latency"][stat])
            out[f"{fbase}.jitter.mean"] = _num(flow["jitter"]["mean"])
        for link in entry.get("links", ()):
            lbase = f"{base}.link.{link['name']}"
            out[f"{lbase}.busy_cycles"] = _num(link["busy_cycles"])
            out[f"{lbase}.overall_utilization"] = \
                _num(link.get("overall_utilization", 0.0))
            out[f"{lbase}.stalls"] = _num(link.get("stalls", 0))
            out[f"{lbase}.wait.mean"] = \
                _num(link.get("wait", {}).get("mean", 0.0))
            out[f"{lbase}.queue_watermark"] = \
                _num(link.get("queue_watermark", 0))
        for key, value in entry.get("counters", {}).items():
            out[f"{base}.counter.{key}"] = _num(value)
    j = doc.get("journeys")
    if j:
        out["journeys.coverage"] = _num(j.get("coverage", 0.0))
        for entry in j.get("simulators", ()):
            base = f"journeys.{entry.get('index', 0)}"
            for row in entry.get("flows", ()):
                fbase = f"{base}.flow.{row['src']}->{row['dst']}"
                out[f"{fbase}.latency.mean"] = \
                    _num(row["latency"]["mean"])
                out[f"{fbase}.latency.p99"] = \
                    _num(row["latency"]["p99"])
                for kind, seg in row.get("segments", {}).items():
                    out[f"{fbase}.segment.{kind}"] = \
                        _num(seg["cycles"])
    return out


# ----------------------------------------------------------------------
# budgets & significance
# ----------------------------------------------------------------------
@dataclass
class Budget:
    """Noise/regression budget for metric paths matching ``pattern``.

    The significance floor for a matched metric is::

        max(abs, rel * max(|a|, |b|), sigma * seed_std)

    with ``seed_std`` from the records' ``seed_stats`` spread when
    available.  ``ignore=True`` makes matched metrics informational
    (reported, never significant) — e.g. kernel self-metrics under an
    engine alignment, where the two backends legitimately count
    different work.
    """

    pattern: str
    rel: float = 0.0
    abs: float = 0.0
    sigma: float = 0.0
    ignore: bool = False

    def matches(self, path: str) -> bool:
        return fnmatchcase(path, self.pattern)


#: per-alignment default budgets, first match wins.  ``identical`` and
#: ``engine`` pairs are produced by a deterministic simulator, so any
#: stats delta is significant; ``seed`` pairs only flag when a metric
#: more than doubles past the across-seed spread (the never-flag-noise
#: contract); ``config`` pairs are intentional comparisons with a
#: moderate floor.
DEFAULT_BUDGETS: Dict[str, List[Budget]] = {
    "identical": [Budget("*")],
    "engine": [Budget("kernel.*", ignore=True), Budget("*")],
    "version": [Budget("kernel.*", rel=0.25, abs=64.0),
                Budget("*")],
    "seed": [Budget("*", rel=1.0, abs=4.0, sigma=6.0)],
    "config": [Budget("*", rel=0.25, abs=4.0, sigma=4.0)],
    "mixed": [Budget("*", rel=0.25, abs=4.0, sigma=4.0)],
}


def _seed_std(path: str, *docs: Dict[str, Any]) -> float:
    """Across-seed std for a metric path, from either record's
    ``seed_stats`` spread (matched on the path's metric basename)."""
    best = 0.0
    for doc in docs:
        for metric, spread in (doc.get("seed_stats") or {}).items():
            if path == f"stats.{metric}" or path.endswith(f".{metric}"):
                best = max(best, float(spread.get("std", 0.0)))
    return best


def _is_worse(path: str, delta: float) -> bool:
    """Whether a significant delta moves the metric the bad way."""
    if any(fnmatchcase(path, pat) for pat in _WORSE_DOWN):
        return delta < 0
    return delta > 0


def compare_metrics(a: Dict[str, Any], b: Dict[str, Any],
                    budgets: List[Budget]) -> List[Dict[str, Any]]:
    """Delta rows for every metric path present in both records."""
    ma, mb = flatten_metrics(a), flatten_metrics(b)
    rows: List[Dict[str, Any]] = []
    for path in sorted(set(ma) & set(mb)):
        va, vb = ma[path], mb[path]
        delta = vb - va
        budget = next((bud for bud in budgets if bud.matches(path)),
                      None)
        if budget is None or budget.ignore:
            floor = None
            significant = False
        else:
            floor = max(budget.abs,
                        budget.rel * max(abs(va), abs(vb)),
                        budget.sigma * _seed_std(path, a, b))
            significant = abs(delta) > floor
        if delta == 0 and not significant:
            continue
        rows.append({
            "metric": path,
            "a": va,
            "b": vb,
            "delta": delta,
            "rel": delta / abs(va) if va else None,
            "floor": floor,
            "significant": significant,
            "regression": significant and _is_worse(path, delta),
        })
    return rows


# ----------------------------------------------------------------------
# attribution
# ----------------------------------------------------------------------
def _num(value: Any, default: float = 0.0) -> float:
    """Numeric or ``default`` — empty-histogram summaries serialize
    non-finite floats as strings ("nan"), which must not poison
    arithmetic."""
    return float(value) if isinstance(value, (int, float)) \
        and not isinstance(value, bool) else default


def _journey_rows(doc: Dict[str, Any]
                  ) -> Dict[Tuple[int, str, str], Dict[str, Any]]:
    out: Dict[Tuple[int, str, str], Dict[str, Any]] = {}
    for entry in (doc.get("journeys") or {}).get("simulators", ()):
        for row in entry.get("flows", ()):
            out[(entry.get("index", 0), row["src"], row["dst"])] = row
    return out


def _link_rows(doc: Dict[str, Any]
               ) -> Dict[Tuple[int, str], Dict[str, Any]]:
    out: Dict[Tuple[int, str], Dict[str, Any]] = {}
    for entry in doc.get("telemetry", ()):
        for link in entry.get("links", ()):
            out[(entry.get("index", 0), link["name"])] = link
    return out


def attribute_latency(a: Dict[str, Any], b: Dict[str, Any]
                      ) -> Dict[str, Any]:
    """Where latency growth between two records comes from.

    Per matched flow, the per-segment cycle deltas (journey
    aggregates) expressed as a share of the flow's baseline latency;
    per matched link, the busy/backpressure deltas.  Sorted by
    contribution, largest first.
    """
    segments: List[Dict[str, Any]] = []
    ja, jb = _journey_rows(a), _journey_rows(b)
    for key in sorted(set(ja) & set(jb)):
        row_a, row_b = ja[key], jb[key]
        base = max(row_a["latency"]["total"], 1)
        kinds = set(row_a.get("segments", {})) \
            | set(row_b.get("segments", {}))
        for kind in sorted(kinds):
            ca = row_a.get("segments", {}).get(kind, {}) \
                .get("cycles", 0)
            cb = row_b.get("segments", {}).get(kind, {}) \
                .get("cycles", 0)
            if cb == ca:
                continue
            segments.append({
                "sim": key[0],
                "flow": f"{key[1]}->{key[2]}",
                "segment": kind,
                "a_cycles": ca,
                "b_cycles": cb,
                "delta_cycles": cb - ca,
                "share": (cb - ca) / base,
            })
    segments.sort(key=lambda s: -abs(s["delta_cycles"]))

    links: List[Dict[str, Any]] = []
    la, lb = _link_rows(a), _link_rows(b)
    for key in sorted(set(la) & set(lb)):
        link_a, link_b = la[key], lb[key]
        busy_delta = _num(link_b["busy_cycles"]) \
            - _num(link_a["busy_cycles"])
        wait_delta = _num(link_b.get("wait", {}).get("mean")) \
            - _num(link_a.get("wait", {}).get("mean"))
        stall_delta = _num(link_b.get("stalls", 0)) \
            - _num(link_a.get("stalls", 0))
        if not (busy_delta or wait_delta or stall_delta):
            continue
        links.append({
            "sim": key[0],
            "link": key[1],
            "busy_delta": busy_delta,
            "busy_rel": (busy_delta / link_a["busy_cycles"]
                         if link_a["busy_cycles"] else None),
            "wait_mean_delta": wait_delta,
            "stalls_delta": stall_delta,
        })
    links.sort(key=lambda l: -abs(l["busy_delta"]))
    return {"segments": segments, "links": links}


#: extracts the ``src->dst`` flow out of a dotted metric path
_FLOW_RE = re.compile(r"\.flow\.([^.]+)\.")


def _attribution_summary(attribution: Dict[str, Any],
                         top: int = 3,
                         flow: Optional[str] = None) -> str:
    """One human line: the top segment and link contributors.

    For a per-flow metric, ``flow`` narrows the segment contributors
    to that flow's own journey — the answer to "where did *this*
    flow's regression come from", not a repeat of the global picture.
    """
    segments = attribution["segments"]
    if flow is not None:
        own = [s for s in segments if s["flow"] == flow]
        if own:
            segments = own
    parts = []
    for seg in segments[:top]:
        parts.append(f"{seg['share']:+.0%} {seg['segment']} "
                     f"({seg['flow']})")
    for link in attribution["links"][:top]:
        if link["busy_rel"] is not None:
            parts.append(f"link {link['link']} busy "
                         f"{link['busy_rel']:+.0%}")
        else:
            parts.append(f"link {link['link']} busy "
                         f"{link['busy_delta']:+d} cycles")
    return "; ".join(parts) if parts else "no attribution overlap"


# ----------------------------------------------------------------------
# the diff document
# ----------------------------------------------------------------------
def _side(doc: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "run_id": run_id_of(doc),
        "kind": doc.get("kind"),
        "name": doc.get("name"),
        "seed": doc.get("seed"),
        "engine": doc.get("engine"),
        "config_hash": doc.get("config_hash"),
        "versions": doc.get("versions"),
    }


def diff_runs(a: Dict[str, Any], b: Dict[str, Any],
              budgets: Optional[List[Budget]] = None
              ) -> Dict[str, Any]:
    """The ``repro.diff/1`` document comparing two run records."""
    for side, doc in (("a", a), ("b", b)):
        if doc.get("schema") != RUN_SCHEMA:
            raise LedgerError(f"record {side} is not a {RUN_SCHEMA} "
                              f"document (schema="
                              f"{doc.get('schema')!r})")
    alignment = align(a, b)
    if budgets is None:
        budgets = DEFAULT_BUDGETS[alignment["mode"]]
    rows = compare_metrics(a, b, budgets)
    significant = [r for r in rows if r["significant"]]
    regressions = [r for r in significant if r["regression"]]
    doc: Dict[str, Any] = {
        "schema": DIFF_SCHEMA,
        "a": _side(a),
        "b": _side(b),
        "alignment": alignment,
        "compared": len(set(flatten_metrics(a))
                        & set(flatten_metrics(b))),
        "deltas": rows[:500],
        "significant": len(significant),
        "regressions": [r["metric"] for r in regressions],
    }
    latency_regressions = [
        r for r in regressions
        if "latency" in r["metric"] or "wait" in r["metric"]
        or "quiesce" in r["metric"]
    ]
    if latency_regressions:
        attribution = attribute_latency(a, b)
        doc["attribution"] = attribution
        summary: Dict[str, str] = {}
        for r in latency_regressions:
            m = _FLOW_RE.search(r["metric"])
            prefix = (f"{r['metric'].rsplit('.', 1)[-1]} "
                      f"{r['rel']:+.0%}: "
                      if r["rel"] is not None else "")
            summary[r["metric"]] = prefix + _attribution_summary(
                attribution, flow=m.group(1) if m else None)
        doc["attribution_summary"] = summary
    return doc


def render_diff(doc: Dict[str, Any], top: int = 20) -> str:
    """Terminal rendering of a diff document."""
    a, b = doc["a"], doc["b"]
    lines = [
        f"diff         : {a['run_id']} -> {b['run_id']}",
        f"a            : [{a['kind']}] {a['name']} seed={a['seed']} "
        f"engine={a['engine'] or 'default'}",
        f"b            : [{b['kind']}] {b['name']} seed={b['seed']} "
        f"engine={b['engine'] or 'default'}",
        f"alignment    : {doc['alignment']['mode']}",
    ]
    for note in doc["alignment"]["notes"]:
        lines.append(f"               {note}")
    lines.append(f"metrics      : {doc['compared']} compared, "
                 f"{len(doc['deltas'])} changed, "
                 f"{doc['significant']} significant, "
                 f"{len(doc['regressions'])} regression(s)")
    shown = sorted(doc["deltas"],
                   key=lambda r: (not r["significant"],
                                  -abs(r["delta"])))[:top]
    if shown:
        lines.append("")
        lines.append(f"{'metric':<52}{'a':>12}{'b':>12}{'delta':>12}  "
                     f"flag")
        for r in shown:
            flag = ("REGRESSION" if r["regression"]
                    else "significant" if r["significant"] else "")
            lines.append(f"{r['metric'][:52]:<52}{r['a']:>12.4g}"
                         f"{r['b']:>12.4g}{r['delta']:>+12.4g}  {flag}")
    summaries = list(doc.get("attribution_summary", {}).items())
    for metric, summary in summaries[:8]:
        lines.append("")
        lines.append(f"attribution  : {metric}")
        lines.append(f"               {summary}")
    if len(summaries) > 8:
        lines.append(f"               ... {len(summaries) - 8} more "
                     f"attributed metric(s); see --json")
    if not doc["regressions"]:
        lines.append("")
        lines.append("verdict      : no significant regressions")
    else:
        lines.append("")
        lines.append(f"verdict      : "
                     f"{len(doc['regressions'])} REGRESSION(S): "
                     + ", ".join(doc["regressions"][:8]))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the regression gate
# ----------------------------------------------------------------------
#: budgets for baseline gating: the simulator is deterministic, so the
#: paper-table stats get tight bounds (latency may drift 5% before the
#: gate trips; deliveries must not drop at all); wall-clock and
#: kernel internals are not gated here
REGRESS_BUDGETS: List[Budget] = [
    Budget("stats.per_seed.*", rel=0.05, abs=2.0),
    Budget("stats.mean_latency", rel=0.05, abs=1.0),
    Budget("stats.*latency*", rel=0.10, abs=2.0),
    Budget("stats.delivered_total"),
    Budget("stats.sent"),
    Budget("seed_stats.*latency*", rel=0.10, abs=2.0),
    Budget("seed_stats.*", rel=0.05, abs=1.0),
    Budget("kernel.*", ignore=True),
    Budget("*", rel=0.10, abs=2.0),
]


@dataclass
class RegressReport:
    """Outcome of one ``repro regress`` invocation."""

    baseline_dir: str
    checked: int = 0
    regressions: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    diffs: List[Dict[str, Any]] = field(default_factory=list)
    written: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """The contract CI gates on: 0 clean, 1 regression, 2 error."""
        if self.errors:
            return 2
        if self.regressions:
            return 1
        return 0

    def render(self) -> str:
        lines = [f"baseline     : {self.baseline_dir} "
                 f"({self.checked} configuration(s) checked)"]
        for d in self.diffs:
            b = d["b"]
            verdict = ("CLEAN" if not d["regressions"]
                       else f"{len(d['regressions'])} REGRESSION(S)")
            lines.append(f"  [{b['kind']}] {b['name']} "
                         f"seed(s)={b['seed'] if b['seed'] is not None else 'fleet'} "
                         f"engine={b['engine'] or 'default'}: "
                         f"{d['significant']} significant of "
                         f"{d['compared']} -> {verdict}")
            for metric in d["regressions"]:
                lines.append(f"      {metric}")
            for metric, summary in d.get("attribution_summary",
                                         {}).items():
                lines.append(f"      {metric}: {summary}")
        for err in self.errors:
            lines.append(f"  ERROR: {err}")
        if self.written:
            lines.append(f"wrote baseline record(s): "
                         + ", ".join(self.written))
        lines.append(f"verdict      : exit {self.exit_code} "
                     + {0: "(clean)", 1: "(regression)",
                        2: "(error)"}[self.exit_code])
        return "\n".join(lines)


def _rebuild_fleet(record: Dict[str, Any]) -> Optional[str]:
    """Re-run the fleet configuration a baseline record describes;
    returns the fresh record's run id (None when the ledger is off)."""
    from repro.analysis.batch import run_seed_fleet

    config = dict(record.get("config") or {})
    seeds = config.pop("seeds", None)
    if not seeds:
        raise LedgerError(f"baseline fleet record for "
                          f"{record.get('name')!r} lists no seeds")
    fleet = run_seed_fleet(record["name"], seeds,
                           engine=record.get("engine"), **config)
    return fleet.run_id


def regress(baseline_dir: str,
            budgets: Optional[List[Budget]] = None,
            names: Optional[Iterable[str]] = None,
            write_baseline: bool = False) -> RegressReport:
    """Compare fresh runs against a checked-in baseline ledger.

    Every ``fleet`` record in ``baseline_dir`` names a configuration
    (architecture, workload, seeds, engine); each is re-run fresh and
    diffed against its baseline with :data:`REGRESS_BUDGETS`.  With
    ``write_baseline=True`` the fresh records replace the baseline
    instead of being gated (use after an intentional change).
    """
    from repro.obs.ledger import ledger_enabled

    report = RegressReport(baseline_dir=baseline_dir)
    if budgets is None:
        budgets = REGRESS_BUDGETS
    if not ledger_enabled():
        report.errors.append("the run ledger is disabled "
                             "(REPRO_LEDGER=0); regress needs fresh "
                             "records to compare")
        return report
    baseline = RunLedger(baseline_dir)
    records = []
    try:
        for rid in baseline.ids():
            rec = baseline.load(rid)
            if rec.get("kind") != "fleet":
                continue
            if names and rec.get("name") not in set(names):
                continue
            validate_run(rec)
            records.append((rid, rec))
    except (LedgerError, ValueError) as exc:
        report.errors.append(str(exc))
        return report
    if not records:
        report.errors.append(
            f"no baseline fleet records in {baseline.runs_dir} "
            f"(populate with --write-baseline)")
        return report

    fresh_ledger = RunLedger()
    for rid, rec in records:
        try:
            fresh_id = _rebuild_fleet(rec)
            if fresh_id is None:
                raise LedgerError("fleet run produced no ledger record")
            fresh = fresh_ledger.load(fresh_id)
            validate_run(fresh)
        except (LedgerError, ValueError, KeyError) as exc:
            report.errors.append(f"{rec.get('name')}: {exc}")
            continue
        report.checked += 1
        if write_baseline:
            os.makedirs(baseline.runs_dir, exist_ok=True)
            try:
                os.unlink(baseline.path_for(rid))
            except OSError:
                pass
            report.written.append(baseline.store(fresh))
            continue
        d = diff_runs(rec, fresh, budgets=budgets)
        report.diffs.append(d)
        report.regressions.extend(
            f"{rec.get('name')}: {metric}"
            for metric in d["regressions"])
    return report


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def load_record(ref: str, ledger: Optional[RunLedger] = None
                ) -> Dict[str, Any]:
    """A run record from a path (``*.json`` file) or a ledger run-id
    prefix."""
    if os.path.sep in ref or ref.endswith(".json") \
            or os.path.isfile(ref):
        with open(ref, encoding="utf-8") as fh:
            return json.load(fh)
    ledger = ledger or RunLedger()
    return ledger.load(ledger.resolve(ref))
