"""Chrome trace-event / Perfetto JSON export.

Converts :class:`~repro.sim.trace.Tracer` contents (point events and
spans) into the Trace Event Format JSON that both ``chrome://tracing``
and https://ui.perfetto.dev load directly.

Mapping:

* one *process* per simulator (``process_name`` = the simulator name);
* one *thread* per event source (``rmboc``, ``reconfig``, ...);
* point events become instant events (``ph: "i"``), spans become
  complete events (``ph: "X"``);
* one simulated **cycle** is exported as one **microsecond**, so the
  Perfetto timeline reads directly in cycles.

When a :class:`~repro.obs.journey.JourneyRecorder` is attached, each
sampled message's segments additionally become per-source ``journey:*``
threads whose slices are chained by *flow events* (``ph`` s/t/f
sharing one id per message chain) — so one message's hops, and any
fault-triggered retransmission copies, read as a single connected arc
in the Perfetto UI.  Fault incidents get the same treatment: an arc
per outage links the injection, the ``detected`` instant and the
recovery end of the ``faults.outage`` span.

Kernel self-metrics and profiler results ride along in ``otherData``
(Perfetto ignores unknown top-level keys).
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Sequence, Union

from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

#: journey threads sit above the tracer's per-source tids so the two
#: namespaces can never collide however many sources a tracer grows
_JOURNEY_TID_BASE = 1000


def _jsonable(value: Any) -> Any:
    """Coerce trace-event payloads to JSON-safe structures (tuple dict
    keys, coordinate tuples, sets...)."""
    if isinstance(value, dict):
        return {
            k if isinstance(k, str) else str(k): _jsonable(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _tracer_events(
    tracer: Tracer, pid: int,
) -> "tuple[List[Dict[str, Any]], Dict[str, int]]":
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}

    def tid_for(source: str) -> int:
        if source not in tids:
            tids[source] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tids[source], "args": {"name": source},
            })
        return tids[source]

    for ev in tracer.events:
        events.append({
            "name": ev.kind, "cat": ev.source, "ph": "i", "s": "t",
            "ts": ev.cycle, "pid": pid, "tid": tid_for(ev.source),
            "args": _jsonable(ev.data),
        })
    for sp in tracer.spans:
        events.append({
            "name": sp.kind, "cat": sp.source, "ph": "X",
            "ts": sp.begin, "dur": sp.duration,
            "pid": pid, "tid": tid_for(sp.source),
            "args": _jsonable(sp.data),
        })
    return events, tids


def _fault_flow_events(tracer: Tracer, pid: int,
                       tid: int) -> List[Dict[str, Any]]:
    """Flow events binding each fault incident into one arc: injection
    (outage span begin) -> ``detected`` instant -> recovery (span end).

    All three points live on the ``faults`` thread ``tid``, so the arc
    attaches to the outage slice and the detection instant the tracer
    already exports.  Detection instants are matched to their outage by
    (kind, target) within the span window, each consumed at most once —
    concurrent same-kind faults on different targets stay separate.
    """
    outages = [sp for sp in tracer.spans
               if sp.source == "faults" and sp.kind == "outage"]
    if not outages:
        return []
    detections = [ev for ev in tracer.events
                  if ev.source == "faults" and ev.kind == "detected"]
    used = [False] * len(detections)
    events: List[Dict[str, Any]] = []
    for i, sp in enumerate(outages):
        arc = f"fault{pid}-{i}"
        common = {"id": arc, "name": "fault-arc", "cat": "faults",
                  "pid": pid, "tid": tid}
        events.append({"ph": "s", "ts": sp.begin, **common})
        for j, ev in enumerate(detections):
            if used[j] or not sp.begin <= ev.cycle <= sp.end:
                continue
            if (ev.data.get("fault") != sp.data.get("fault")
                    or ev.data.get("target") != sp.data.get("target")):
                continue
            used[j] = True
            events.append({"ph": "t", "ts": ev.cycle, **common})
            break
        events.append({"ph": "f", "bp": "e", "ts": sp.end, **common})
    return events


def _journey_events(journey, pid: int) -> List[Dict[str, Any]]:
    """Sampled journeys as per-segment ``X`` slices on ``journey:<src>``
    threads, chained by flow events sharing one id per message chain.

    A retransmission copy reuses its dropped original's arc id (chains
    resolved through ``retrans_of``), so a NODE_DOWN incident reads as
    enqueue -> ... -> drop -> resend -> ... -> delivery in one sweep.
    The flow terminates (``ph: "f"``) only at a delivery, or at a drop
    nothing retransmitted — a dropped-then-resent original keeps the
    arc open for its copy's segments to continue.
    """
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}
    records = journey.records

    def tid_for(src: str) -> int:
        if src not in tids:
            tids[src] = _JOURNEY_TID_BASE + len(tids)
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tids[src], "args": {"name": f"journey:{src}"},
            })
        return tids[src]

    def root_of(mid: int) -> int:
        seen = set()
        while mid not in seen:
            seen.add(mid)
            rec = records.get(mid)
            if rec is None or rec.retrans_of is None:
                break
            mid = rec.retrans_of
        return mid

    resent = {r.retrans_of for r in records.values()
              if r.retrans_of is not None}
    for mid in sorted(records):
        rec = records[mid]
        tid = tid_for(rec.src)
        arc = f"j{pid}-{root_of(mid)}"
        terminal = rec.delivered >= 0 or (rec.dropped
                                          and mid not in resent)
        opens_arc = rec.retrans_of is None
        args = {"mid": rec.mid, "src": rec.src, "dst": rec.dst,
                "bytes": rec.payload_bytes}
        if rec.retrans_of is not None:
            args["retrans_of"] = rec.retrans_of
        if rec.fault is not None:
            args["fault"] = _jsonable(rec.fault)
        last = len(rec.segments) - 1
        for n, (kind, start, end) in enumerate(rec.segments):
            events.append({
                "name": kind, "cat": "journey", "ph": "X",
                "ts": start, "dur": end - start,
                "pid": pid, "tid": tid, "args": args,
            })
            if last == 0 and opens_arc and terminal:
                continue  # one-point chain: nothing to link
            flow = {"id": arc, "name": "journey", "cat": "journey",
                    "pid": pid, "tid": tid, "ts": start}
            if n == 0 and opens_arc:
                events.append({"ph": "s", **flow})
            elif n == last and terminal:
                events.append({"ph": "f", "bp": "e", **flow})
            else:
                events.append({"ph": "t", **flow})
        if rec.dropped:
            events.append({
                "name": "dropped", "cat": "journey", "ph": "i", "s": "t",
                "ts": rec.cursor, "pid": pid, "tid": tid,
                "args": {**args, "why": rec.drop_why},
            })
    return events


def to_chrome_trace(
    sims: Union[Simulator, Sequence[Simulator]],
) -> Dict[str, Any]:
    """Build the Trace Event Format dict for one or more simulators.

    Simulators without a tracer contribute only their process metadata
    and kernel metrics, so a profile-only run still exports cleanly.
    """
    if isinstance(sims, Simulator):
        sims = [sims]
    trace_events: List[Dict[str, Any]] = []
    other: Dict[str, Any] = {"simulators": []}
    for pid, sim in enumerate(sims, start=1):
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid,
            "args": {"name": sim.name},
        })
        meta: Dict[str, Any] = {
            "pid": pid,
            "name": sim.name,
            "final_cycle": sim.cycle,
            "fast_path": sim.fast_path,
            "kernel": sim.kmetrics.as_dict(),
            "tick_counts": _jsonable(sim.tick_counts()),
        }
        tracer = sim.tracer
        if tracer is not None:
            tev, tids = _tracer_events(tracer, pid)
            trace_events.extend(tev)
            if "faults" in tids:
                trace_events.extend(
                    _fault_flow_events(tracer, pid, tids["faults"]))
            meta["dropped_events"] = tracer.dropped
            meta["dropped_spans"] = tracer.dropped_spans
            meta["open_spans"] = _jsonable(tracer.open_spans())
        if sim.journey is not None:
            trace_events.extend(_journey_events(sim.journey, pid))
            meta["journeys"] = {
                "records": len(sim.journey),
                "sampled_out": sim.journey.sampled_out,
                "capped": sim.journey.capped,
            }
        if sim.profiler is not None:
            meta["profile"] = sim.profiler.as_dict()
        if sim.telemetry is not None:
            # flow/link/alert snapshot rides along with the timeline;
            # fired alerts are also span events on the "alerts" thread
            meta["telemetry"] = _jsonable(sim.telemetry.snapshot(sim.cycle))
        other["simulators"].append(meta)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    path_or_file: Union[str, IO[str]],
    sims: Union[Simulator, Sequence[Simulator]],
) -> None:
    """Serialize :func:`to_chrome_trace` to ``path_or_file`` as JSON."""
    doc = to_chrome_trace(sims)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
    else:
        json.dump(doc, path_or_file)


def summarize_trace(
    sims: Union[Simulator, Sequence[Simulator]], top: int = 10,
) -> str:
    """Terminal top-N summary: span kinds by total cycles, then event
    kinds by count, aggregated across simulators."""
    if isinstance(sims, Simulator):
        sims = [sims]
    span_cycles: Dict[str, int] = {}
    span_counts: Dict[str, int] = {}
    event_counts: Dict[str, int] = {}
    for sim in sims:
        tracer = sim.tracer
        if tracer is None:
            continue
        for sp in tracer.spans:
            name = f"{sp.source}.{sp.kind}"
            span_cycles[name] = span_cycles.get(name, 0) + sp.duration
            span_counts[name] = span_counts.get(name, 0) + 1
        for ev in tracer.events:
            name = f"{ev.source}.{ev.kind}"
            event_counts[name] = event_counts.get(name, 0) + 1
    lines: List[str] = []
    if span_cycles:
        lines.append(f"{'span':<28} {'count':>8} {'cycles':>12} {'mean':>10}")
        ranked = sorted(span_cycles.items(), key=lambda kv: -kv[1])[:top]
        for name, cycles in ranked:
            n = span_counts[name]
            lines.append(f"{name:<28} {n:>8} {cycles:>12} {cycles / n:>10.1f}")
    if event_counts:
        if lines:
            lines.append("")
        lines.append(f"{'event':<28} {'count':>8}")
        for name, n in sorted(event_counts.items(), key=lambda kv: -kv[1])[:top]:
            lines.append(f"{name:<28} {n:>8}")
    return "\n".join(lines) if lines else "(no trace data recorded)"
