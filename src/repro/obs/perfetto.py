"""Chrome trace-event / Perfetto JSON export.

Converts :class:`~repro.sim.trace.Tracer` contents (point events and
spans) into the Trace Event Format JSON that both ``chrome://tracing``
and https://ui.perfetto.dev load directly.

Mapping:

* one *process* per simulator (``process_name`` = the simulator name);
* one *thread* per event source (``rmboc``, ``reconfig``, ...);
* point events become instant events (``ph: "i"``), spans become
  complete events (``ph: "X"``);
* one simulated **cycle** is exported as one **microsecond**, so the
  Perfetto timeline reads directly in cycles.

Kernel self-metrics and profiler results ride along in ``otherData``
(Perfetto ignores unknown top-level keys).
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Sequence, Union

from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


def _jsonable(value: Any) -> Any:
    """Coerce trace-event payloads to JSON-safe structures (tuple dict
    keys, coordinate tuples, sets...)."""
    if isinstance(value, dict):
        return {
            k if isinstance(k, str) else str(k): _jsonable(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _tracer_events(tracer: Tracer, pid: int) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}

    def tid_for(source: str) -> int:
        if source not in tids:
            tids[source] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tids[source], "args": {"name": source},
            })
        return tids[source]

    for ev in tracer.events:
        events.append({
            "name": ev.kind, "cat": ev.source, "ph": "i", "s": "t",
            "ts": ev.cycle, "pid": pid, "tid": tid_for(ev.source),
            "args": _jsonable(ev.data),
        })
    for sp in tracer.spans:
        events.append({
            "name": sp.kind, "cat": sp.source, "ph": "X",
            "ts": sp.begin, "dur": sp.duration,
            "pid": pid, "tid": tid_for(sp.source),
            "args": _jsonable(sp.data),
        })
    return events


def to_chrome_trace(
    sims: Union[Simulator, Sequence[Simulator]],
) -> Dict[str, Any]:
    """Build the Trace Event Format dict for one or more simulators.

    Simulators without a tracer contribute only their process metadata
    and kernel metrics, so a profile-only run still exports cleanly.
    """
    if isinstance(sims, Simulator):
        sims = [sims]
    trace_events: List[Dict[str, Any]] = []
    other: Dict[str, Any] = {"simulators": []}
    for pid, sim in enumerate(sims, start=1):
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid,
            "args": {"name": sim.name},
        })
        meta: Dict[str, Any] = {
            "pid": pid,
            "name": sim.name,
            "final_cycle": sim.cycle,
            "fast_path": sim.fast_path,
            "kernel": sim.kmetrics.as_dict(),
            "tick_counts": _jsonable(sim.tick_counts()),
        }
        tracer = sim.tracer
        if tracer is not None:
            trace_events.extend(_tracer_events(tracer, pid))
            meta["dropped_events"] = tracer.dropped
            meta["dropped_spans"] = tracer.dropped_spans
            meta["open_spans"] = _jsonable(tracer.open_spans())
        if sim.profiler is not None:
            meta["profile"] = sim.profiler.as_dict()
        if sim.telemetry is not None:
            # flow/link/alert snapshot rides along with the timeline;
            # fired alerts are also span events on the "alerts" thread
            meta["telemetry"] = _jsonable(sim.telemetry.snapshot(sim.cycle))
        other["simulators"].append(meta)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    path_or_file: Union[str, IO[str]],
    sims: Union[Simulator, Sequence[Simulator]],
) -> None:
    """Serialize :func:`to_chrome_trace` to ``path_or_file`` as JSON."""
    doc = to_chrome_trace(sims)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
    else:
        json.dump(doc, path_or_file)


def summarize_trace(
    sims: Union[Simulator, Sequence[Simulator]], top: int = 10,
) -> str:
    """Terminal top-N summary: span kinds by total cycles, then event
    kinds by count, aggregated across simulators."""
    if isinstance(sims, Simulator):
        sims = [sims]
    span_cycles: Dict[str, int] = {}
    span_counts: Dict[str, int] = {}
    event_counts: Dict[str, int] = {}
    for sim in sims:
        tracer = sim.tracer
        if tracer is None:
            continue
        for sp in tracer.spans:
            name = f"{sp.source}.{sp.kind}"
            span_cycles[name] = span_cycles.get(name, 0) + sp.duration
            span_counts[name] = span_counts.get(name, 0) + 1
        for ev in tracer.events:
            name = f"{ev.source}.{ev.kind}"
            event_counts[name] = event_counts.get(name, 0) + 1
    lines: List[str] = []
    if span_cycles:
        lines.append(f"{'span':<28} {'count':>8} {'cycles':>12} {'mean':>10}")
        ranked = sorted(span_cycles.items(), key=lambda kv: -kv[1])[:top]
        for name, cycles in ranked:
            n = span_counts[name]
            lines.append(f"{name:<28} {n:>8} {cycles:>12} {cycles / n:>10.1f}")
    if event_counts:
        if lines:
            lines.append("")
        lines.append(f"{'event':<28} {'count':>8}")
        for name, n in sorted(event_counts.items(), key=lambda kv: -kv[1])[:top]:
            lines.append(f"{name:<28} {n:>8}")
    return "\n".join(lines) if lines else "(no trace data recorded)"
