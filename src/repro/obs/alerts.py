"""Declarative SLO rules over fabric telemetry.

An :class:`AlertRule` names a metric selector over a
:class:`~repro.obs.flows.FlowTelemetry` snapshot and one of three
evaluation kinds:

``threshold``
    Fire when the metric first exceeds ``threshold`` (edge-triggered:
    one alert per excursion above the threshold).
``sustained``
    Fire when the metric stays above ``threshold`` for at least
    ``for_cycles`` consecutive evaluation cycles (one alert per
    sustained episode).
``burn_rate``
    For ``counter:<name>`` metrics: fire when the counter grew by more
    than ``threshold`` within the trailing ``window`` cycles (one
    alert per storm).

Metric selectors:

=====================  ==================================================
``flow_p99_latency``   max over flows of latency p99 (cycles)
``flow_p50_latency``   max over flows of latency p50 (cycles)
``flow_jitter_p99``    max over flows of jitter p99 (cycles)
``link_utilization``   max over links of recent-window utilization [0,1]
``queue_depth``        max over links of the queue-depth watermark
``queue_current``      max over links of the *instantaneous* queue depth
``backpressure_p99``   max over links of sender-wait p99 (cycles)
``quiesce_max``        longest reconfiguration quiesce seen (cycles)
``fault_mttr_max``     longest fault recovery (injection->recovered)
``gauge:<name>``       a telemetry gauge's latest value
``counter:<name>``     a telemetry counter's running total
=====================  ==================================================

Rules are evaluated lazily from the telemetry record paths (see
:meth:`FlowTelemetry._maybe_eval`), so a quiescent fabric costs
nothing and the kernel's fast-forward is preserved.  Fired alerts are
kept on the engine, emitted as span events (source ``"alerts"``) into
an attached tracer — so they land on the Perfetto timeline — and
exported as ``repro_alert_*`` series by :mod:`repro.obs.prom`.

Every fired episode also gets an explicit edge-down **clear** event
when its metric drops back under the threshold (``Alert.event ==
"clear"``, kept on :attr:`AlertEngine.clears`), so consumers — the
``repro watch`` feed and the :mod:`repro.control` control plane — can
distinguish "resolved" from "still burning".  Subscribers registered
with :meth:`AlertEngine.subscribe` see both edges as ``listener(event,
alert)`` callbacks, and per-rule SLO burn (breach cycles of fired
episodes) is accounted in :meth:`AlertEngine.burn_cycles`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (Any, Callable, Deque, Dict, Iterable, List, Optional,
                    Tuple)

KINDS = ("threshold", "sustained", "burn_rate")

SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class AlertRule:
    """One declarative SLO rule (see module docstring for semantics)."""

    name: str
    metric: str
    threshold: float
    kind: str = "threshold"
    #: sustained: how long the breach must hold before firing
    for_cycles: int = 0
    #: burn_rate: trailing window the counter delta is measured over
    window: int = 1024
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"rule {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {KINDS})"
            )
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"rule {self.name!r}: unknown severity {self.severity!r}"
            )
        if self.kind == "sustained" and self.for_cycles <= 0:
            raise ValueError(
                f"rule {self.name!r}: sustained rules need for_cycles > 0"
            )
        if self.kind == "burn_rate":
            if not self.metric.startswith("counter:"):
                raise ValueError(
                    f"rule {self.name!r}: burn_rate rules need a "
                    f"'counter:<name>' metric, got {self.metric!r}"
                )
            if self.window <= 0:
                raise ValueError(
                    f"rule {self.name!r}: burn_rate rules need window > 0"
                )


@dataclass
class Alert:
    """One fired rule instance."""

    rule: str
    metric: str
    cycle: int
    value: float
    threshold: float
    severity: str
    kind: str
    #: cycle the breach began (== cycle for plain threshold rules)
    since: int = -1
    message: str = ""
    #: the argmax entity behind the metric value — a link name, a
    #: "src->dst" flow, or a counter/gauge key ("" when the metric has
    #: no natural subject, e.g. quiesce_max)
    subject: str = ""
    #: "fire" on edge-up, "clear" on edge-down of a fired episode
    event: str = "fire"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "metric": self.metric,
            "cycle": self.cycle,
            "since": self.since,
            "value": self.value,
            "threshold": self.threshold,
            "severity": self.severity,
            "kind": self.kind,
            "message": self.message,
            "subject": self.subject,
            "event": self.event,
        }


def default_rules(
    flow_p99_cycles: float = 2_000,
    flow_p99_for: int = 2_048,
    link_utilization: float = 0.95,
    link_utilization_for: int = 2_048,
    slot_overruns: float = 8,
    detours: float = 16,
    storm_window: int = 1_024,
    quiesce_budget_cycles: float = 10_000,
    fault_storm: float = 4,
    mttr_budget_cycles: float = 20_000,
    undelivered: float = 0,
) -> List[AlertRule]:
    """The canonical rule set the watch dashboard ships with.

    Covers the five phenomena the ISSUE calls out: flow-latency SLO
    breaches, link saturation, TDMA slot overruns (BUS-COM), DyNoC
    detour storms, and reconfiguration quiesce overruns — plus the
    resilience SLOs the chaos harness watches: fault storms, recovery
    time (MTTR) over budget, and traffic left undelivered after every
    fault in a schedule recovered.
    """
    return [
        AlertRule("flow-latency-p99", "flow_p99_latency",
                  flow_p99_cycles, kind="sustained",
                  for_cycles=flow_p99_for, severity="critical",
                  description="p99 flow latency above SLO, sustained"),
        AlertRule("link-saturation", "link_utilization",
                  link_utilization, kind="sustained",
                  for_cycles=link_utilization_for,
                  description="link utilization above 95%, sustained"),
        AlertRule("tdma-slot-overrun", "counter:buscom.slot_overrun",
                  slot_overruns, kind="burn_rate", window=storm_window,
                  description="BUS-COM dynamic slots starved while "
                              "traffic queued"),
        AlertRule("detour-storm", "counter:dynoc.detour",
                  detours, kind="burn_rate", window=storm_window,
                  description="DyNoC routers entering detour mode "
                              "faster than the obstacle churn explains"),
        AlertRule("quiesce-budget", "quiesce_max",
                  quiesce_budget_cycles, severity="critical",
                  description="a reconfiguration quiesce exceeded its "
                              "cycle budget"),
        AlertRule("fault-storm", "counter:fault.injected",
                  fault_storm, kind="burn_rate", window=storm_window,
                  description="faults injected faster than the chaos "
                              "schedule's steady state"),
        AlertRule("mttr-budget", "fault_mttr_max",
                  mttr_budget_cycles, severity="critical",
                  description="a fault recovery (detect + reroute/"
                              "reconfigure) exceeded its cycle budget"),
        AlertRule("undelivered-traffic", "gauge:fault.undelivered",
                  undelivered, kind="sustained", for_cycles=2_048,
                  severity="critical",
                  description="messages still undelivered well after "
                              "recovery — resilience SLO broken"),
    ]


class AlertEngine:
    """Evaluates :class:`AlertRule`\\ s against telemetry snapshots."""

    def __init__(self, rules: Optional[Iterable[AlertRule]] = None,
                 max_alerts: int = 1_000, cooldown: int = 0):
        self.rules: List[AlertRule] = list(
            default_rules() if rules is None else rules
        )
        seen = set()
        for rule in self.rules:
            if rule.name in seen:
                raise ValueError(f"duplicate rule name {rule.name!r}")
            seen.add(rule.name)
        self.max_alerts = max_alerts
        #: suppress a refire of the same rule within this many cycles
        #: of its previous fire (0 = every episode fires, the
        #: pre-cooldown behaviour); suppressed fires are counted in
        #: :attr:`deduped` so flap storms stay visible as a number
        #: instead of a feed full of identical lines
        self.cooldown = cooldown
        self.alerts: List[Alert] = []
        #: explicit edge-down events for fired episodes (see clears())
        self.clears: List[Alert] = []
        self.dropped = 0
        self.deduped = 0
        self.evaluations = 0
        #: rule name -> cycle the current breach episode began
        self._breach_since: Dict[str, int] = {}
        #: rule names that already fired during the current episode
        self._fired_episode: set = set()
        #: rule name -> (cycle, counter value) ring for burn rates
        self._rate_state: Dict[str, Deque[Tuple[int, float]]] = {}
        self.fired_counts: Dict[str, int] = {}
        self.last_fired: Dict[str, int] = {}
        self.cleared_counts: Dict[str, int] = {}
        self.last_cleared: Dict[str, int] = {}
        self.deduped_counts: Dict[str, int] = {}
        #: rule name -> breach cycles accumulated by *closed* fired
        #: episodes (open episodes are added by burn_cycles())
        self._burn: Dict[str, int] = {}
        self._listeners: List[Callable[[str, Alert], None]] = []

    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[[str, Alert], None]) -> None:
        """Register ``listener(event, alert)`` for ``"fire"``/``"clear"``
        edges.

        Listeners run inside the (lazy) evaluation pass, in
        subscription order — this is how the control plane closes the
        loop without any eager per-cycle walk.  Cooldown-deduped
        refires are *not* delivered: the episode is still burning and
        the listener already saw its edge-up.
        """
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    @staticmethod
    def _argmax(pairs: List[Tuple[float, str]],
                ) -> Tuple[Optional[float], str]:
        """(max value, subject) — ties pick the lexically first subject."""
        if not pairs:
            return None, ""
        value = max(v for v, _ in pairs)
        subject = min(s for v, s in pairs if v == value)
        return value, subject

    def _metric(self, rule: AlertRule, tel,
                now: int) -> Tuple[Optional[float], str]:
        """The rule's current metric value and its argmax subject."""
        metric = rule.metric
        if metric.startswith("counter:"):
            key = metric[len("counter:"):]
            return float(tel.counters.get(key, 0)), key
        if metric == "flow_p99_latency":
            return self._argmax(
                [(f.latency.percentile(99), f"{f.src}->{f.dst}")
                 for f in tel.flows.values() if f.latency.count])
        if metric == "flow_p50_latency":
            return self._argmax(
                [(f.latency.percentile(50), f"{f.src}->{f.dst}")
                 for f in tel.flows.values() if f.latency.count])
        if metric == "flow_jitter_p99":
            return self._argmax(
                [(f.jitter.percentile(99), f"{f.src}->{f.dst}")
                 for f in tel.flows.values() if f.jitter.count])
        if metric == "link_utilization":
            return self._argmax(
                [(ls.utilization(now), name)
                 for name, ls in tel.links.items()])
        if metric == "queue_depth":
            return self._argmax(
                [(float(ls.queue_watermark), name)
                 for name, ls in tel.links.items()])
        if metric == "queue_current":
            return self._argmax(
                [(float(ls.queue_depth), name)
                 for name, ls in tel.links.items()])
        if metric == "backpressure_p99":
            return self._argmax(
                [(ls.wait.percentile(99), name)
                 for name, ls in tel.links.items() if ls.wait.count])
        if metric == "quiesce_max":
            return (tel.quiesce.max if tel.quiesce.count else None), ""
        if metric == "fault_mttr_max":
            return (tel.mttr.max if tel.mttr.count else None), ""
        if metric.startswith("gauge:"):
            key = metric[len("gauge:"):]
            return tel.gauges.get(key), key
        raise ValueError(f"rule {rule.name!r}: unknown metric {metric!r}")

    def _metric_value(self, rule: AlertRule, tel,
                      now: int) -> Optional[float]:
        return self._metric(rule, tel, now)[0]

    # ------------------------------------------------------------------
    def evaluate(self, tel, now: int) -> List[Alert]:
        """Evaluate every rule; returns alerts fired by this call.

        Edge-down ``clear`` events for previously fired episodes are
        recorded on :attr:`clears` (and delivered to subscribers) but
        are *not* part of the return value, which keeps the historical
        "fired alerts only" contract.
        """
        self.evaluations += 1
        fired: List[Alert] = []
        for rule in self.rules:
            value, subject = self._metric(rule, tel, now)
            if value is None:
                continue
            if rule.kind == "burn_rate":
                alert = self._eval_burn_rate(rule, value, now)
            elif rule.kind == "sustained":
                alert = self._eval_sustained(rule, value, now)
            else:
                alert = self._eval_threshold(rule, value, now)
            if alert is None:
                continue
            alert.subject = subject
            if alert.event == "clear":
                self._record_clear(alert, tel)
                continue
            last = self.last_fired.get(rule.name)
            if (self.cooldown and last is not None
                    and alert.cycle - last < self.cooldown):
                # flap dedupe: the episode state machine already
                # re-armed, but an identical alert this soon after the
                # previous fire is feed spam, not new signal
                self.deduped += 1
                self.deduped_counts[rule.name] = (
                    self.deduped_counts.get(rule.name, 0) + 1
                )
                continue
            fired.append(alert)
            self._record(alert, tel)
        return fired

    def _eval_threshold(self, rule: AlertRule, value: float,
                        now: int) -> Optional[Alert]:
        if value <= rule.threshold:
            return self._close_episode(rule, value, now)
        since = self._breach_since.setdefault(rule.name, now)
        if rule.name in self._fired_episode:
            return None
        self._fired_episode.add(rule.name)
        return self._alert(rule, value, now, since)

    def _eval_sustained(self, rule: AlertRule, value: float,
                        now: int) -> Optional[Alert]:
        if value <= rule.threshold:
            return self._close_episode(rule, value, now)
        since = self._breach_since.setdefault(rule.name, now)
        if now - since < rule.for_cycles:
            return None
        if rule.name in self._fired_episode:
            return None
        self._fired_episode.add(rule.name)
        return self._alert(rule, value, now, since)

    def _eval_burn_rate(self, rule: AlertRule, total: float,
                        now: int) -> Optional[Alert]:
        ring = self._rate_state.get(rule.name)
        if ring is None:
            ring = self._rate_state[rule.name] = deque()
        ring.append((now, total))
        horizon = now - rule.window
        while len(ring) > 1 and ring[1][0] <= horizon:
            ring.popleft()
        base_cycle, base_value = ring[0]
        delta = total - base_value
        if delta <= rule.threshold:
            return self._close_episode(rule, delta, now)
        since = self._breach_since.setdefault(rule.name, base_cycle)
        if rule.name in self._fired_episode:
            return None
        self._fired_episode.add(rule.name)
        return self._alert(rule, delta, now, since)

    def _close_episode(self, rule: AlertRule, value: float,
                       now: int) -> Optional[Alert]:
        """Edge-down: end the breach episode; a clear Alert iff it had
        fired."""
        since = self._breach_since.pop(rule.name, -1)
        if rule.name not in self._fired_episode:
            return None
        self._fired_episode.discard(rule.name)
        burned = now - since if since >= 0 else 0
        if burned > 0:
            self._burn[rule.name] = (
                self._burn.get(rule.name, 0) + burned
            )
        msg = (f"{rule.metric} recovered to {value:g} <= "
               f"{rule.threshold:g} after {burned} cycles")
        return Alert(rule=rule.name, metric=rule.metric, cycle=now,
                     value=float(value), threshold=rule.threshold,
                     severity=rule.severity, kind=rule.kind,
                     since=since, message=msg, event="clear")

    # ------------------------------------------------------------------
    def _alert(self, rule: AlertRule, value: float, now: int,
               since: int) -> Alert:
        what = (f"{rule.metric} grew {value:g} in {rule.window} cycles"
                if rule.kind == "burn_rate"
                else f"{rule.metric} = {value:g}")
        msg = (f"{what} > {rule.threshold:g}"
               + (f" since cycle {since}" if since != now else ""))
        return Alert(rule=rule.name, metric=rule.metric, cycle=now,
                     value=float(value), threshold=rule.threshold,
                     severity=rule.severity, kind=rule.kind,
                     since=since, message=msg)

    def _record(self, alert: Alert, tel) -> None:
        if len(self.alerts) >= self.max_alerts:
            self.dropped += 1
        else:
            self.alerts.append(alert)
        self.fired_counts[alert.rule] = (
            self.fired_counts.get(alert.rule, 0) + 1
        )
        self.last_fired[alert.rule] = alert.cycle
        sim = getattr(tel, "sim", None)
        if sim is not None and sim.tracer is not None:
            sim.span_event(
                "alerts", alert.rule,
                begin=alert.since if alert.since >= 0 else alert.cycle,
                end=alert.cycle, value=alert.value,
                threshold=alert.threshold, severity=alert.severity,
                metric=alert.metric, subject=alert.subject,
            )
        for listener in self._listeners:
            listener("fire", alert)

    def _record_clear(self, alert: Alert, tel) -> None:
        if len(self.clears) >= self.max_alerts:
            self.dropped += 1
        else:
            self.clears.append(alert)
        self.cleared_counts[alert.rule] = (
            self.cleared_counts.get(alert.rule, 0) + 1
        )
        self.last_cleared[alert.rule] = alert.cycle
        sim = getattr(tel, "sim", None)
        if sim is not None and sim.tracer is not None:
            sim.span_event(
                "alerts", f"{alert.rule}.clear",
                begin=alert.cycle, end=alert.cycle, value=alert.value,
                threshold=alert.threshold, severity=alert.severity,
                metric=alert.metric, subject=alert.subject,
            )
        for listener in self._listeners:
            listener("clear", alert)

    # ------------------------------------------------------------------
    def rule_named(self, name: str) -> AlertRule:
        """The rule registered under ``name`` (KeyError if absent)."""
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise KeyError(f"no rule named {name!r}")

    def current_value(self, name: str, tel,
                      now: int) -> Optional[float]:
        """Re-read a rule's metric right now (post-action checks)."""
        return self._metric(self.rule_named(name), tel, now)[0]

    def inject(self, name: str, *, cycle: int, value: float = 0.0,
               threshold: float = 0.0, severity: str = "critical",
               message: str = "", subject: str = "",
               tel=None) -> Alert:
        """Record an externally produced alert (one not driven by a
        registered rule) — e.g. the control plane's
        ``controller-saturated`` signal.  Delivered to subscribers and
        kept on :attr:`alerts` like any rule-driven fire."""
        alert = Alert(rule=name, metric="external", cycle=cycle,
                      value=float(value), threshold=threshold,
                      severity=severity, kind="threshold", since=cycle,
                      message=message, subject=subject)
        self._record(alert, tel)
        return alert

    # ------------------------------------------------------------------
    def active(self, now: int) -> List[str]:
        """Rules currently in a fired, un-cleared breach episode."""
        return sorted(self._fired_episode)

    def burn_cycles(self, now: int) -> Dict[str, int]:
        """Per-rule SLO burn: breach cycles of fired episodes.

        Closed episodes contribute their full breach span (edge-up to
        edge-down); an episode still burning contributes up to ``now``.
        """
        out = dict(self._burn)
        for name in sorted(self._fired_episode):
            since = self._breach_since.get(name)
            if since is not None and now > since:
                out[name] = out.get(name, 0) + (now - since)
        return out

    def total_burn(self, now: int) -> int:
        """Total SLO burn across rules (cycles)."""
        return sum(self.burn_cycles(now).values())

    def episodes(self, now: int) -> List[Dict[str, Any]]:
        """Fired breach episodes, closed and still open.

        The adaptive-vs-static harness reads recovery time (MTTR) off
        this: a closed episode's duration is edge-up to edge-down, an
        open one is censored at ``now``.
        """
        out: List[Dict[str, Any]] = [
            {
                "rule": a.rule,
                "since": a.since,
                "cleared": a.cycle,
                "duration": a.cycle - a.since if a.since >= 0 else 0,
                "open": False,
            }
            for a in self.clears
        ]
        for name in sorted(self._fired_episode):
            since = self._breach_since.get(name)
            if since is None:
                continue
            out.append({"rule": name, "since": since, "cleared": None,
                        "duration": max(0, now - since), "open": True})
        out.sort(key=lambda e: (e["since"], e["rule"]))
        return out

    def snapshot(self, now: int) -> Dict[str, Any]:
        burn = self.burn_cycles(now)
        return {
            "rules": [
                {"name": r.name, "metric": r.metric, "kind": r.kind,
                 "threshold": r.threshold, "severity": r.severity,
                 "fired": self.fired_counts.get(r.name, 0),
                 "last_fired": self.last_fired.get(r.name, -1),
                 "cleared": self.cleared_counts.get(r.name, 0),
                 "last_cleared": self.last_cleared.get(r.name, -1),
                 "deduped": self.deduped_counts.get(r.name, 0),
                 "burn_cycles": burn.get(r.name, 0),
                 "active": r.name in self._fired_episode}
                for r in self.rules
            ],
            "alerts": [a.to_dict() for a in self.alerts],
            "clears": [a.to_dict() for a in self.clears],
            "dropped": self.dropped,
            "deduped": self.deduped,
            "evaluations": self.evaluations,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"AlertEngine(rules={len(self.rules)}, "
                f"fired={len(self.alerts)})")
