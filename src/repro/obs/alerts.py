"""Declarative SLO rules over fabric telemetry.

An :class:`AlertRule` names a metric selector over a
:class:`~repro.obs.flows.FlowTelemetry` snapshot and one of three
evaluation kinds:

``threshold``
    Fire when the metric first exceeds ``threshold`` (edge-triggered:
    one alert per excursion above the threshold).
``sustained``
    Fire when the metric stays above ``threshold`` for at least
    ``for_cycles`` consecutive evaluation cycles (one alert per
    sustained episode).
``burn_rate``
    For ``counter:<name>`` metrics: fire when the counter grew by more
    than ``threshold`` within the trailing ``window`` cycles (one
    alert per storm).

Metric selectors:

=====================  ==================================================
``flow_p99_latency``   max over flows of latency p99 (cycles)
``flow_p50_latency``   max over flows of latency p50 (cycles)
``flow_jitter_p99``    max over flows of jitter p99 (cycles)
``link_utilization``   max over links of recent-window utilization [0,1]
``queue_depth``        max over links of the queue-depth watermark
``backpressure_p99``   max over links of sender-wait p99 (cycles)
``quiesce_max``        longest reconfiguration quiesce seen (cycles)
``fault_mttr_max``     longest fault recovery (injection->recovered)
``gauge:<name>``       a telemetry gauge's latest value
``counter:<name>``     a telemetry counter's running total
=====================  ==================================================

Rules are evaluated lazily from the telemetry record paths (see
:meth:`FlowTelemetry._maybe_eval`), so a quiescent fabric costs
nothing and the kernel's fast-forward is preserved.  Fired alerts are
kept on the engine, emitted as span events (source ``"alerts"``) into
an attached tracer — so they land on the Perfetto timeline — and
exported as ``repro_alert_*`` series by :mod:`repro.obs.prom`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

KINDS = ("threshold", "sustained", "burn_rate")

SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class AlertRule:
    """One declarative SLO rule (see module docstring for semantics)."""

    name: str
    metric: str
    threshold: float
    kind: str = "threshold"
    #: sustained: how long the breach must hold before firing
    for_cycles: int = 0
    #: burn_rate: trailing window the counter delta is measured over
    window: int = 1024
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"rule {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {KINDS})"
            )
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"rule {self.name!r}: unknown severity {self.severity!r}"
            )
        if self.kind == "sustained" and self.for_cycles <= 0:
            raise ValueError(
                f"rule {self.name!r}: sustained rules need for_cycles > 0"
            )
        if self.kind == "burn_rate":
            if not self.metric.startswith("counter:"):
                raise ValueError(
                    f"rule {self.name!r}: burn_rate rules need a "
                    f"'counter:<name>' metric, got {self.metric!r}"
                )
            if self.window <= 0:
                raise ValueError(
                    f"rule {self.name!r}: burn_rate rules need window > 0"
                )


@dataclass
class Alert:
    """One fired rule instance."""

    rule: str
    metric: str
    cycle: int
    value: float
    threshold: float
    severity: str
    kind: str
    #: cycle the breach began (== cycle for plain threshold rules)
    since: int = -1
    message: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "metric": self.metric,
            "cycle": self.cycle,
            "since": self.since,
            "value": self.value,
            "threshold": self.threshold,
            "severity": self.severity,
            "kind": self.kind,
            "message": self.message,
        }


def default_rules(
    flow_p99_cycles: float = 2_000,
    flow_p99_for: int = 2_048,
    link_utilization: float = 0.95,
    link_utilization_for: int = 2_048,
    slot_overruns: float = 8,
    detours: float = 16,
    storm_window: int = 1_024,
    quiesce_budget_cycles: float = 10_000,
    fault_storm: float = 4,
    mttr_budget_cycles: float = 20_000,
    undelivered: float = 0,
) -> List[AlertRule]:
    """The canonical rule set the watch dashboard ships with.

    Covers the five phenomena the ISSUE calls out: flow-latency SLO
    breaches, link saturation, TDMA slot overruns (BUS-COM), DyNoC
    detour storms, and reconfiguration quiesce overruns — plus the
    resilience SLOs the chaos harness watches: fault storms, recovery
    time (MTTR) over budget, and traffic left undelivered after every
    fault in a schedule recovered.
    """
    return [
        AlertRule("flow-latency-p99", "flow_p99_latency",
                  flow_p99_cycles, kind="sustained",
                  for_cycles=flow_p99_for, severity="critical",
                  description="p99 flow latency above SLO, sustained"),
        AlertRule("link-saturation", "link_utilization",
                  link_utilization, kind="sustained",
                  for_cycles=link_utilization_for,
                  description="link utilization above 95%, sustained"),
        AlertRule("tdma-slot-overrun", "counter:buscom.slot_overrun",
                  slot_overruns, kind="burn_rate", window=storm_window,
                  description="BUS-COM dynamic slots starved while "
                              "traffic queued"),
        AlertRule("detour-storm", "counter:dynoc.detour",
                  detours, kind="burn_rate", window=storm_window,
                  description="DyNoC routers entering detour mode "
                              "faster than the obstacle churn explains"),
        AlertRule("quiesce-budget", "quiesce_max",
                  quiesce_budget_cycles, severity="critical",
                  description="a reconfiguration quiesce exceeded its "
                              "cycle budget"),
        AlertRule("fault-storm", "counter:fault.injected",
                  fault_storm, kind="burn_rate", window=storm_window,
                  description="faults injected faster than the chaos "
                              "schedule's steady state"),
        AlertRule("mttr-budget", "fault_mttr_max",
                  mttr_budget_cycles, severity="critical",
                  description="a fault recovery (detect + reroute/"
                              "reconfigure) exceeded its cycle budget"),
        AlertRule("undelivered-traffic", "gauge:fault.undelivered",
                  undelivered, kind="sustained", for_cycles=2_048,
                  severity="critical",
                  description="messages still undelivered well after "
                              "recovery — resilience SLO broken"),
    ]


class AlertEngine:
    """Evaluates :class:`AlertRule`\\ s against telemetry snapshots."""

    def __init__(self, rules: Optional[Iterable[AlertRule]] = None,
                 max_alerts: int = 1_000):
        self.rules: List[AlertRule] = list(
            default_rules() if rules is None else rules
        )
        seen = set()
        for rule in self.rules:
            if rule.name in seen:
                raise ValueError(f"duplicate rule name {rule.name!r}")
            seen.add(rule.name)
        self.max_alerts = max_alerts
        self.alerts: List[Alert] = []
        self.dropped = 0
        self.evaluations = 0
        #: rule name -> cycle the current breach episode began
        self._breach_since: Dict[str, int] = {}
        #: rule names that already fired during the current episode
        self._fired_episode: set = set()
        #: rule name -> (cycle, counter value) ring for burn rates
        self._rate_state: Dict[str, Deque[Tuple[int, float]]] = {}
        self.fired_counts: Dict[str, int] = {}
        self.last_fired: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _metric_value(self, rule: AlertRule, tel,
                      now: int) -> Optional[float]:
        metric = rule.metric
        if metric.startswith("counter:"):
            return float(tel.counters.get(metric[len("counter:"):], 0))
        if metric == "flow_p99_latency":
            vals = [f.latency.percentile(99) for f in tel.flows.values()
                    if f.latency.count]
            return max(vals) if vals else None
        if metric == "flow_p50_latency":
            vals = [f.latency.percentile(50) for f in tel.flows.values()
                    if f.latency.count]
            return max(vals) if vals else None
        if metric == "flow_jitter_p99":
            vals = [f.jitter.percentile(99) for f in tel.flows.values()
                    if f.jitter.count]
            return max(vals) if vals else None
        if metric == "link_utilization":
            vals = [ls.utilization(now) for ls in tel.links.values()]
            return max(vals) if vals else None
        if metric == "queue_depth":
            vals = [ls.queue_watermark for ls in tel.links.values()]
            return float(max(vals)) if vals else None
        if metric == "backpressure_p99":
            vals = [ls.wait.percentile(99) for ls in tel.links.values()
                    if ls.wait.count]
            return max(vals) if vals else None
        if metric == "quiesce_max":
            return tel.quiesce.max if tel.quiesce.count else None
        if metric == "fault_mttr_max":
            return tel.mttr.max if tel.mttr.count else None
        if metric.startswith("gauge:"):
            return tel.gauges.get(metric[len("gauge:"):])
        raise ValueError(f"rule {rule.name!r}: unknown metric {metric!r}")

    # ------------------------------------------------------------------
    def evaluate(self, tel, now: int) -> List[Alert]:
        """Evaluate every rule; returns alerts fired by this call."""
        self.evaluations += 1
        fired: List[Alert] = []
        for rule in self.rules:
            value = self._metric_value(rule, tel, now)
            if value is None:
                continue
            if rule.kind == "burn_rate":
                alert = self._eval_burn_rate(rule, value, now)
            elif rule.kind == "sustained":
                alert = self._eval_sustained(rule, value, now)
            else:
                alert = self._eval_threshold(rule, value, now)
            if alert is not None:
                fired.append(alert)
                self._record(alert, tel)
        return fired

    def _eval_threshold(self, rule: AlertRule, value: float,
                        now: int) -> Optional[Alert]:
        if value <= rule.threshold:
            self._breach_since.pop(rule.name, None)
            self._fired_episode.discard(rule.name)
            return None
        since = self._breach_since.setdefault(rule.name, now)
        if rule.name in self._fired_episode:
            return None
        self._fired_episode.add(rule.name)
        return self._alert(rule, value, now, since)

    def _eval_sustained(self, rule: AlertRule, value: float,
                        now: int) -> Optional[Alert]:
        if value <= rule.threshold:
            self._breach_since.pop(rule.name, None)
            self._fired_episode.discard(rule.name)
            return None
        since = self._breach_since.setdefault(rule.name, now)
        if now - since < rule.for_cycles:
            return None
        if rule.name in self._fired_episode:
            return None
        self._fired_episode.add(rule.name)
        return self._alert(rule, value, now, since)

    def _eval_burn_rate(self, rule: AlertRule, total: float,
                        now: int) -> Optional[Alert]:
        ring = self._rate_state.get(rule.name)
        if ring is None:
            ring = self._rate_state[rule.name] = deque()
        ring.append((now, total))
        horizon = now - rule.window
        while len(ring) > 1 and ring[1][0] <= horizon:
            ring.popleft()
        base_cycle, base_value = ring[0]
        delta = total - base_value
        if delta <= rule.threshold:
            self._breach_since.pop(rule.name, None)
            self._fired_episode.discard(rule.name)
            return None
        since = self._breach_since.setdefault(rule.name, base_cycle)
        if rule.name in self._fired_episode:
            return None
        self._fired_episode.add(rule.name)
        return self._alert(rule, delta, now, since)

    # ------------------------------------------------------------------
    def _alert(self, rule: AlertRule, value: float, now: int,
               since: int) -> Alert:
        what = (f"{rule.metric} grew {value:g} in {rule.window} cycles"
                if rule.kind == "burn_rate"
                else f"{rule.metric} = {value:g}")
        msg = (f"{what} > {rule.threshold:g}"
               + (f" since cycle {since}" if since != now else ""))
        return Alert(rule=rule.name, metric=rule.metric, cycle=now,
                     value=float(value), threshold=rule.threshold,
                     severity=rule.severity, kind=rule.kind,
                     since=since, message=msg)

    def _record(self, alert: Alert, tel) -> None:
        if len(self.alerts) >= self.max_alerts:
            self.dropped += 1
        else:
            self.alerts.append(alert)
        self.fired_counts[alert.rule] = (
            self.fired_counts.get(alert.rule, 0) + 1
        )
        self.last_fired[alert.rule] = alert.cycle
        sim = getattr(tel, "sim", None)
        if sim is not None and sim.tracer is not None:
            sim.span_event(
                "alerts", alert.rule,
                begin=alert.since if alert.since >= 0 else alert.cycle,
                end=alert.cycle, value=alert.value,
                threshold=alert.threshold, severity=alert.severity,
                metric=alert.metric,
            )

    # ------------------------------------------------------------------
    def active(self, now: int) -> List[str]:
        """Rules currently in a fired, un-cleared breach episode."""
        return sorted(self._fired_episode)

    def snapshot(self, now: int) -> Dict[str, Any]:
        return {
            "rules": [
                {"name": r.name, "metric": r.metric, "kind": r.kind,
                 "threshold": r.threshold, "severity": r.severity,
                 "fired": self.fired_counts.get(r.name, 0),
                 "last_fired": self.last_fired.get(r.name, -1),
                 "active": r.name in self._fired_episode}
                for r in self.rules
            ],
            "alerts": [a.to_dict() for a in self.alerts],
            "dropped": self.dropped,
            "evaluations": self.evaluations,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"AlertEngine(rules={len(self.rules)}, "
                f"fired={len(self.alerts)})")
