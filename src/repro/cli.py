"""Command-line interface: regenerate any table, figure or experiment.

Examples::

    repro tables                 # Tables 1-4
    repro figures                # Figures 1-4 (ASCII)
    repro experiment e1          # one experiment (e1..e7b)
    repro scenario -a conochi -p ring -b 64
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.core.report import render_all

    print(render_all())
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis.render import (
        render_buscom_figure,
        render_conochi_figure,
        render_dynoc_figure,
        render_rmboc_figure,
    )
    from repro.arch import build_architecture

    print("Figure 1: RMBoC architecture (m=4, k=4)")
    print(render_rmboc_figure(build_architecture("rmboc")))
    print("\nFigure 2: BUS-COM architecture (4 modules, 4 buses)")
    print(render_buscom_figure(build_architecture("buscom")))
    print("\nFigure 3: DyNoC architecture (5x5 array)")
    from repro.fabric.geometry import Rect

    dynoc = build_architecture("dynoc", num_modules=0, mesh=(5, 5))
    dynoc.attach("a", rect=Rect(1, 1, 2, 2))
    dynoc.attach("b", rect=Rect(1, 3, 1, 1))
    dynoc.attach("c", rect=Rect(4, 4, 1, 1))
    print(render_dynoc_figure(dynoc))
    print("\nFigure 4: CoNoChi architecture (tile grid)")
    print(render_conochi_figure(build_architecture("conochi")))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import EXPERIMENTS
    from repro.analysis.parallel import registry, run_named

    def render(result):
        if getattr(args, "json", False):
            from repro.analysis.export import dumps

            return dumps(result)
        return str(result)

    # "all" means the paper experiments; single runs also accept the
    # a1..a7 ablation harnesses from the shared registry
    known = registry()
    names = list(EXPERIMENTS) if args.which == "all" else [args.which]
    if args.which != "all" and args.which not in known:
        print(f"unknown experiment {args.which!r}; "
              f"choose from {', '.join(known)} or 'all'",
              file=sys.stderr)
        return 2
    # -j/--jobs > 1 fans the independent harnesses across processes;
    # the default stays serial in-process (and single runs always are)
    max_workers = args.jobs if args.parallel or args.jobs else 0
    results = run_named(names, max_workers=max_workers,
                        use_cache=not args.no_cache,
                        progress=len(names) > 1)
    for name in names:
        if len(names) > 1:
            print(f"== {name} ==")
        print(render(results[name]))
    return 0


def _kernel_summary(sims) -> str:
    """Aggregate kernel self-metrics across simulators for the terminal."""
    totals: dict = {}
    for sim in sims:
        for key, value in sim.kmetrics.as_dict().items():
            if key == "commit_max":
                totals[key] = max(totals.get(key, 0), value)
            else:
                totals[key] = totals.get(key, 0) + value
    lines = [f"{'kernel metric':<28} {'value':>12}"]
    for key, value in totals.items():
        lines.append(f"{key:<28} {value:>12}")
    return "\n".join(lines)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        observe_named,
        summarize_trace,
        to_prometheus_text,
        write_chrome_trace,
    )

    try:
        _, session = observe_named(args.which, trace=True,
                                   profile=args.profile,
                                   max_events=args.max_events,
                                   keep=args.keep,
                                   journeys=args.journeys,
                                   engine=args.engine)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    sims = session.sims
    if not sims:
        print(f"experiment {args.which!r} built no simulators",
              file=sys.stderr)
        return 1
    out = args.out or f"trace-{args.which}.json"
    write_chrome_trace(out, sims)
    print(f"experiment   : {args.which}")
    print(f"simulators   : {len(sims)}, {session.total_events()} events, "
          f"{session.total_spans()} spans")
    print(f"trace        : {out} (open in https://ui.perfetto.dev)")
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as fh:
            fh.write(to_prometheus_text(sims))
        print(f"metrics      : {args.prom} (Prometheus exposition)")
    print()
    print(summarize_trace(sims, top=args.top))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        Profiler,
        observe_named,
        to_json_snapshot,
        to_prometheus_text,
    )

    try:
        _, session = observe_named(args.which, trace=False, profile=True,
                                   engine=args.engine)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    sims = session.sims
    if not sims:
        print(f"experiment {args.which!r} built no simulators",
              file=sys.stderr)
        return 1
    merged = Profiler()
    for sim in sims:
        if sim.profiler is not None:
            merged.merge(sim.profiler)
    print(f"experiment   : {args.which} ({len(sims)} simulator(s))")
    print()
    print(merged.render_top(args.top))
    print()
    print(_kernel_summary(sims))
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as fh:
            fh.write(to_prometheus_text(sims))
        print(f"\nmetrics      : {args.prom} (Prometheus exposition)")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(to_json_snapshot(sims), fh, indent=2, default=repr)
        print(f"snapshot     : {args.json} (JSON)")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.obs.watch import watch_experiment

    try:
        _, doc = watch_experiment(
            args.which,
            interval=args.interval,
            once=args.once,
            json_out=args.json,
            max_rows=args.rows,
            clear=not args.no_clear,
            journeys=not args.no_journeys,
            engine=args.engine,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if not doc["simulators"]:
        print(f"experiment {args.which!r} built no simulators",
              file=sys.stderr)
        return 1
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        explain_experiment,
        render_explain,
        validate_journey,
    )

    try:
        doc = explain_experiment(args.which, engine=args.engine,
                                 rate=args.rate, seed=args.seed,
                                 max_records=args.max_records)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    validate_journey(doc)
    text = (json.dumps(doc, indent=2, sort_keys=True) if args.json
            else render_explain(doc, top=args.top))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"explain      : {args.out} "
              f"({doc['total_flows']} flows, "
              f"{doc['coverage']:.1%} attributed)")
    else:
        print(text)
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.arch import build_architecture
    from repro.core.scenario import minimal_scenario

    arch = build_architecture(args.arch, num_modules=args.modules,
                              width=args.width)
    result = minimal_scenario(arch, payload_bytes=args.payload,
                              pattern=args.pattern, repeats=args.repeats)
    print(f"architecture : {result.arch_key}")
    print(f"pattern      : {result.pattern} x{args.repeats}, "
          f"{args.payload} B payloads")
    print(f"messages     : {result.messages} in {result.total_cycles} cycles")
    print(f"latency      : mean {result.mean_latency:.1f}, "
          f"min {result.min_latency}, max {result.max_latency} cycles")
    print(f"parallelism  : observed d_max {result.observed_dmax} "
          f"(theoretical {arch.theoretical_dmax()})")
    print(f"area         : {arch.area_slices()} slices @ "
          f"{arch.fmax_hz() / 1e6:.0f} MHz")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.seeds:
        # fleet mode: N-seed batched Monte-Carlo run per architecture
        from repro.analysis.batch import render_fleet, run_seed_fleet

        seeds = range(args.seed_start, args.seed_start + args.seeds)
        for arch in args.archs:
            fleet = run_seed_fleet(arch, seeds, engine=args.engine)
            print(render_fleet(fleet))
            if fleet.run_id:
                print(f"  ledger: fleet run {fleet.run_id}"
                      + (f" ({len(fleet.seed_run_ids)} per-seed "
                         f"record(s))" if fleet.seed_run_ids else ""))
        return 0
    from repro.analysis.sweeps import SweepGrid, render_sweep, run_sweep
    from repro.obs.ledger import ledgered_call

    grid = SweepGrid(
        arch=args.archs,
        width=args.widths,
        payload_bytes=args.payloads,
    )
    points, run_id = ledgered_call(
        lambda: run_sweep(grid, engine=args.engine),
        kind="sweep", name="grid",
        config={"arch": args.archs, "width": args.widths,
                "payload_bytes": args.payloads},
        engine=args.engine)
    print(render_sweep(grid, points))
    if run_id:
        print(f"ledger: sweep run {run_id}")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.core.advisor import Requirements, recommend

    req = Requirements(
        num_modules=args.modules,
        link_width=args.width,
        needs_runtime_module_exchange=not args.static_ok,
        variable_module_shape=args.variable_shape,
        min_parallel_transfers=args.parallel,
        max_transfer_bytes=args.transfer,
        area_budget_slices=args.area_budget,
        latency_budget_cycles=args.latency_budget,
        reconfigures_often=args.reconfigures_often,
        needs_runtime_growth=args.runtime_growth,
    )
    print(recommend(req).report())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report_run import generate_report

    print(generate_report(full=args.full))
    return 0


def _default_lint_paths() -> "list[str]":
    """The installed package plus, when run from a checkout, the
    ``examples/`` and ``tests/`` trees next to it (their findings are
    filtered by the per-directory rule policies)."""
    import os

    import repro

    paths = [os.path.dirname(os.path.abspath(repro.__file__))]
    for extra in ("examples", "tests"):
        if os.path.isdir(extra):
            paths.append(extra)
    return paths


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    import os
    import sys
    import traceback

    from repro.lint import (ALL_RULES, Severity, run_lint, to_sarif,
                            write_baseline)

    paths = args.paths or _default_lint_paths()
    baseline = None if args.no_baseline else args.baseline
    if baseline is None and not args.no_baseline \
            and not args.write_baseline \
            and os.path.isfile(".simlint-baseline.json"):
        baseline = ".simlint-baseline.json"

    # exit code contract: 0 clean, 1 findings, 2 internal analyzer
    # error — a crashed analyzer must never look clean to CI.
    try:
        result = run_lint(paths, with_graph=not args.no_graph,
                          baseline_path=None if args.write_baseline
                          else baseline)
        if args.graph:
            graph = result.graph
            if graph is None:
                print("lint: --graph requires the graph pass "
                      "(remove --no-graph)", file=sys.stderr)
                return 2
            if args.format == "json":
                print(json.dumps(graph.to_json(), indent=2))
            else:
                print(graph.to_dot())
            return 0
        threshold = Severity.parse(args.min_severity)
        findings = [f for f in result.findings
                    if f.severity.rank >= threshold.rank]
        if args.write_baseline:
            entries = write_baseline(args.write_baseline, findings)
            print(f"wrote {len(entries)} baseline entr"
                  f"{'y' if len(entries) == 1 else 'ies'} covering "
                  f"{len(findings)} finding(s) to {args.write_baseline}")
            return 0
    except Exception:
        traceback.print_exc()
        print("lint: internal analyzer error (exit 2)", file=sys.stderr)
        return 2

    for entry in result.stale_baseline:
        print(f"lint: stale baseline entry {entry.rule} {entry.path} "
              f"{entry.symbol} matched nothing — prune it",
              file=sys.stderr)

    if args.format == "json":
        print(json.dumps({
            "paths": [os.path.abspath(p) for p in paths],
            "rules": {rule: {"severity": str(sev), "summary": text}
                      for rule, (sev, text) in sorted(ALL_RULES.items())},
            "findings": [f.to_dict() for f in findings],
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "counts": {
                str(sev): sum(1 for f in findings if f.severity is sev)
                for sev in Severity
            },
        }, indent=2))
    elif args.format == "sarif":
        print(json.dumps(to_sarif(findings, ALL_RULES), indent=2))
    else:
        for finding in findings:
            print(finding.render())
        errors = sum(1 for f in findings if f.severity is Severity.ERROR)
        warnings = sum(1 for f in findings if f.severity is Severity.WARNING)
        extras = ""
        if result.suppressed or result.baselined:
            extras = (f" ({result.suppressed} suppressed, "
                      f"{result.baselined} baselined)")
        print(f"{len(findings)} finding(s): {errors} error(s), "
              f"{warnings} warning(s) in {len(paths)} path(s)" + extras)
    if args.strict:
        return 1 if findings else 0
    return 1 if any(f.severity is Severity.ERROR for f in findings) else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.chaos import (render_chaos, run_chaos_sweep,
                                      validate_chaos)

    try:
        doc = run_chaos_sweep(args.which, seed=args.seed,
                              rounds=1 if args.once else args.rounds,
                              engine=args.engine,
                              adaptive=args.adaptive)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    validate_chaos(doc)
    if args.json:
        print(json.dumps(doc, indent=2, default=repr))
    else:
        print(render_chaos(doc))
        if doc.get("run_id"):
            print(f"ledger       : chaos run {doc['run_id']}")
    return 0 if doc["survived"] else 1


def _cmd_adapt(args: argparse.Namespace) -> int:
    import json

    from repro.control import render_adapt, run_adapt, validate_adapt

    try:
        doc = run_adapt(args.which, seed=args.seed, engine=args.engine)
    except (KeyError, RuntimeError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    validate_adapt(doc)
    if args.json:
        print(json.dumps(doc, indent=2, default=repr))
    else:
        print(render_adapt(doc))
        if doc.get("run_id"):
            print(f"ledger        : adapt run {doc['run_id']}")
    return 0 if not doc["regressions"] else 1


def _cmd_runs(args: argparse.Namespace) -> int:
    import json

    from repro.obs.ledger import (LedgerError, RunLedger, render_entries,
                                  render_run, validate_run)

    ledger = RunLedger(args.ledger)
    if args.action == "list":
        entries = ledger.entries()
        if args.json:
            print(json.dumps([e.__dict__ for e in entries], indent=2))
        else:
            print(render_entries(entries))
        return 0
    if args.action == "show":
        if not args.run:
            print("runs show: a run id (prefix) is required",
                  file=sys.stderr)
            return 2
        try:
            doc = ledger.load(ledger.resolve(args.run))
            validate_run(doc)
        except (LedgerError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            print(render_run(doc))
        return 0
    # gc
    max_bytes = (int(args.max_size * 1024 * 1024)
                 if args.max_size is not None else None)
    if args.max_age_days is None and max_bytes is None:
        print("runs gc: give --max-age-days and/or --max-size",
              file=sys.stderr)
        return 2
    report = ledger.gc(max_age_days=args.max_age_days,
                       max_bytes=max_bytes, dry_run=args.dry_run)
    print(f"ledger gc ({ledger.runs_dir}): {report.render()}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.analysis.parallel import default_cache_dir
    from repro.obs.ledger import default_ledger_dir, prune_tree

    max_bytes = (int(args.max_size * 1024 * 1024)
                 if args.max_size is not None else None)
    if args.max_age_days is None and max_bytes is None:
        print("cache prune: give --max-age-days and/or --max-size",
              file=sys.stderr)
        return 2
    # one LRU pass over result-cache pickles AND ledger records —
    # they share the .repro-cache root unless REPRO_LEDGER_DIR says
    # otherwise, in which case both roots join the same size budget
    roots = [default_cache_dir()]
    if default_ledger_dir() not in roots:
        roots.append(default_ledger_dir())
    report = prune_tree(roots, suffixes=(".pkl", ".json"),
                        max_age_days=args.max_age_days,
                        max_bytes=max_bytes, dry_run=args.dry_run)
    print(f"cache prune ({', '.join(roots)}): {report.render()}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    import json

    from repro.obs.diff import diff_runs, load_record, render_diff
    from repro.obs.ledger import LedgerError, RunLedger

    ledger = RunLedger(args.ledger)
    try:
        a = load_record(args.run_a, ledger)
        b = load_record(args.run_b, ledger)
        doc = diff_runs(a, b)
    except (LedgerError, OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(render_diff(doc, top=args.top))
    return 1 if args.check and doc["regressions"] else 0


def _cmd_regress(args: argparse.Namespace) -> int:
    import json

    from repro.obs.diff import regress

    try:
        report = regress(args.baseline, names=args.archs or None,
                         write_baseline=args.write_baseline)
    except Exception as exc:  # the exit-2 contract: never crash CI
        print(f"regress: internal error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({
            "baseline": report.baseline_dir,
            "checked": report.checked,
            "regressions": report.regressions,
            "errors": report.errors,
            "written": report.written,
            "diffs": report.diffs,
            "exit_code": report.exit_code,
        }, indent=2))
    else:
        print(report.render())
    return report.exit_code


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core.validation import validate_reproduction

    report = validate_reproduction(fast=args.fast)
    print(report.render())
    return 0 if report.passed else 1


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Communication Architectures for "
                    "Dynamically Reconfigurable FPGA Designs' (IPPS 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("tables", help="regenerate Tables 1-4")
    p.set_defaults(func=_cmd_tables)

    p = sub.add_parser("figures", help="render Figures 1-4 (ASCII)")
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("experiment", help="run an experiment harness")
    p.add_argument("which", help="e1..e12 or 'all'")
    p.add_argument("--json", action="store_true",
                   help="emit the result as JSON")
    p.add_argument("--parallel", action="store_true",
                   help="fan experiments across worker processes")
    p.add_argument("-j", "--jobs", type=int, default=None, metavar="N",
                   help="worker processes for --parallel (default: CPUs)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and don't write the result cache")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("trace",
                       help="run an experiment with tracing and export a "
                            "Perfetto/Chrome trace")
    p.add_argument("which", help="experiment/ablation name (e1..e12, a1..a7)")
    p.add_argument("-o", "--out", default=None, metavar="FILE",
                   help="trace output path (default: trace-<which>.json)")
    p.add_argument("--prom", default=None, metavar="FILE",
                   help="also write a Prometheus-text metrics snapshot")
    p.add_argument("--profile", action="store_true",
                   help="enable the wall-clock profiler too")
    p.add_argument("--max-events", type=int, default=500_000,
                   help="tracer capacity per simulator")
    p.add_argument("--keep", choices=["head", "tail"], default="tail",
                   help="which side to keep at capacity")
    p.add_argument("--top", type=int, default=10,
                   help="rows in the terminal summary")
    p.add_argument("--journeys", action="store_true",
                   help="also record message journeys (adds journey "
                        "threads + flow arcs to the Perfetto export)")
    p.add_argument("--engine", choices=["object", "vec"], default=None,
                   help="simulation backend (default: REPRO_SIM_ENGINE "
                        "or object; traces are bit-identical)")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("profile",
                       help="run an experiment with the wall-clock "
                            "profiler and report the hottest buckets")
    p.add_argument("which", help="experiment/ablation name (e1..e12, a1..a7)")
    p.add_argument("--prom", default=None, metavar="FILE",
                   help="write a Prometheus-text metrics snapshot")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write a JSON stats/kernel/profile snapshot")
    p.add_argument("--top", type=int, default=10,
                   help="rows in the terminal summary")
    p.add_argument("--engine", choices=["object", "vec"], default=None,
                   help="simulation backend (default: REPRO_SIM_ENGINE "
                        "or object)")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("watch",
                       help="run an experiment with fabric telemetry and "
                            "a live flow/link/alert dashboard")
    p.add_argument("which", help="experiment/ablation name (e1..e12, a1..a7)")
    p.add_argument("--once", action="store_true",
                   help="run to completion and emit one final snapshot "
                        "(CI mode)")
    p.add_argument("--json", action="store_true",
                   help="emit snapshot documents instead of the rendered "
                        "dashboard")
    p.add_argument("--interval", type=float, default=1.0, metavar="SEC",
                   help="refresh period for the live dashboard")
    p.add_argument("--rows", type=int, default=8,
                   help="rows per dashboard table")
    p.add_argument("--no-clear", action="store_true",
                   help="append refreshes instead of clearing the screen")
    p.add_argument("--no-journeys", action="store_true",
                   help="skip journey recording (drops the per-flow "
                        "slowest-segment column)")
    p.add_argument("--engine", choices=["object", "vec"], default=None,
                   help="simulation backend (default: REPRO_SIM_ENGINE "
                        "or object; snapshots are bit-identical)")
    p.set_defaults(func=_cmd_watch)

    p = sub.add_parser("explain",
                       help="run an experiment with message journeys "
                            "and attribute per-flow latency to fabric "
                            "segments")
    p.add_argument("which", help="experiment/ablation name (e1..e12, a1..a7)")
    p.add_argument("--json", action="store_true",
                   help="emit the repro.journey/1 document as JSON")
    p.add_argument("-o", "--out", default=None, metavar="FILE",
                   help="write the report/document to FILE")
    p.add_argument("--top", type=int, default=10,
                   help="flows per simulator in the terminal report")
    p.add_argument("--rate", type=float, default=1.0,
                   help="deterministic journey sampling rate in [0, 1]")
    p.add_argument("--seed", type=int, default=0,
                   help="sampling seed (same seed samples the same "
                        "messages on either engine)")
    p.add_argument("--max-records", type=int, default=100_000,
                   help="journey record cap per simulator (keep-first)")
    p.add_argument("--engine", choices=["object", "vec"], default=None,
                   help="simulation backend (default: REPRO_SIM_ENGINE "
                        "or object; journey records are bit-identical)")
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser("scenario", help="run the minimal scenario")
    p.add_argument("-a", "--arch", default="conochi",
                   choices=["rmboc", "buscom", "dynoc", "conochi"])
    p.add_argument("-p", "--pattern", default="ring",
                   choices=["ring", "all-pairs", "neighbors", "pairs"])
    p.add_argument("-b", "--payload", type=int, default=64)
    p.add_argument("-m", "--modules", type=int, default=4)
    p.add_argument("-w", "--width", type=int, default=32)
    p.add_argument("-r", "--repeats", type=int, default=1)
    p.set_defaults(func=_cmd_scenario)

    p = sub.add_parser("sweep", help="sweep widths/payloads across archs")
    p.add_argument("--archs", nargs="+",
                   default=["rmboc", "buscom", "dynoc", "conochi"])
    p.add_argument("--widths", nargs="+", type=int, default=[8, 16, 32])
    p.add_argument("--payloads", nargs="+", type=int, default=[64])
    p.add_argument("--engine", choices=["object", "vec"], default=None,
                   help="simulation backend (default: REPRO_SIM_ENGINE "
                        "or object; results are bit-identical)")
    p.add_argument("--seeds", type=int, default=0, metavar="N",
                   help="fleet mode: run N seeded Monte-Carlo runs per "
                        "architecture in one batched process instead of "
                        "the width/payload grid")
    p.add_argument("--seed-start", type=int, default=0, metavar="S",
                   help="first seed of the fleet (fleet mode runs "
                        "seeds S..S+N-1; default 0)")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("advise",
                       help="recommend an architecture for requirements")
    p.add_argument("-m", "--modules", type=int, default=4)
    p.add_argument("-w", "--width", type=int, default=32)
    p.add_argument("--variable-shape", action="store_true",
                   dest="variable_shape")
    p.add_argument("--parallel", type=int, default=1)
    p.add_argument("--transfer", type=int, default=256)
    p.add_argument("--area-budget", type=int, default=None,
                   dest="area_budget")
    p.add_argument("--latency-budget", type=int, default=None,
                   dest="latency_budget")
    p.add_argument("--reconfigures-often", action="store_true",
                   dest="reconfigures_often")
    p.add_argument("--runtime-growth", action="store_true",
                   dest="runtime_growth")
    p.add_argument("--static-ok", action="store_true", dest="static_ok",
                   help="module mix never changes: consider the static "
                        "baselines too")
    p.set_defaults(func=_cmd_advise)

    p = sub.add_parser("lint",
                       help="check determinism-contract rules "
                            "(QL001-QL011) over component sources")
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default: the "
                        "installed repro package plus ./examples and "
                        "./tests when present)")
    p.add_argument("-f", "--format", choices=["text", "json", "sarif"],
                   default="text", help="output format")
    p.add_argument("--min-severity", choices=["info", "warning", "error"],
                   default="info", help="hide findings below this level")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero on any finding, not just errors")
    p.add_argument("--graph", action="store_true",
                   help="dump the component-channel access graph "
                        "instead of findings (DOT; JSON with -f json)")
    p.add_argument("--no-graph", action="store_true",
                   help="skip the whole-program graph rules "
                        "(QL007-QL011); static per-class rules only")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="baseline file of accepted findings (default: "
                        "./.simlint-baseline.json when present)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline file (CI uses this to "
                        "assert the seeded fixtures still trip)")
    p.add_argument("--write-baseline", metavar="FILE", default=None,
                   help="write the current findings to FILE as the new "
                        "baseline and exit 0")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("report",
                       help="markdown report of tables/figures/experiments")
    p.add_argument("--full", action="store_true",
                   help="include the slower experiments")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("validate",
                       help="run every headline paper assertion")
    p.add_argument("--fast", action="store_true",
                   help="skip the slower measurements")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("chaos",
                       help="inject canonical faults into every "
                            "architecture an experiment builds")
    p.add_argument("which", help="experiment whose architectures to "
                                 "chaos-test (e1..e12)")
    p.add_argument("--seed", type=int, default=7,
                   help="fault-schedule seed (default: 7)")
    p.add_argument("--rounds", type=int, default=3,
                   help="seeded rounds per architecture (default: 3)")
    p.add_argument("--once", action="store_true",
                   help="single round (CI smoke)")
    p.add_argument("--json", action="store_true",
                   help="emit the repro.chaos/1 document as JSON")
    p.add_argument("--engine", choices=["object", "vec"], default=None,
                   help="simulation backend (default: REPRO_SIM_ENGINE "
                        "or object; the document is engine-independent)")
    p.add_argument("--adaptive", action="store_true",
                   help="attach the SLO control loop to every scenario "
                        "and embed its repro.control/1 action log plus "
                        "an SLO-burn comparison against a static twin")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("adapt",
                       help="adaptive-vs-static evaluation: run every "
                            "architecture an experiment builds through "
                            "a sustained-pressure scenario with and "
                            "without the SLO control loop")
    p.add_argument("which", help="experiment whose architectures to "
                                 "evaluate (e1..e12)")
    p.add_argument("--seed", type=int, default=7,
                   help="traffic-phase seed (default: 7)")
    p.add_argument("--json", action="store_true",
                   help="emit the repro.adapt/1 document as JSON")
    p.add_argument("--engine", choices=["object", "vec"], default=None,
                   help="simulation backend (default: REPRO_SIM_ENGINE "
                        "or object; the document is engine-independent)")
    p.set_defaults(func=_cmd_adapt)

    p = sub.add_parser("runs",
                       help="list/show/gc the persistent run ledger "
                            "(repro.run/1 records)")
    p.add_argument("action", choices=["list", "show", "gc"],
                   help="list all records, show one, or garbage-collect")
    p.add_argument("run", nargs="?", default=None,
                   help="run id (unique prefix ok) for 'show'")
    p.add_argument("--ledger", metavar="DIR", default=None,
                   help="ledger root (default: the result cache dir / "
                        "REPRO_LEDGER_DIR)")
    p.add_argument("--json", action="store_true",
                   help="emit JSON instead of the rendered view")
    p.add_argument("--max-age-days", type=float, default=None,
                   help="gc: evict records older than this")
    p.add_argument("--max-size", type=float, default=None, metavar="MiB",
                   help="gc: evict oldest records until under this size")
    p.add_argument("--dry-run", action="store_true",
                   help="gc: report what would be evicted, delete "
                        "nothing")
    p.set_defaults(func=_cmd_runs)

    p = sub.add_parser("cache",
                       help="manage the on-disk result cache + ledger")
    p.add_argument("action", choices=["prune"],
                   help="prune: age/size-bounded LRU eviction over "
                        "cached results and run records")
    p.add_argument("--max-age-days", type=float, default=None,
                   help="evict entries older than this")
    p.add_argument("--max-size", type=float, default=None, metavar="MiB",
                   help="evict least-recently-used entries until the "
                        "store is under this size")
    p.add_argument("--dry-run", action="store_true",
                   help="report what would be evicted, delete nothing")
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("diff",
                       help="differential analysis of two ledger "
                            "records (noise-aware, with latency "
                            "attribution)")
    p.add_argument("run_a", help="baseline record: run id prefix or "
                                 "path to a repro.run/1 JSON file")
    p.add_argument("run_b", help="candidate record: run id prefix or "
                                 "path")
    p.add_argument("--ledger", metavar="DIR", default=None,
                   help="ledger root to resolve run ids in")
    p.add_argument("--json", action="store_true",
                   help="emit the repro.diff/1 document as JSON")
    p.add_argument("--top", type=int, default=20,
                   help="delta rows in the terminal rendering")
    p.add_argument("--check", action="store_true",
                   help="exit 1 when the diff finds significant "
                        "regressions")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("regress",
                       help="re-run baseline fleet configurations and "
                            "gate on per-metric budgets "
                            "(exit 0 clean / 1 regression / 2 error)")
    p.add_argument("--baseline", metavar="DIR",
                   default="tests/data/regress-baseline",
                   help="baseline ledger directory (default: "
                        "tests/data/regress-baseline)")
    p.add_argument("--archs", nargs="*", default=None,
                   help="only gate these architectures (default: every "
                        "fleet record in the baseline)")
    p.add_argument("--write-baseline", action="store_true",
                   help="replace the baseline records with fresh runs "
                        "(after an intentional change)")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON")
    p.set_defaults(func=_cmd_regress)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro runs list | head`).
        # Point stdout at devnull so the interpreter's shutdown flush
        # doesn't raise again, and exit like a SIGPIPE'd process would.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
