"""Parallel experiment runner: fan independent harnesses across processes.

The E1–E12 experiment harnesses and the a1–a7 ablations are all
top-level callables with keyword-only configuration and picklable
results, which makes them embarrassingly parallel: this module fans a
list of :class:`Job`\\ s across a ``concurrent.futures``
``ProcessPoolExecutor`` and memoizes each result on disk under a
content hash of the job's configuration, so re-running a sweep after
editing one experiment only recomputes that experiment.

Cache entries key on (result-schema version, job config hash): the
schema version (:data:`RESULT_SCHEMA`) is bumped only when the result
dataclasses change shape, so releases that leave results untouched keep
the cache warm — the simulator is deterministic, so a same-schema
same-config entry is still correct.  (Earlier revisions keyed on the
package version, invalidating the whole cache on any release.)

Entries live in the same 2-hex-prefix sharded content-addressed layout
as the run ledger (``objects/<2-hex>/<name>-<hash>.pkl`` next to the
ledger's ``runs/``), and every cache hit refreshes the entry's mtime so
``repro cache prune`` evicts genuinely-cold entries first.

Every cache-miss execution also persists a ``repro.run/1`` record into
the run ledger (:mod:`repro.obs.ledger`) — opt out with
``REPRO_LEDGER=0``.

``max_workers=0`` forces serial in-process execution (no pool, no
pickling), which is also what the runner silently uses for a single
job; ``use_cache=False`` (or the ``--no-cache`` CLI flag) bypasses the
cache both ways.  The cache directory defaults to ``.repro-cache`` and
can be moved with the ``REPRO_CACHE_DIR`` environment variable.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

#: environment override for the on-disk result cache location
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro-cache"
#: cached pickles live under ``<root>/objects/<2-hex-prefix>/``
OBJECTS_SUBDIR = "objects"

#: version of the cached *result schema* — bump when the experiment /
#: ablation result dataclasses change shape (a stale-schema entry
#: would unpickle into the wrong fields); package releases that leave
#: results untouched do NOT invalidate the cache
RESULT_SCHEMA = 1


def registry() -> Dict[str, Callable[..., Any]]:
    """All named harnesses runnable as jobs: experiments plus ablations.

    Resolved lazily (and in the worker process) so importing this
    module stays cheap and the callables never need to cross the
    process boundary — only the job *names* do.
    """
    from repro.analysis import ablations as A
    from repro.analysis.experiments import EXPERIMENTS

    jobs: Dict[str, Callable[..., Any]] = dict(EXPERIMENTS)
    jobs.update({
        "a1": A.a1_rmboc_bus_count,
        "a2": A.a2_buscom_static_split,
        "a3": A.a3_conochi_table_update_latency,
        "a4": A.a4_dynoc_router_latency,
        "a5": A.a5_buscom_adaptivity,
        "a6": A.a6_dynoc_switching_mode,
        "a7": A.a7_rmboc_fairness,
    })
    return jobs


@dataclass
class Job:
    """One unit of work: a registered harness name plus its kwargs."""

    name: str
    kwargs: Dict[str, Any] = field(default_factory=dict)


def config_hash(job: Job) -> str:
    """A stable content hash identifying a job's full configuration.

    Keyed on (result-schema version, name, kwargs) — see
    :data:`RESULT_SCHEMA` for why the package version is *not* part of
    the key."""
    payload = json.dumps(
        {
            "name": job.name,
            "kwargs": job.kwargs,
            "schema": RESULT_SCHEMA,
        },
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def default_cache_dir() -> str:
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


def _cache_path(cache_dir: str, job: Job) -> str:
    """Sharded content-addressed entry path: the first two hex digits
    of the config hash pick the shard, mirroring the run ledger's
    ``runs/<2-hex>/`` layout under the same root."""
    digest = config_hash(job)
    return os.path.join(cache_dir, OBJECTS_SUBDIR, digest[:2],
                        f"{job.name}-{digest}.pkl")


def _cache_load(path: str) -> Optional[tuple]:
    """``("hit", result)`` from disk, or None on a miss (absent file,
    corrupt bytes, or a result class that no longer unpickles).

    A hit refreshes the entry's mtime, so LRU eviction
    (``repro cache prune``) sees recently *used* — not just recently
    written — entries as fresh.

    Unpickling arbitrary corrupt bytes can raise almost anything
    (protocol-0 opcodes alone produce ValueError, KeyError, Unicode
    errors...), and a bad cache entry must always degrade to a miss,
    so everything non-exiting is caught."""
    try:
        with open(path, "rb") as fh:
            result = pickle.load(fh)
    except Exception:
        return None
    try:
        os.utime(path)
    except OSError:
        pass
    return ("hit", result)


def _cache_store(path: str, result: Any) -> None:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            pickle.dump(result, fh)
        os.replace(tmp, path)
    except (OSError, pickle.PicklingError):
        # unpicklable or read-only cache: run uncached, don't fail the job
        try:
            os.unlink(tmp)
        except OSError:
            pass


def _execute(job: Job) -> Any:
    """Worker entry point: resolve the harness by name and run it.

    Module-level so ``ProcessPoolExecutor`` can pickle it.  Runs under
    the run ledger (:func:`repro.obs.ledger.ledgered_call`), so every
    executed job — serial or in a worker process — leaves a
    ``repro.run/1`` record; ``REPRO_LEDGER=0`` opts out and degrades
    this to a plain uninstrumented call.
    """
    jobs = registry()
    if job.name not in jobs:
        raise KeyError(
            f"unknown job {job.name!r}; known: {', '.join(sorted(jobs))}"
        )
    from repro.obs.ledger import ledgered_call

    seed = job.kwargs.get("seed")
    result, _run_id = ledgered_call(
        lambda: jobs[job.name](**job.kwargs),
        kind="experiment", name=job.name, config=job.kwargs,
        seed=seed if isinstance(seed, int) else None)
    return result


def _note(progress: Any, msg: str) -> None:
    """Per-run progress/heartbeat line.  ``progress`` is either a bool
    (True prints to stderr, so piped stdout stays machine-readable) or
    a callable receiving each message — which is how ``repro watch``
    hooks run/done events out of the runner."""
    if callable(progress):
        progress(msg)
    elif progress:
        print(msg, file=sys.stderr, flush=True)


def run_jobs(
    jobs: Sequence[Job],
    max_workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    progress: Any = False,
) -> List[Any]:
    """Run every job, in parallel where possible; results in job order.

    ``max_workers=None`` lets the executor pick (CPU count);
    ``max_workers=0`` runs serially in-process.  Cached results are
    returned without running anything.  ``progress=True`` prints a
    one-line heartbeat to stderr as each run starts/finishes (off by
    default so library callers stay silent); a callable receives each
    heartbeat message instead of printing it.
    """
    cache_dir = cache_dir if cache_dir is not None else default_cache_dir()
    total = len(jobs)
    results: List[Any] = [None] * total
    misses: List[int] = []
    for i, job in enumerate(jobs):
        hit = _cache_load(_cache_path(cache_dir, job)) if use_cache else None
        if hit is not None:
            results[i] = hit[1]
            _note(progress, f"[{i + 1}/{total}] {job.name}: cached")
        else:
            misses.append(i)

    if misses:
        if max_workers == 0 or len(misses) == 1:
            computed = []
            for i in misses:
                _note(progress, f"[{i + 1}/{total}] {jobs[i].name}: running")
                t0 = time.perf_counter()
                computed.append(_execute(jobs[i]))
                _note(progress,
                      f"[{i + 1}/{total}] {jobs[i].name}: done "
                      f"({time.perf_counter() - t0:.1f}s)")
        else:
            t0 = time.perf_counter()
            by_index: Dict[int, Any] = {}
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = {pool.submit(_execute, jobs[i]): i for i in misses}
                done = 0
                for future in as_completed(futures):
                    i = futures[future]
                    by_index[i] = future.result()
                    done += 1
                    _note(progress,
                          f"[{done}/{len(misses)}] {jobs[i].name}: done "
                          f"({time.perf_counter() - t0:.1f}s elapsed)")
            computed = [by_index[i] for i in misses]
        for i, result in zip(misses, computed):
            results[i] = result
            if use_cache:
                _cache_store(_cache_path(cache_dir, jobs[i]), result)
    return results


def run_named(
    names: Sequence[str],
    max_workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    progress: Any = False,
) -> Dict[str, Any]:
    """Convenience wrapper: run registered harnesses by name with their
    default configuration; returns ``{name: result}`` in input order."""
    jobs = [Job(name) for name in names]
    out = run_jobs(jobs, max_workers=max_workers, cache_dir=cache_dir,
                   use_cache=use_cache, progress=progress)
    return dict(zip(names, out))


# ----------------------------------------------------------------------
# parallel design-space sweeps
# ----------------------------------------------------------------------
def _sweep_single_point(packed: tuple) -> Any:
    """Run one sweep point in a worker via a single-point grid."""
    params, max_cycles = packed
    from repro.analysis.sweeps import SweepGrid, run_sweep

    grid = SweepGrid(**{k: [v] for k, v in params.items()})
    return run_sweep(grid, max_cycles=max_cycles)[0]


def run_sweep_parallel(
    grid: "Any",
    max_workers: Optional[int] = None,
    max_cycles: int = 1_000_000,
    progress: Any = False,
) -> List[Any]:
    """Like :func:`repro.analysis.sweeps.run_sweep` but with each grid
    point simulated in its own process.  Points are independent
    simulations, so results are identical to the serial sweep."""
    from repro.analysis.sweeps import run_sweep

    points = list(grid.points())
    if max_workers == 0 or len(points) <= 1:
        return run_sweep(grid, max_cycles=max_cycles)
    packed = [(p, max_cycles) for p in points]
    t0 = time.perf_counter()
    by_index: Dict[int, Any] = {}
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = {pool.submit(_sweep_single_point, item): i
                   for i, item in enumerate(packed)}
        for future in as_completed(futures):
            i = futures[future]
            by_index[i] = future.result()
            _note(progress,
                  f"[{len(by_index)}/{len(points)}] sweep point "
                  f"{points[i]}: done ({time.perf_counter() - t0:.1f}s "
                  f"elapsed)")
    return [by_index[i] for i in range(len(points))]
