"""Analysis layer: experiment harnesses (E1-E7) and figure renderers.

Every table and figure of the paper, plus every quantitative claim of
its §3/§4 discussion, has a harness here; the benchmark suite under
``benchmarks/`` is a thin wrapper that runs these and prints the rows.
"""

from repro.analysis.batch import (
    FleetResult,
    SeedResult,
    render_fleet,
    run_seed,
    run_seed_fleet,
    run_seed_fleet_pool,
)
from repro.analysis.chaos import (
    CHAOS_SCHEMA,
    run_chaos_scenario,
    run_chaos_sweep,
    validate_chaos,
)
from repro.analysis.render import (
    render_buscom_figure,
    render_conochi_figure,
    render_dynoc_figure,
    render_rmboc_figure,
)

__all__ = [
    "CHAOS_SCHEMA",
    "FleetResult",
    "SeedResult",
    "render_fleet",
    "run_seed",
    "run_seed_fleet",
    "run_seed_fleet_pool",
    "run_chaos_scenario",
    "run_chaos_sweep",
    "validate_chaos",
    "render_buscom_figure",
    "render_conochi_figure",
    "render_dynoc_figure",
    "render_rmboc_figure",
]
