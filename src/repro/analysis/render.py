"""ASCII renderings of the paper's Figures 1-4.

The figures in the paper are architecture block diagrams; these
renderers draw the *live state* of a built system in the same layout,
so a rendered figure doubles as a structural assertion (tests check
that the drawn elements match the model's actual topology).
"""

from __future__ import annotations

from typing import List

from repro.arch.buscom.arch import BusCom
from repro.arch.buscom.schedule import SlotKind
from repro.arch.conochi.arch import CoNoChi
from repro.arch.dynoc.arch import DyNoC
from repro.arch.rmboc.fabric import RMBoC


def render_rmboc_figure(arch: RMBoC) -> str:
    """Figure 1: module slots over cross-points over k segmented buses."""
    cfg = arch.cfg
    cell = 9
    lines: List[str] = []
    mods = []
    for xp in range(cfg.num_modules):
        name = arch.module_at(xp) or "(free)"
        mods.append(f"[{name:^{cell - 2}}]")
    lines.append(" ".join(mods))
    lines.append(" ".join(f"{'|':^{cell}}" for _ in range(cfg.num_modules)))
    xps = " ".join(f"[{'XP' + str(i):^{cell - 2}}]" for i in range(cfg.num_modules))
    lines.append(xps)
    for bus in range(cfg.num_buses):
        segs = []
        for seg in range(cfg.num_segments):
            owner = arch._lanes[seg][bus]
            segs.append("=" * cell if owner is None else "#" * cell)
        lines.append(
            f"bus{bus}: " + "+".join(segs) + "   (= free segment, # reserved)"
        )
    return "\n".join(lines)


def render_buscom_figure(arch: BusCom) -> str:
    """Figure 2: BUS-COM interface modules over k buses + arbiter."""
    cfg = arch.cfg
    cell = 11
    modules = list(arch.modules)
    lines: List[str] = []
    lines.append(" ".join(f"[{m:^{cell - 2}}]" for m in modules))
    lines.append(" ".join(f"[{'BUS-COM':^{cell - 2}}]" for _ in modules))
    for b in range(cfg.num_buses):
        owners = sum(
            1 for s in range(cfg.slots_per_bus)
            if arch.table.entry(b, s).kind is SlotKind.STATIC
        )
        lines.append(
            f"bus{b}: " + "=" * (cell * len(modules))
            + f"  ({owners} static / "
            f"{cfg.slots_per_bus - owners} dynamic slots)"
        )
    lines.append(f"{'Arbiter':^{cell * len(modules)}}")
    return "\n".join(lines)


def render_dynoc_figure(arch: DyNoC) -> str:
    """Figure 3: the PE/router array with placed modules.

    ``R`` = active router, module letters = PEs covered by that module
    (lower-case where the router was removed).
    """
    cfg = arch.cfg
    owner = {}
    for name, pl in arch._placements.items():
        for cell in pl.rect.cells():
            owner[cell] = (name, pl.is_single_pe)
    lines: List[str] = []
    for y in range(cfg.mesh_rows - 1, -1, -1):
        row = []
        for x in range(cfg.mesh_cols):
            if (x, y) in owner:
                name, single = owner[(x, y)]
                label = name[-1] if name else "?"
                row.append(f"{label.upper() if single else label.lower()}R"
                           if arch.is_active((x, y)) else f"{label.lower()} ")
            else:
                row.append("·R" if arch.is_active((x, y)) else "  ")
        lines.append(" ".join(row))
    lines.append("(R = active router; letters = module PEs)")
    return "\n".join(lines)


def render_conochi_figure(arch: CoNoChi) -> str:
    """Figure 4: the tile grid (S/H/V switches and lines, M modules)."""
    legend = (
        "(S switch, H/V line tiles, M module tiles, 0 free)\n"
        f"modules: "
        + ", ".join(
            f"{m}@{arch._module_switch[m]}" for m in sorted(arch.modules)
        )
    )
    return arch.grid.render() + "\n" + legend
