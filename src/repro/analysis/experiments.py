"""Experiment harnesses E1-E7: one per quantitative claim of the paper.

Each function builds fresh systems, runs traffic, and returns a small
result object with the measured rows and the paper's expectation, so
benchmarks and EXPERIMENTS.md share one source of truth. See DESIGN.md
§4 for the experiment index.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch import build_architecture
from repro.arch.conochi.arch import CoNoChi
from repro.core.metrics import (
    effective_bandwidth,
    observed_parallelism,
    probe_single_message,
)
from repro.core.scenario import minimal_scenario
from repro.fabric.area import AreaModel
from repro.fabric.device import get_device
from repro.fabric.geometry import Rect
from repro.reconfig.manager import ReconfigurationManager
from repro.reconfig.module import ModuleSpec
from repro.sim import make_rng
from repro.traffic.generators import PeriodicStream, RandomTraffic
from repro.traffic.patterns import uniform_chooser


# ======================================================================
# E1 — RMBoC connection setup latency (§3.1, Table 2)
# ======================================================================
@dataclass
class E1Result:
    """Setup latency vs distance, plus the derived bound."""

    rows: List[Tuple[int, int, int]]  # (distance, measured, model 2d+6)
    min_setup: int
    upper_bound: int                  # max over distances
    model_upper_bound: int            # 2m + 4
    paper_min_setup: int = 8

    @property
    def matches_paper(self) -> bool:
        return (
            self.min_setup == self.paper_min_setup
            and all(m == f for _, m, f in self.rows)
            and self.upper_bound == self.model_upper_bound
        )


def e1_rmboc_setup(num_modules: int = 4, num_buses: int = 4,
                   width: int = 32) -> E1Result:
    rows: List[Tuple[int, int, int]] = []
    for dist in range(1, num_modules):
        arch = build_architecture("rmboc", num_modules=num_modules,
                                  width=width, num_buses=num_buses)
        probe = probe_single_message(arch, "m0", f"m{dist}", payload_bytes=64)
        assert probe.setup_cycles is not None
        rows.append((dist, probe.setup_cycles, 2 * dist + 6))
    measured = [m for _, m, _ in rows]
    return E1Result(
        rows=rows,
        min_setup=min(measured),
        upper_bound=max(measured),
        model_upper_bound=2 * num_modules + 4,
    )


# ======================================================================
# E2 — parallelism d_max (§4.2)
# ======================================================================
@dataclass
class E2Result:
    """Observed vs theoretical d_max per architecture."""

    rows: Dict[str, Tuple[int, int]]  # arch -> (observed, theoretical)

    @property
    def rmboc_beats_buscom(self) -> bool:
        return self.rows["rmboc"][0] > self.rows["buscom"][0]


def e2_parallelism(width: int = 32, payload_bytes: int = 512) -> E2Result:
    rows: Dict[str, Tuple[int, int]] = {}

    # RMBoC: three adjacent pairs x four buses = s*k = 12 single-segment
    # circuits; every module opens k channels to its right neighbour.
    arch = build_architecture("rmboc", num_modules=4, width=width,
                              num_buses=4)
    for i in range(3):
        for _ in range(4):
            arch.ports[f"m{i}"].send(f"m{i+1}", payload_bytes)
    arch.run_to_completion()
    rows["rmboc"] = (observed_parallelism(arch)[0], arch.theoretical_dmax())

    # BUS-COM: saturate everyone; at most one frame per bus -> k.
    arch = build_architecture("buscom", num_modules=4, width=width)
    for i in range(4):
        for _ in range(4):
            arch.ports[f"m{i}"].send(f"m{(i+1) % 4}", payload_bytes)
    arch.run_to_completion()
    rows["buscom"] = (observed_parallelism(arch)[0], arch.theoretical_dmax())

    # NoCs: pairwise disjoint traffic; limited by links, not by a shared
    # medium.
    for key in ("dynoc", "conochi"):
        arch = build_architecture(key, num_modules=4, width=width)
        mods = list(arch.modules)
        for _ in range(4):
            arch.ports[mods[0]].send(mods[1], payload_bytes)
            arch.ports[mods[2]].send(mods[3], payload_bytes)
            arch.ports[mods[1]].send(mods[0], payload_bytes)
            arch.ports[mods[3]].send(mods[2], payload_bytes)
        arch.run_to_completion()
        rows[key] = (observed_parallelism(arch)[0], arch.theoretical_dmax())
    return E2Result(rows=rows)


# ======================================================================
# E3 — effective bandwidth / protocol overhead (§4.2)
# ======================================================================
@dataclass
class E3Result:
    """Measured payload efficiency per architecture, plus the CoNoChi
    payload sweep."""

    rows: Dict[str, float]
    conochi_sweep: List[Tuple[int, float]]  # (payload bytes, efficiency)
    paper_claim: float = 0.90

    def close_to_claim(self, arch: str, tol: float = 0.02) -> bool:
        return abs(self.rows[arch] - self.paper_claim) <= tol


def e3_effective_bandwidth(width: int = 32) -> E3Result:
    rows: Dict[str, float] = {}

    # BUS-COM: full static slots (72-byte frames).
    arch = build_architecture("buscom", num_modules=4, width=width)
    for rep in range(8):
        for i in range(4):
            arch.ports[f"m{i}"].send(f"m{(i+1) % 4}", 72)
    arch.run_to_completion()
    rows["buscom"] = effective_bandwidth(arch)

    # CoNoChi: ~100-byte streaming packets (the applications it targets).
    arch = build_architecture("conochi", num_modules=4, width=width)
    for rep in range(8):
        for i in range(4):
            arch.ports[f"m{i}"].send(f"m{(i+1) % 4}", 108)
    arch.run_to_completion()
    rows["conochi"] = effective_bandwidth(arch)

    # RMBoC: large transfer over an established circuit — negligible
    # overhead (two small control packets per channel).
    arch = build_architecture("rmboc", num_modules=4, width=width)
    for i in range(4):
        arch.ports[f"m{i}"].send(f"m{(i+1) % 4}", 4096)
    arch.run_to_completion()
    rows["rmboc"] = effective_bandwidth(arch)

    # DyNoC: one header word per packet (payload size matters).
    arch = build_architecture("dynoc", num_modules=4, width=width)
    for rep in range(8):
        for i in range(4):
            arch.ports[f"m{i}"].send(f"m{(i+1) % 4}", 108)
    arch.run_to_completion()
    rows["dynoc"] = effective_bandwidth(arch)

    sweep: List[Tuple[int, float]] = []
    for payload in (16, 32, 64, 108, 256, 512, 1024):
        arch = build_architecture("conochi", num_modules=4, width=width)
        for i in range(4):
            arch.ports[f"m{i}"].send(f"m{(i+1) % 4}", payload)
        arch.run_to_completion()
        sweep.append((payload, effective_bandwidth(arch)))
    return E3Result(rows=rows, conochi_sweep=sweep)


# ======================================================================
# E4 — path-latency scaling with module size (§4.2)
# ======================================================================
@dataclass
class E4Result:
    """Latency between two fixed endpoints as an obstacle module in
    between grows; DyNoC degrades, CoNoChi stays flat, buses stay at
    one cycle per word once established."""

    dynoc_rows: List[Tuple[int, int, int]]    # (module side, hops, latency)
    conochi_rows: List[Tuple[int, int]]       # (module side, latency)
    rmboc_established_cpw: float              # cycles/word on a circuit

    @property
    def dynoc_latency_grows(self) -> bool:
        lat = [l for _, _, l in self.dynoc_rows]
        return lat[-1] > lat[0]

    @property
    def conochi_latency_flat(self) -> bool:
        lat = [l for _, l in self.conochi_rows]
        return max(lat) == min(lat)


def e4_latency_scaling(max_side: int = 4, width: int = 32,
                       payload_bytes: int = 16) -> E4Result:
    dynoc_rows: List[Tuple[int, int, int]] = []
    for side in range(1, max_side + 1):
        # endpoints west and east of an side x side obstacle, same row
        cols, rows = side + 4, side + 2
        arch = build_architecture("dynoc", num_modules=0, width=width,
                                  mesh=(cols, rows))
        mid_y = rows // 2
        arch.attach("src", rect=Rect(0, mid_y, 1, 1))
        arch.attach("dst", rect=Rect(cols - 1, mid_y, 1, 1))
        if side == 1:
            # a 1x1 module keeps its router: place but keep network intact
            arch.attach("obstacle", rect=Rect(2, mid_y, 1, 1))
        else:
            arch.attach("obstacle", rect=Rect(2, 1, side, side))
        probe = probe_single_message(arch, "src", "dst", payload_bytes)
        hops = int(arch.sim.stats.histogram("dynoc.hops").samples[-1])
        dynoc_rows.append((side, hops, probe.total_cycles))

    conochi_rows: List[Tuple[int, int]] = []
    for side in range(1, max_side + 1):
        # CoNoChi: the switch count depends on the number of modules
        # only — a bigger module just occupies more 0-tiles.
        arch = build_architecture("conochi", num_modules=3, width=width)
        probe = probe_single_message(arch, "m0", "m2", payload_bytes)
        conochi_rows.append((side, probe.total_cycles))

    arch = build_architecture("rmboc", num_modules=4, width=width)
    probe = probe_single_message(arch, "m0", "m3", payload_bytes=512)
    cpw = probe.cycles_per_word
    return E4Result(dynoc_rows=dynoc_rows, conochi_rows=conochi_rows,
                    rmboc_established_cpw=cpw)


# ======================================================================
# E5 — area scaling (§4.1, Table 3 extended)
# ======================================================================
@dataclass
class E5Result:
    """Interconnect slices vs module count and module size."""

    by_modules: Dict[str, List[Tuple[int, int]]]   # arch -> [(m, slices)]
    dynoc_by_size: List[Tuple[int, int]]           # (side, slices)
    conochi_by_size: List[Tuple[int, int]]         # (side, slices)

    @property
    def conochi_beats_dynoc_for_large_modules(self) -> bool:
        return self.conochi_by_size[-1][1] < self.dynoc_by_size[-1][1]


def e5_area_scaling(width: int = 32, max_modules: int = 12,
                    max_side: int = 4) -> E5Result:
    area = AreaModel()
    by_modules: Dict[str, List[Tuple[int, int]]] = {
        "rmboc": [], "buscom": [], "dynoc": [], "conochi": [],
    }
    for m in range(2, max_modules + 1):
        by_modules["rmboc"].append((m, area.rmboc_total(m, 4, width)))
        by_modules["buscom"].append((m, area.buscom_total(m, 4, width)))
        by_modules["dynoc"].append((m, area.dynoc_total(m, width)))
        by_modules["conochi"].append((m, area.conochi_total(m, width)))

    # four modules of side x side: DyNoC needs routers surrounding each
    # module (mesh grows with module size), CoNoChi still needs 4
    # switches.
    dynoc_by_size: List[Tuple[int, int]] = []
    conochi_by_size: List[Tuple[int, int]] = []
    for side in range(1, max_side + 1):
        if side == 1:
            routers = 4  # Table 3's assumption: module == PE
        else:
            # 2x2 arrangement of side x side modules with 1-router
            # corridors and border: mesh side = 2*side + 3
            mesh = 2 * side + 3
            routers = mesh * mesh - 4 * side * side
        dynoc_by_size.append((side, area.dynoc_total(routers, width)))
        conochi_by_size.append((side, area.conochi_total(4, width)))
    return E5Result(by_modules=by_modules, dynoc_by_size=dynoc_by_size,
                    conochi_by_size=conochi_by_size)


# ======================================================================
# E6 — communication during reconfiguration (§3, §4)
# ======================================================================
@dataclass
class E6Result:
    """Per-architecture swap records + traffic-continuity evidence."""

    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def survived(self, arch: str) -> bool:
        return self.rows[arch]["bystander_delivered"] > 0


def e6_reconfiguration(width: int = 32) -> E6Result:
    result = E6Result()
    device = get_device("XC2V6000")
    for key in ("rmboc", "buscom", "dynoc", "conochi"):
        arch = build_architecture(key, num_modules=4, width=width)
        sim = arch.sim
        mods = list(arch.modules)
        # bystander traffic between m2 and m3 throughout
        stream = PeriodicStream(
            "bystander", arch.ports[mods[2]], mods[3],
            period=40, payload_bytes=32,
        )
        sim.add(stream)
        manager = ReconfigurationManager(arch, device)
        region = Rect(0, 0, 4, device.clb_rows)
        record = manager.swap(mods[0], ModuleSpec("m0b"), region)
        sim.run_until(lambda s: record.done, max_cycles=2_000_000)
        # let bystander traffic drain
        sim.run_until(lambda s: stream.all_delivered() or s.cycle > sim.cycle + 50_000,
                      max_cycles=5_000_000)
        during = [
            m.latency for m in stream.sent
            if m.delivered and record.detach_cycle
            <= m.created_cycle < record.attach_cycle
        ]
        result.rows[key] = {
            "reconfig_cycles": record.reconfig_cycles,
            "downtime_cycles": record.downtime_cycles,
            "total_cycles": record.total_cycles,
            "bystander_delivered": float(
                sum(1 for m in stream.sent if m.delivered)
            ),
            "bystander_mean_latency_during": (
                sum(during) / len(during) if during else math.nan
            ),
        }
    return result


@dataclass
class E6bResult:
    """CoNoChi-specific: switch insertion/removal under traffic."""

    added_ok: bool
    removed_ok: bool
    messages_delivered: int
    mean_latency_before: float
    mean_latency_after_add: float


def e6b_conochi_topology_change(width: int = 32) -> E6bResult:
    """Insert a switch into a live CoNoChi network, then remove it,
    while a stream runs — nothing may stall or be lost."""
    from repro.fabric.tiles import TileType

    arch: CoNoChi = build_architecture("conochi", num_modules=4, width=width)
    sim = arch.sim
    stream = PeriodicStream("s", arch.ports["m0"], "m3",
                            period=30, payload_bytes=64, stop=3000)
    sim.add(stream)
    sim.run(600)
    before = [m.latency for m in stream.sent if m.delivered]
    # insert a switch above switch (2,1) joined by a vertical wire
    arch.add_switch((2, 3), wires=[((2, 2), TileType.VWIRE)])
    sim.run(600)
    added_ok = (2, 3) in arch.grid.switches()
    after_add = [
        m.latency for m in stream.sent
        if m.delivered and m.created_cycle >= 600
    ]
    arch.remove_switch((2, 3))
    sim.run_until(lambda s: s.cycle >= 3000 and stream.all_delivered()
                  and arch.idle(), max_cycles=1_000_000)
    removed_ok = (2, 3) not in arch.grid.switches()
    return E6bResult(
        added_ok=added_ok,
        removed_ok=removed_ok,
        messages_delivered=sum(1 for m in stream.sent if m.delivered),
        mean_latency_before=sum(before) / len(before) if before else math.nan,
        mean_latency_after_add=(
            sum(after_add) / len(after_add) if after_add else math.nan
        ),
    )


# ======================================================================
# E7 — bus serialization vs NoC concurrency (§2.2)
# ======================================================================
@dataclass
class E7Result:
    """Mean latency under uniform random traffic at rising offered load."""

    rows: Dict[str, List[Tuple[float, float]]]  # arch -> [(rate, mean lat)]

    def saturation_rate(self, arch: str, knee_factor: float = 3.0) -> float:
        """First rate whose latency exceeds ``knee_factor`` x the
        lowest-rate latency (inf if never)."""
        series = self.rows[arch]
        base = series[0][1]
        for rate, lat in series:
            if lat > knee_factor * base:
                return rate
        return math.inf


def e7_bus_vs_noc(width: int = 32, num_modules: int = 4,
                  rates: Tuple[float, ...] = (0.002, 0.005, 0.01, 0.02, 0.04),
                  horizon: int = 4000, payload_bytes: int = 64,
                  seed: int = 5) -> E7Result:
    rows: Dict[str, List[Tuple[float, float]]] = {}
    for key in ("rmboc", "buscom", "dynoc", "conochi"):
        series: List[Tuple[float, float]] = []
        for rate in rates:
            arch = build_architecture(key, num_modules=num_modules,
                                      width=width)
            sim = arch.sim
            mods = list(arch.modules)
            gens = []
            for src in mods:
                gens.append(RandomTraffic(
                    name=f"g.{src}",
                    port=arch.ports[src],
                    chooser=uniform_chooser(src, mods,
                                            make_rng(seed, key, src, "c")),
                    rng=make_rng(seed, key, src, "r"),
                    rate=rate,
                    payload_bytes=payload_bytes,
                    stop=horizon,
                ))
            sim.add_all(gens)
            sim.run(horizon)
            sim.run_until(
                lambda s: arch.log.all_delivered() and arch.idle(),
                max_cycles=20 * horizon,
            )
            lats = arch.log.latencies()
            series.append((rate, sum(lats) / len(lats) if lats else math.nan))
        rows[key] = series
    return E7Result(rows=rows)


@dataclass
class E7bResult:
    """Mean latency at a fixed per-module rate as the module count
    grows: buses share k channels among ever more modules; the NoCs add
    a switch (and links) per module."""

    rows: Dict[str, List[Tuple[int, float]]]  # arch -> [(m, mean latency)]

    def degradation(self, arch: str) -> float:
        """Latency at the largest system relative to the smallest."""
        series = self.rows[arch]
        return series[-1][1] / series[0][1]


def e7b_module_scaling(width: int = 32,
                       module_counts: Tuple[int, ...] = (4, 8, 12),
                       rate: float = 0.01, horizon: int = 3000,
                       payload_bytes: int = 64, seed: int = 9) -> E7bResult:
    rows: Dict[str, List[Tuple[int, float]]] = {}
    for key in ("rmboc", "buscom", "dynoc", "conochi"):
        series: List[Tuple[int, float]] = []
        for m in module_counts:
            arch = build_architecture(key, num_modules=m, width=width)
            sim = arch.sim
            mods = list(arch.modules)
            gens = []
            for src in mods:
                gens.append(RandomTraffic(
                    name=f"g.{src}",
                    port=arch.ports[src],
                    chooser=uniform_chooser(src, mods,
                                            make_rng(seed, key, src, "c")),
                    rng=make_rng(seed, key, src, "r"),
                    rate=rate,
                    payload_bytes=payload_bytes,
                    stop=horizon,
                ))
            sim.add_all(gens)
            sim.run(horizon)
            sim.run_until(
                lambda s: arch.log.all_delivered() and arch.idle(),
                max_cycles=50 * horizon,
            )
            lats = arch.log.latencies()
            series.append((m, sum(lats) / len(lats) if lats else math.nan))
        rows[key] = series
    return E7bResult(rows=rows)


# ======================================================================
# E8 — energy per delivered byte (extension of the §2.2 power argument)
# ======================================================================
@dataclass
class E8Result:
    """Energy per payload byte under identical ring traffic.

    Not a paper table: the survey only argues qualitatively that
    unsegmented buses burn power in their long lines while NoCs use
    local wires. The coefficients are synthetic but shared, so the
    *ratios* carry the claim.
    """

    rows: Dict[str, float]  # arch -> pJ per delivered payload byte

    @property
    def buscom_worst(self) -> bool:
        return self.rows["buscom"] == max(self.rows.values())

    @property
    def segmentation_helps(self) -> bool:
        """RMBoC's segmented lines beat the unsegmented broadcast bus."""
        return self.rows["rmboc"] < self.rows["buscom"]


def e8_energy(width: int = 32, payload_bytes: int = 64,
              rounds: int = 8) -> E8Result:
    from repro.analysis.energy import measure_energy

    rows: Dict[str, float] = {}
    for key in ("rmboc", "buscom", "dynoc", "conochi"):
        arch = build_architecture(key, num_modules=4, width=width)
        for _ in range(rounds):
            for i in range(4):
                arch.ports[f"m{i}"].send(f"m{(i + 1) % 4}", payload_bytes)
        arch.run_to_completion()
        rows[key] = measure_energy(arch).pj_per_payload_byte
    return E8Result(rows=rows)


# ======================================================================
# E9 — latency decomposition under load (extension)
# ======================================================================
@dataclass
class E9Result:
    """Queueing vs transport latency split per architecture under
    identical moderate uniform load — where each architecture's latency
    actually comes from (the §4.2 discussion, decomposed)."""

    rows: Dict[str, Tuple[float, float]]  # arch -> (queueing, transport)

    def queueing_fraction(self, arch: str) -> float:
        q, t = self.rows[arch]
        return q / (q + t)


def e9_latency_decomposition(width: int = 32, rate: float = 0.01,
                             horizon: int = 4000, payload_bytes: int = 64,
                             seed: int = 21) -> E9Result:
    from repro.core.metrics import latency_decomposition

    rows: Dict[str, Tuple[float, float]] = {}
    for key in ("rmboc", "buscom", "dynoc", "conochi"):
        arch = build_architecture(key, num_modules=4, width=width)
        sim = arch.sim
        mods = list(arch.modules)
        for src in mods:
            sim.add(RandomTraffic(
                name=f"g.{src}",
                port=arch.ports[src],
                chooser=uniform_chooser(src, mods,
                                        make_rng(seed, key, src, "c")),
                rng=make_rng(seed, key, src, "r"),
                rate=rate,
                payload_bytes=payload_bytes,
                stop=horizon,
            ))
        sim.run(horizon)
        sim.run_until(lambda s: arch.log.all_delivered() and arch.idle(),
                      max_cycles=50 * horizon)
        d = latency_decomposition(arch)
        rows[key] = (d.queueing_mean, d.transport_mean)
    return E9Result(rows=rows)


# ======================================================================
# E10 — the reconfigurability tax (extension over §2.2 baselines)
# ======================================================================
@dataclass
class E10Result:
    """What the DPR architectures pay relative to static §2.2 baselines.

    ``area_tax``/``clock_tax``/``latency_tax`` are the DPR architecture's
    figure divided by its static counterpart's (shared bus for the bus
    systems, static mesh for the NoCs) under the identical minimal
    scenario. In exchange the static designs *cannot* exchange modules
    at all (asserted by ``static_cannot_reconfigure``).
    """

    rows: Dict[str, Dict[str, float]]
    static_cannot_reconfigure: bool

    def tax(self, arch: str, metric: str) -> float:
        return self.rows[arch][metric]


def e10_reconfigurability_tax(width: int = 32,
                              payload_bytes: int = 64) -> E10Result:
    from repro.core.scenario import minimal_scenario

    def measure(key: str) -> Tuple[float, float, float]:
        arch = build_architecture(key, num_modules=4, width=width)
        result = minimal_scenario(arch, payload_bytes=payload_bytes,
                                  pattern="ring")
        return (float(arch.area_slices()), arch.fmax_hz(),
                result.mean_latency)

    base = {
        "sharedbus": measure("sharedbus"),
        "staticmesh": measure("staticmesh"),
    }
    counterpart = {"rmboc": "sharedbus", "buscom": "sharedbus",
                   "dynoc": "staticmesh", "conochi": "staticmesh"}
    rows: Dict[str, Dict[str, float]] = {}
    for key, ref in counterpart.items():
        area, fmax, lat = measure(key)
        ref_area, ref_fmax, ref_lat = base[ref]
        rows[key] = {
            "baseline": ref,  # type: ignore[dict-item]
            "area_tax": area / ref_area,
            "clock_tax": ref_fmax / fmax,  # >1: DPR clocks slower
            "latency_tax": lat / ref_lat,
        }

    # the baselines genuinely cannot reconfigure
    static_blocked = True
    for key in ("sharedbus", "staticmesh"):
        arch = build_architecture(key, num_modules=4, width=width)
        try:
            arch.detach("m0")
            static_blocked = False
        except RuntimeError:
            pass
    return E10Result(rows=rows, static_cannot_reconfigure=static_blocked)


# ======================================================================
# E11 — real-time capability study (extension)
# ======================================================================
@dataclass
class E11Result:
    """Deadline-met ratio and worst latency of the automotive control
    workload on every interconnect (incl. static baselines), with
    bursty interference — BUS-COM's design goal, tested against the
    field."""

    rows: Dict[str, Dict[str, float]]

    def met_ratio(self, arch: str) -> float:
        return self.rows[arch]["met_ratio"]


def e11_realtime_study(width: int = 32, horizon: int = 12_000,
                       deadline: Optional[int] = None,
                       seed: int = 29) -> E11Result:
    from repro.arch.buscom.config import BusComConfig

    from repro.traffic.apps import automotive_workload

    if deadline is None:
        # the deadline a correctly dimensioned TDMA design guarantees:
        # one worst-case communication round plus a slot
        cfg = BusComConfig()
        deadline = cfg.max_round_cycles + cfg.static_slot_cycles
    rows: Dict[str, Dict[str, float]] = {}
    archs = ("rmboc", "buscom", "dynoc", "conochi", "sharedbus",
             "staticmesh")
    for key in archs:
        arch = build_architecture(key, num_modules=4, width=width)
        gens = automotive_workload(
            arch, deadline=deadline, infotainment_rate=0.04,
            infotainment_bytes=240, seed=seed, stop=horizon,
        )
        arch.sim.run(horizon)
        arch.sim.run_until(
            lambda s: arch.log.all_delivered() and arch.idle(),
            max_cycles=100 * horizon,
        )
        control = [g for g in gens if g.name.startswith("auto.ctrl")]
        met = [g.deadline_met_ratio() for g in control]
        worst = max(max(g.latencies()) for g in control)
        rows[key] = {
            "met_ratio": sum(met) / len(met),
            "worst_latency": float(worst),
        }
    return E11Result(rows=rows)


# ======================================================================
# E12 — sustainable reconfiguration frequency (extension)
# ======================================================================
@dataclass
class E12Result:
    """Module-swap cadence vs bystander traffic quality.

    For each swap period, one slot is repeatedly exchanged while the
    other modules stream; reported per architecture and period:
    completed swaps, slot availability (fraction of time a module
    occupied the churned slot), and the bystander stream's mean latency.
    The paper treats reconfiguration as rare; E12 asks how *frequent*
    it may become before the interconnect's service degrades.
    """

    rows: Dict[str, Dict[int, Dict[str, float]]]

    def availability(self, arch: str, period: int) -> float:
        return self.rows[arch][period]["availability"]


def e12_reconfiguration_frequency(
    periods: Tuple[int, ...] = (300_000, 450_000),
    horizon_swaps: int = 3,
    width: int = 32,
) -> E12Result:
    from repro.fabric.device import get_device
    from repro.reconfig.manager import ReconfigurationManager
    from repro.reconfig.module import ModuleSpec

    device = get_device("XC2V6000")
    region = Rect(0, 0, 4, device.clb_rows)
    rows: Dict[str, Dict[int, Dict[str, float]]] = {}
    for key in ("rmboc", "buscom", "dynoc", "conochi"):
        rows[key] = {}
        for period in periods:
            arch = build_architecture(key, num_modules=4, width=width)
            sim = arch.sim
            stream = PeriodicStream("bystander", arch.ports["m2"], "m3",
                                    period=50, payload_bytes=32)
            sim.add(stream)
            manager = ReconfigurationManager(arch, device)
            records = []
            churn = {"occupant": "m0", "gen": 0}

            def swap_next(sim_):
                spec = ModuleSpec(f"gen{churn['gen']}")
                churn["gen"] += 1
                records.append(
                    manager.swap(churn["occupant"], spec, region)
                )
                churn["occupant"] = spec.name

            for n in range(horizon_swaps):
                sim.at(n * period, swap_next)
            horizon = horizon_swaps * period
            stream.stop = horizon
            sim.run_until(
                lambda s: s.cycle >= horizon
                and all(r.done for r in records),
                max_cycles=10 * horizon,
            )
            sim.run_until(lambda s: stream.all_delivered(),
                          max_cycles=horizon)
            downtime = sum(r.downtime_cycles for r in records)
            lats = stream.latencies()
            rows[key][period] = {
                "swaps": float(len([r for r in records if r.done])),
                "availability": 1.0 - downtime / sim.cycle,
                "bystander_mean_latency": sum(lats) / len(lats),
            }
    return E12Result(rows=rows)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
#: every experiment harness by its paper label — the single source of
#: truth used by the CLI and by repro.analysis.parallel.  Each entry is
#: a top-level, argument-light callable returning a picklable result,
#: which is what lets the parallel runner ship them across processes.
EXPERIMENTS = {
    "e1": e1_rmboc_setup,
    "e2": e2_parallelism,
    "e3": e3_effective_bandwidth,
    "e4": e4_latency_scaling,
    "e5": e5_area_scaling,
    "e6": e6_reconfiguration,
    "e6b": e6b_conochi_topology_change,
    "e7": e7_bus_vs_noc,
    "e7b": e7b_module_scaling,
    "e8": e8_energy,
    "e9": e9_latency_decomposition,
    "e10": e10_reconfigurability_tax,
    "e11": e11_realtime_study,
    "e12": e12_reconfiguration_frequency,
}
