"""Chaos harness: canonical fault scenarios over live architectures.

``repro chaos <experiment>`` discovers which architectures an
experiment harness builds (via the construction hook in
:mod:`repro.arch.base`) and subjects each to its canonical chaos
scenario: a steady message stream, a single seeded ``NODE_DOWN`` on a
known-recoverable fabric element mid-stream, and a long-enough run for
the architecture's own recovery machinery (CANCEL teardown, slot
migration, S-XY obstacle routing, table redistribution) to restore
service.  The output is a ``repro.chaos/1`` document of resilience
metrics — delivered/dropped/retransmitted/undelivered, detection
latency, MTTR, availability — plus any SLO alerts the run fired.

Every scenario is deterministic: the fault schedule is seeded, traffic
is injected at fixed cycles, and the per-architecture targets are
chosen from the recovery policy's own candidate list (or a pinned
known-good coordinate where the policy is deliberately conservative),
so the same seed reproduces the same document bit for bit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.arch import build_architecture
from repro.arch.base import set_new_arch_hook
from repro.faults import FaultKind, FaultSchedule, inject
from repro.faults.policies import make_policy
from repro.sim import Simulator
from repro.sim.vec import make_simulator

#: schema tag of the document :func:`run_chaos_sweep` emits
CHAOS_SCHEMA = "repro.chaos/1"

#: cycle the canonical fault fires at (mid-stream)
FAULT_AT = 300
#: outage length before the element is repaired
FAULT_DURATION = 900
#: messages pumped per scenario, one every TRAFFIC_PERIOD cycles
TRAFFIC_COUNT = 40
TRAFFIC_PERIOD = 40
#: run horizon — generous slack past the last send + recovery
HORIZON = 20_000


class _TargetProbe:
    """Minimal injector stand-in for target discovery: policies only
    read ``dead_nodes`` when listing candidates."""

    dead_nodes: Dict[Any, Any] = {}


def _build_scenario_arch(key: str, sim: Simulator):
    """The canonical build + (target, src, dst) choice for one
    architecture.  Returns ``(arch, target, src, dst)``."""
    if key == "conochi":
        # six modules on the 7-switch ladder: the spare switch is a
        # dead-end stub, so fail m2's *home* switch instead — traffic
        # m0 -> m4 detours over the top rail while m2 is unreachable.
        from repro.arch.conochi.arch import ladder_grid

        arch = build_architecture(key, num_modules=6,
                                  grid=ladder_grid(7), sim=sim)
        return arch, (2, 2), "m0", "m4"
    if key in ("dynoc", "staticmesh"):
        # the default mesh for 4 modules has no spare routers; a 4x4
        # mesh leaves 12, all maskable as S-XY obstacles
        arch = build_architecture(key, num_modules=4, mesh=(4, 4), sim=sim)
    else:
        arch = build_architecture(key, num_modules=4, sim=sim)
    policy = make_policy(arch, _TargetProbe())
    targets = policy.node_targets()
    if not targets:
        raise RuntimeError(f"{key}: recovery policy lists no safe "
                           f"fault targets")
    target = targets[len(targets) // 2]
    mods = list(arch.ports)
    return arch, target, mods[0], mods[-1]


def _execute_scenario(key: str, seed: int, telemetry: bool,
                      engine: str, adaptive_rules_on: bool,
                      with_loop: bool):
    """One simulated chaos run; returns ``(sim, injector, loop)``."""
    sim = make_simulator(name=f"chaos-{key}", engine=engine)
    tel = None
    if telemetry:
        from repro.obs.alerts import AlertEngine
        from repro.obs.flows import FlowTelemetry

        tel = FlowTelemetry()
        if adaptive_rules_on:
            from repro.control.actions import adaptive_rules

            tel.engine = AlertEngine(rules=adaptive_rules())
        else:
            tel.engine = AlertEngine()
        tel.attach(sim)
    arch, target, src, dst = _build_scenario_arch(key, sim)
    loop = None
    if with_loop:
        from repro.control.loop import ControlLoop

        loop = ControlLoop(arch, tel=tel)
    sched = FaultSchedule(seed=seed).one_shot(
        FAULT_AT, FaultKind.NODE_DOWN, target, duration=FAULT_DURATION)
    injector = inject(arch, sched)
    ports = arch.ports
    for i in range(TRAFFIC_COUNT):
        sim.at(10 + TRAFFIC_PERIOD * i,
               lambda s, src=src, dst=dst: ports[src].send(dst, 64,
                                                           tag="chaos"))
    sim.run(HORIZON)
    return sim, target, injector, loop


def run_chaos_scenario(key: str, seed: int = 7,
                       telemetry: bool = True,
                       engine: str = None,
                       adaptive: bool = False) -> Dict[str, Any]:
    """One architecture through its canonical fault scenario.

    ``engine`` picks the simulation backend (``"object"``/``"vec"``);
    the emitted document is engine-independent.  With ``adaptive``
    the run watches the controller rule set, wires a
    :class:`~repro.control.loop.ControlLoop` onto the alert stream,
    and the document additionally carries the ``repro.control/1``
    action log plus an SLO-burn comparison against a static twin run
    under identical traffic, faults, and rules.
    """
    if adaptive and not telemetry:
        raise ValueError("adaptive chaos runs need telemetry: the "
                         "controller is driven by the alert stream")
    sim, target, injector, loop = _execute_scenario(
        key, seed, telemetry, engine,
        adaptive_rules_on=adaptive, with_loop=adaptive)
    metrics = injector.metrics()
    survived = (
        metrics["messages_sent"] > 0
        and metrics["messages_undelivered"] == 0
        and metrics["faults_recovered"] == metrics["faults_injected"]
    )
    doc: Dict[str, Any] = {
        "arch": key,
        "target": str(target),
        "seed": seed,
        "survived": survived,
        "metrics": metrics,
    }
    if telemetry:
        sim.telemetry.evaluate_now()
        doc["alerts"] = [a.to_dict()
                         for a in sim.telemetry.engine.alerts]
    if adaptive:
        doc["control"] = loop.action_log(sim.cycle)
        burn = sim.telemetry.engine.total_burn(sim.cycle)
        static_sim, _, _, _ = _execute_scenario(
            key, seed, telemetry, engine,
            adaptive_rules_on=True, with_loop=False)
        static_sim.telemetry.evaluate_now()
        static_burn = static_sim.telemetry.engine.total_burn(
            static_sim.cycle)
        doc["slo_burn_cycles"] = burn
        doc["static_slo_burn_cycles"] = static_burn
        doc["burn_improved"] = burn <= static_burn
    return doc


def discover_arch_keys(experiment: str) -> List[str]:
    """Which architecture kinds an experiment harness builds, in first-
    construction order (deduplicated)."""
    from repro.analysis.experiments import EXPERIMENTS

    if experiment not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment!r} "
                       f"(known: {known})")
    keys: List[str] = []

    def hook(arch) -> None:
        if arch.KEY not in keys:
            keys.append(arch.KEY)

    prev = set_new_arch_hook(hook)
    try:
        EXPERIMENTS[experiment]()
    finally:
        set_new_arch_hook(prev)
    return keys


def _resilience_summary(scenarios: List[Dict[str, Any]]
                        ) -> Dict[str, Any]:
    """Sweep-level resilience aggregate for the run-ledger record."""
    mttrs = [s["metrics"]["mttr_max"] for s in scenarios
             if s["metrics"]["mttr_max"] is not None]
    return {
        "survived": all(s["survived"] for s in scenarios),
        "scenarios": len(scenarios),
        "faults_injected": sum(s["metrics"]["faults_injected"]
                               for s in scenarios),
        "faults_recovered": sum(s["metrics"]["faults_recovered"]
                                for s in scenarios),
        "messages_undelivered": sum(s["metrics"]["messages_undelivered"]
                                    for s in scenarios),
        "availability_min": min(s["metrics"]["availability"]
                                for s in scenarios),
        "mttr_max": max(mttrs) if mttrs else None,
        "alerts": sum(len(s.get("alerts", [])) for s in scenarios),
    }


def run_chaos_sweep(experiment: str, seed: int = 7,
                    rounds: int = 1,
                    telemetry: bool = True,
                    engine: str = None,
                    ledger: bool = True,
                    adaptive: bool = False) -> Dict[str, Any]:
    """The ``repro.chaos/1`` document: every architecture the
    experiment exercises, each through ``rounds`` seeded scenarios
    (round *i* uses ``seed + i``).

    Unless opted out (``ledger=False`` or ``REPRO_LEDGER=0``), the
    sweep also persists a ``repro.run/1`` record — the chaos document
    as its stats plus kernel metrics and a resilience aggregate — and
    the returned document carries its id under ``run_id``.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    from repro.obs.ledger import (RunLedger, build_run_record,
                                  ledger_enabled)
    from repro.obs.session import ObservationSession

    keys = discover_arch_keys(experiment)
    ledgered = ledger and ledger_enabled()
    # an all-off session: collect the scenarios' simulators for the
    # record's kernel-metrics section without touching instrumentation
    # (run_chaos_scenario attaches its own telemetry)
    session = ObservationSession(trace=False)
    scenarios: List[Dict[str, Any]] = []
    import time as _time

    t0 = _time.perf_counter()
    with session:
        for i in range(rounds):
            for key in keys:
                scenarios.append(
                    run_chaos_scenario(key, seed=seed + i,
                                       telemetry=telemetry,
                                       engine=engine,
                                       adaptive=adaptive))
    doc = {
        "schema": CHAOS_SCHEMA,
        "experiment": experiment,
        "seed": seed,
        "rounds": rounds,
        "architectures": keys,
        "scenarios": scenarios,
        "survived": all(s["survived"] for s in scenarios),
    }
    if adaptive:
        doc["adaptive"] = True
        doc["slo_burn_cycles"] = sum(s["slo_burn_cycles"]
                                     for s in scenarios)
        doc["static_slo_burn_cycles"] = sum(
            s["static_slo_burn_cycles"] for s in scenarios)
        doc["burn_improved"] = (doc["slo_burn_cycles"]
                                <= doc["static_slo_burn_cycles"])
        doc["actions"] = sum(len(s["control"]["actions"])
                             for s in scenarios)
    if ledgered:
        record = build_run_record(
            "chaos", experiment,
            config={"rounds": rounds, "telemetry": telemetry,
                    "adaptive": adaptive},
            seed=seed, engine=engine, stats=doc,
            sims=session.sims,
            resilience=_resilience_summary(scenarios),
            wall_seconds=_time.perf_counter() - t0)
        doc["run_id"] = RunLedger().store(record)
    return doc


_SCENARIO_KEYS = ("arch", "target", "seed", "survived", "metrics")

_METRIC_KEYS = ("faults_injected", "faults_recovered", "messages_sent",
                "messages_delivered", "messages_dropped",
                "messages_undelivered", "messages_retransmitted",
                "mttr_max", "detection_max", "availability")


def validate_chaos(doc: Dict[str, Any]) -> int:
    """Structural check of a ``repro.chaos/1`` document (the CI smoke
    job runs this on the CLI's ``--json`` output); returns the number
    of scenarios."""
    if doc.get("schema") != CHAOS_SCHEMA:
        raise ValueError(f"schema is {doc.get('schema')!r}, "
                         f"expected {CHAOS_SCHEMA!r}")
    scenarios = doc.get("scenarios")
    if not scenarios:
        raise ValueError("document has no scenarios")
    if not doc.get("architectures"):
        raise ValueError("document lists no architectures")
    for s in scenarios:
        missing = [k for k in _SCENARIO_KEYS if k not in s]
        if missing:
            raise ValueError(f"scenario {s.get('arch')!r} is missing "
                             f"{', '.join(missing)}")
        gone = [k for k in _METRIC_KEYS if k not in s["metrics"]]
        if gone:
            raise ValueError(f"scenario {s['arch']!r} metrics missing "
                             f"{', '.join(gone)}")
    if "survived" not in doc:
        raise ValueError("document has no overall survived verdict")
    return len(scenarios)


def render_chaos(doc: Dict[str, Any]) -> str:
    """Human-readable table of a chaos document."""
    lines = [
        f"chaos sweep  : {doc['experiment']} "
        f"(seed {doc['seed']}, {doc['rounds']} round(s))",
        "",
        f"{'arch':<11}{'target':<10}{'sent':>6}{'dlvd':>6}{'drop':>6}"
        f"{'rtx':>5}{'undlv':>7}{'mttr':>7}{'avail':>8}  verdict",
    ]
    for s in doc["scenarios"]:
        m = s["metrics"]
        mttr = m["mttr_max"] if m["mttr_max"] is not None else "-"
        lines.append(
            f"{s['arch']:<11}{s['target']:<10}"
            f"{m['messages_sent']:>6}{m['messages_delivered']:>6}"
            f"{m['messages_dropped']:>6}{m['messages_retransmitted']:>5}"
            f"{m['messages_undelivered']:>7}{mttr!s:>7}"
            f"{m['availability']:>8.4f}  "
            f"{'survived' if s['survived'] else 'FAILED'}"
        )
        for alert in s.get("alerts", []):
            lines.append(f"{'':<11}  alert: {alert['rule']} "
                         f"({alert['severity']}) {alert['message']}")
        if "control" in s:
            lines.append(
                f"{'':<11}  control: "
                f"burn {s['slo_burn_cycles']} vs static "
                f"{s['static_slo_burn_cycles']}, "
                f"actions {dict(s['control']['counts']) or 'none'}")
    lines.append("")
    lines.append("verdict      : "
                 + ("all scenarios survived" if doc["survived"]
                    else "SOME SCENARIOS FAILED"))
    return "\n".join(lines)
