"""Pareto-frontier analysis over sweep results.

The survey's §4 discussion is implicitly multi-objective: area against
latency against flexibility. This module extracts the Pareto frontier
from :mod:`~repro.analysis.sweeps` results so "which architecture
dominates where" becomes a computed statement instead of prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.sweeps import SweepPoint

#: objective extractor: point -> value where LOWER is better
Objective = Callable[[SweepPoint], float]

OBJECTIVES: Dict[str, Objective] = {
    "area": lambda p: float(p.area_slices),
    "latency": lambda p: p.mean_latency,
    "max_latency": lambda p: float(p.max_latency),
    "cycles": lambda p: float(p.total_cycles),
    # parallelism is better high; negate for the lower-is-better frame
    "neg_dmax": lambda p: -float(p.observed_dmax),
}


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """a dominates b: no worse anywhere, strictly better somewhere."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


@dataclass(frozen=True)
class FrontierEntry:
    point: SweepPoint
    objectives: Tuple[float, ...]


def pareto_frontier(points: Sequence[SweepPoint],
                    objectives: Sequence[str] = ("area", "latency"),
                    ) -> List[FrontierEntry]:
    """Non-dominated points under the named objectives (lower=better)."""
    for name in objectives:
        if name not in OBJECTIVES:
            raise KeyError(
                f"unknown objective {name!r}; known: {sorted(OBJECTIVES)}"
            )
    extractors = [OBJECTIVES[name] for name in objectives]
    scored = [
        FrontierEntry(p, tuple(f(p) for f in extractors)) for p in points
    ]
    frontier = [
        entry for entry in scored
        if not any(
            dominates(other.objectives, entry.objectives)
            for other in scored
            if other is not entry
        )
    ]
    # stable presentation: sort by the first objective
    return sorted(frontier, key=lambda e: e.objectives)


def dominated_by(points: Sequence[SweepPoint],
                 objectives: Sequence[str] = ("area", "latency"),
                 ) -> Dict[str, List[str]]:
    """For each architecture on the frontier, which architectures it
    dominates (by arch name of the points involved)."""
    frontier = pareto_frontier(points, objectives)
    frontier_set = {id(e.point) for e in frontier}
    extractors = [OBJECTIVES[name] for name in objectives]
    out: Dict[str, List[str]] = {}
    for entry in frontier:
        losers = [
            p.params["arch"]
            for p in points
            if id(p) not in frontier_set
            and dominates(entry.objectives,
                          tuple(f(p) for f in extractors))
        ]
        out[entry.point.params["arch"]] = sorted(set(losers))
    return out


def render_frontier(entries: Sequence[FrontierEntry],
                    objectives: Sequence[str]) -> str:
    from repro.core.report import format_table

    headers = ["arch"] + [
        k for k in entries[0].point.params if k != "arch"
    ] + list(objectives)
    rows = []
    for e in entries:
        params = e.point.params
        rows.append(
            [params["arch"]]
            + [params[k] for k in params if k != "arch"]
            + [round(v, 1) for v in e.objectives]
        )
    return format_table(headers, rows,
                        title="Pareto frontier (lower is better)")
