"""Energy accounting over finished simulations (experiment E8).

Converts the word-traversal counters each architecture maintains into
picojoules through :class:`~repro.fabric.power.EnergyModel`, with the
geometric lengths the paper's §2.2 argument rests on: a BUS-COM frame
drives the full unsegmented bus, an RMBoC word crosses only its
reserved segments, a NoC word hops over short local links.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.base import CommArchitecture
from repro.fabric.power import EnergyModel


@dataclass(frozen=True)
class InterconnectGeometry:
    """Geometric lengths (in CLBs) for the energy conversion.

    Defaults model the paper's 4-slot XC2V6000 floorplan: 88 CLB
    columns split into 4 slots of 22; NoC tiles/PEs of 4x4 CLBs give
    ~4-CLB links, CoNoChi wire tiles add 4 CLBs each.
    """

    bus_length_clbs: float = 88.0
    rmboc_segment_clbs: float = 22.0
    noc_link_clbs: float = 4.0
    conochi_tile_clbs: float = 4.0

    def __post_init__(self) -> None:
        for f in ("bus_length_clbs", "rmboc_segment_clbs",
                  "noc_link_clbs", "conochi_tile_clbs"):
            if getattr(self, f) <= 0:
                raise ValueError(f"{f} must be positive")


@dataclass
class EnergyReport:
    arch_key: str
    total_pj: float
    delivered_payload_bytes: int

    @property
    def pj_per_payload_byte(self) -> float:
        if self.delivered_payload_bytes == 0:
            return float("nan")
        return self.total_pj / self.delivered_payload_bytes


def measure_energy(
    arch: CommArchitecture,
    model: EnergyModel = EnergyModel(),
    geometry: InterconnectGeometry = InterconnectGeometry(),
) -> EnergyReport:
    """Energy consumed by all traffic the architecture has carried."""
    stats = arch.sim.stats
    width = arch.width
    total = 0.0

    if arch.KEY == "rmboc":
        seg_words = stats.counter("rmboc.word_segments").value
        xp_words = stats.counter("rmboc.word_crosspoints").value
        total += model.wire_pj(seg_words * width, geometry.rmboc_segment_clbs)
        total += xp_words * width * model.crosspoint_pj_per_bit
    elif arch.KEY == "buscom":
        frame_words = stats.counter("buscom.frame_words").value
        total += model.bus_broadcast_pj(frame_words * width,
                                        geometry.bus_length_clbs)
    elif arch.KEY == "dynoc":
        hop_words = stats.counter("dynoc.word_hops").value
        total += model.noc_hop_pj(hop_words * width, geometry.noc_link_clbs)
    elif arch.KEY == "conochi":
        hop_words = stats.counter("conochi.word_hops").value
        wire_words = stats.counter("conochi.word_wire_tiles").value
        total += hop_words * width * model.switch_pj_per_bit
        total += model.wire_pj(wire_words * width, geometry.conochi_tile_clbs)
    else:
        raise KeyError(f"unknown architecture {arch.KEY!r}")

    return EnergyReport(
        arch_key=arch.KEY,
        total_pj=total,
        delivered_payload_bytes=stats.counter("delivered.bytes").value,
    )
