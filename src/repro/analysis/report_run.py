"""Full-run markdown report: every table, figure and fast experiment in
one document (``repro report``).

The heavy sweeps (E6/E7) are included only with ``full=True``; the
default report runs in a few seconds and is suitable for CI artifacts.
"""

from __future__ import annotations

import io


def _section(buf: io.StringIO, title: str) -> None:
    buf.write(f"\n## {title}\n\n")


def _code(buf: io.StringIO, text: str) -> None:
    buf.write("```\n")
    buf.write(text.rstrip("\n"))
    buf.write("\n```\n")


def generate_report(full: bool = False, width: int = 32) -> str:
    """Build the markdown report; pure function of the models."""
    from repro.analysis import experiments as E
    from repro.analysis.render import (
        render_buscom_figure,
        render_conochi_figure,
        render_dynoc_figure,
        render_rmboc_figure,
    )
    from repro.arch import build_architecture
    from repro.core import tables
    from repro.core.report import (
        render_table1,
        render_table2,
        render_table3,
        render_table4,
    )

    buf = io.StringIO()
    buf.write("# repro run report\n")
    buf.write(
        "\nRegenerated artifacts of Pionteck et al., IPPS 2007 "
        "(see EXPERIMENTS.md for the paper-vs-measured ledger).\n"
    )

    _section(buf, "Tables 1-4")
    _code(buf, render_table1(tables.table1()))
    buf.write("\n")
    _code(buf, render_table2(tables.table2(width=width)))
    buf.write("\n")
    _code(buf, render_table3(tables.table3(width=width)))
    buf.write("\n")
    _code(buf, render_table4(tables.table4()))

    _section(buf, "Figures 1-4")
    _code(buf, render_rmboc_figure(build_architecture("rmboc")))
    buf.write("\n")
    _code(buf, render_buscom_figure(build_architecture("buscom")))
    buf.write("\n")
    _code(buf, render_dynoc_figure(build_architecture("dynoc")))
    buf.write("\n")
    _code(buf, render_conochi_figure(build_architecture("conochi")))

    _section(buf, "E1 — RMBoC setup latency")
    e1 = E.e1_rmboc_setup()
    buf.write("| distance | measured | model 2d+6 |\n|---|---|---|\n")
    for dist, measured, model in e1.rows:
        buf.write(f"| {dist} | {measured} | {model} |\n")
    buf.write(f"\nminimum {e1.min_setup} (paper: 8); "
              f"bound {e1.upper_bound} (2m+4).\n")

    _section(buf, "E3 — effective bandwidth")
    e3 = E.e3_effective_bandwidth(width=width)
    buf.write("| architecture | efficiency |\n|---|---|\n")
    for arch, eff in e3.rows.items():
        buf.write(f"| {arch} | {eff:.3f} |\n")

    _section(buf, "E5 — area scaling")
    e5 = E.e5_area_scaling(width=width)
    buf.write("| side | DyNoC slices | CoNoChi slices |\n|---|---|---|\n")
    for (side, d), (_, c) in zip(e5.dynoc_by_size, e5.conochi_by_size):
        buf.write(f"| {side}x{side} | {d} | {c} |\n")

    _section(buf, "E8 — energy per byte (extension)")
    e8 = E.e8_energy(width=width)
    buf.write("| architecture | pJ/payload-byte |\n|---|---|\n")
    for arch, pj in sorted(e8.rows.items(), key=lambda kv: kv[1]):
        buf.write(f"| {arch} | {pj:.1f} |\n")

    _section(buf, "E10 — reconfigurability tax (extension)")
    e10 = E.e10_reconfigurability_tax(width=width)
    buf.write("| architecture | baseline | area | clock | latency |\n"
              "|---|---|---|---|---|\n")
    for arch, row in e10.rows.items():
        buf.write(f"| {arch} | {row['baseline']} | "
                  f"x{row['area_tax']:.2f} | x{row['clock_tax']:.2f} | "
                  f"x{row['latency_tax']:.2f} |\n")

    if full:
        _section(buf, "E2 — parallelism")
        e2 = E.e2_parallelism(width=width)
        buf.write("| architecture | observed | theoretical |\n|---|---|---|\n")
        for arch, (obs, theo) in e2.rows.items():
            buf.write(f"| {arch} | {obs} | {theo} |\n")

        _section(buf, "E4 — latency vs module size")
        e4 = E.e4_latency_scaling(width=width)
        buf.write("| side | DyNoC hops | DyNoC latency | CoNoChi latency |\n"
                  "|---|---|---|---|\n")
        for (side, hops, lat), (_, clat) in zip(e4.dynoc_rows,
                                                e4.conochi_rows):
            buf.write(f"| {side}x{side} | {hops} | {lat} | {clat} |\n")

        _section(buf, "E9 — latency decomposition (extension)")
        e9 = E.e9_latency_decomposition(width=width)
        buf.write("| architecture | queueing | transport |\n|---|---|---|\n")
        for arch, (q, t) in e9.rows.items():
            buf.write(f"| {arch} | {q:.1f} | {t:.1f} |\n")

    return buf.getvalue()
