"""JSON export of experiment results.

Every experiment result object is a plain dataclass; :func:`to_jsonable`
turns them (and anything nested inside) into JSON-serializable
structures so runs can be archived and diffed — `repro experiment e1
--json` uses this.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import math
from typing import Any

import numpy as np


def to_jsonable(obj: Any) -> Any:
    """Recursively convert dataclasses/enums/numpy/tuples for JSON.

    Non-finite floats become strings ("nan"/"inf") because JSON has no
    representation for them and silent nulls hide measurement gaps.
    Dict keys that are not primitives are stringified.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.name
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return to_jsonable(float(obj))
    if isinstance(obj, np.ndarray):
        return [to_jsonable(v) for v in obj.tolist()]
    if isinstance(obj, float):
        if math.isnan(obj):
            return "nan"
        if math.isinf(obj):
            return "inf" if obj > 0 else "-inf"
        return obj
    if isinstance(obj, dict):
        return {
            k if isinstance(k, str) else str(k): to_jsonable(v)
            for k, v in obj.items()
        }
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    return str(obj)


def dumps(obj: Any, **kwargs: Any) -> str:
    """JSON-encode any experiment result."""
    kwargs.setdefault("indent", 2)
    kwargs.setdefault("sort_keys", True)
    return json.dumps(to_jsonable(obj), **kwargs)
