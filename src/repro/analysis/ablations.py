"""Ablation studies over the design choices the survey discusses.

Each sweep isolates one architectural knob and measures its effect with
everything else held fixed:

* **A1** RMBoC bus count k — the resource behind d_max = s·k and behind
  blocked-request CANCELs;
* **A2** BUS-COM static/dynamic split — guaranteed bandwidth vs
  on-demand arbitration (the FlexRay trade-off);
* **A3** CoNoChi table-update latency — the cost knob of its
  reconfiguration support;
* **A4** DyNoC router pipeline depth — the per-hop latency the survey
  could not cite;
* **A5** BUS-COM adaptive arbitration on/off — the source paper's
  application-dependent adaptivity, quantified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arch import build_architecture
from repro.arch.buscom import AdaptiveArbiter, build_buscom
from repro.sim import make_rng
from repro.traffic.generators import PeriodicStream, RandomTraffic
from repro.traffic.patterns import uniform_chooser


@dataclass
class AblationSeries:
    """One knob's sweep: (knob value, metric) points, lower = better."""

    name: str
    metric: str
    points: List[Tuple[float, float]]

    def monotone_decreasing(self) -> bool:
        vals = [v for _, v in self.points]
        return all(a >= b for a, b in zip(vals, vals[1:]))

    def best(self) -> Tuple[float, float]:
        return min(self.points, key=lambda p: p[1])


# ----------------------------------------------------------------------
def a1_rmboc_bus_count(ks: Tuple[int, ...] = (1, 2, 3, 4),
                       payload_bytes: int = 512) -> Dict[str, AblationSeries]:
    """More buses -> fewer CANCELs and faster completion under a
    contended all-pairs burst."""
    completion: List[Tuple[float, float]] = []
    cancels: List[Tuple[float, float]] = []
    for k in ks:
        arch = build_architecture("rmboc", num_buses=k)
        for i in range(4):
            for j in range(4):
                if i != j:
                    arch.ports[f"m{i}"].send(f"m{j}", payload_bytes)
        end = arch.run_to_completion(max_cycles=500_000)
        completion.append((k, float(end)))
        cancels.append(
            (k, float(arch.sim.stats.counter("rmboc.cancel.blocked").value))
        )
    return {
        "completion": AblationSeries("a1", "completion cycles", completion),
        "cancels": AblationSeries("a1", "blocked-request cancels", cancels),
    }


def a2_buscom_static_split(
    splits: Tuple[int, ...] = (0, 8, 16, 24, 32),
    horizon: int = 8000,
    seed: int = 3,
) -> Dict[str, AblationSeries]:
    """The FlexRay trade-off: static slots *guarantee* low-priority
    periodic traffic a bounded latency even while higher-priority
    modules flood the dynamic segment; an all-dynamic schedule starves
    the lowest-priority sender, an all-static one slows the bursts.

    The metric pair is the worst latency of the lowest-priority
    module's control stream vs the mean burst latency.
    """
    periodic_worst: List[Tuple[float, float]] = []
    bursty_mean: List[Tuple[float, float]] = []
    for static in splits:
        arch = build_buscom(static_slots=static)
        sim = arch.sim
        # m3 has the lowest dynamic-segment priority: its control
        # stream only survives contention if static slots back it.
        victim = PeriodicStream("ctl3", arch.ports["m3"], "m0",
                                period=64, payload_bytes=8, stop=horizon)
        sim.add(victim)
        bursts = []
        for src in ("m0", "m1"):
            bursts.append(RandomTraffic(
                f"burst.{src}", arch.ports[src],
                uniform_chooser(src, list(arch.modules),
                                make_rng(seed, src, "c")),
                make_rng(seed, src, "r"), rate=0.08,
                payload_bytes=256, stop=horizon))
        sim.add_all(bursts)
        sim.run(horizon)
        sim.run_until(lambda s: arch.log.all_delivered() and arch.idle(),
                      max_cycles=100 * horizon)
        periodic_worst.append((static, float(max(victim.latencies()))))
        blats = [l for b in bursts for l in b.latencies()]
        bursty_mean.append((static, sum(blats) / len(blats)))
    return {
        "periodic_worst": AblationSeries("a2", "worst victim-control latency",
                                         periodic_worst),
        "bursty_mean": AblationSeries("a2", "mean burst latency",
                                      bursty_mean),
    }


def a3_conochi_table_update_latency(
    latencies: Tuple[int, ...] = (1, 16, 64, 256),
    horizon: int = 4000,
) -> AblationSeries:
    """Slower control-unit table updates delay when a migrated module's
    shorter route takes effect (traffic keeps flowing either way)."""
    points: List[Tuple[float, float]] = []
    for tul in latencies:
        arch = build_architecture("conochi", table_update_latency=tul)
        sim = arch.sim
        stream = PeriodicStream("s", arch.ports["m0"], "m3",
                                period=40, payload_bytes=64, stop=horizon)
        sim.add(stream)
        sim.run(500)
        arch.migrate_module("m3", (2, 1))  # two hops closer to m0
        sim.run(horizon - 500)
        sim.run_until(lambda s: stream.all_delivered() and arch.idle(),
                      max_cycles=50 * horizon)
        post = [m.latency for m in stream.sent
                if m.delivered and m.created_cycle >= 500]
        points.append((tul, sum(post) / len(post)))
    return AblationSeries("a3", "mean latency after migration", points)


def a4_dynoc_router_latency(
    depths: Tuple[int, ...] = (1, 2, 3, 5, 8),
    payload_bytes: int = 16,
) -> AblationSeries:
    """Per-hop pipeline depth translates linearly into path latency —
    quantifying the figure the survey could not cite for DyNoC."""
    points: List[Tuple[float, float]] = []
    for depth in depths:
        arch = build_architecture("dynoc", num_modules=4, mesh=(4, 1),
                                  router_latency=depth)
        msg = arch.ports["m0"].send("m3", payload_bytes)
        arch.run_to_completion()
        points.append((depth, float(msg.latency)))
    return AblationSeries("a4", "m0->m3 latency (3 hops)", points)


def a5_buscom_adaptivity(horizon: int = 12_000) -> Dict[str, float]:
    """Hot-stream latency with and without the adaptive arbiter."""
    def run(adaptive: bool) -> float:
        arch = build_buscom()
        sim = arch.sim
        if adaptive:
            sim.add(AdaptiveArbiter("ctl", arch, epoch_cycles=1024))
        sim.add(PeriodicStream("hot", arch.ports["m0"], "m1",
                               period=25, payload_bytes=72, stop=horizon))
        sim.run(horizon)
        sim.run_until(lambda s: arch.log.all_delivered() and arch.idle(),
                      max_cycles=40 * horizon)
        lats = [m.latency for m in arch.log.delivered()
                if m.created_cycle > 4096]
        return sum(lats) / len(lats)

    return {"static": run(False), "adaptive": run(True)}


def a6_dynoc_switching_mode(
    payload_bytes: Tuple[int, ...] = (4, 64, 256),
) -> Dict[str, AblationSeries]:
    """Virtual cut-through vs store-and-forward on a 3-hop path: SAF
    pays the serialization per hop, VCT only once — the reason every
    surveyed NoC cut through."""
    out: Dict[str, AblationSeries] = {}
    for mode in ("vct", "saf"):
        points: List[Tuple[float, float]] = []
        for payload in payload_bytes:
            arch = build_architecture("dynoc", num_modules=4,
                                      mesh=(4, 1), switching=mode)
            msg = arch.ports["m0"].send("m3", payload)
            arch.run_to_completion()
            points.append((payload, float(msg.latency)))
        out[mode] = AblationSeries("a6", f"{mode} 3-hop latency", points)
    return out


def a7_rmboc_fairness(
    backoffs: Tuple[int, ...] = (2, 8, 32, 128),
    horizon: int = 4_000,
) -> Dict[str, AblationSeries]:
    """Retry backoff under single-bus saturation: what does waiting buy?

    Four crossing pairs contend for the middle segment with periodic
    512-byte transfers. Measured outcome: fairness at the horizon is
    *structural* (who sits nearer the hot segment), essentially
    independent of the backoff, while mean latency grows monotonically
    with it — so RMBoC systems should keep the retry backoff small and
    address fairness at the application level, exactly the discipline
    the paper's protocol note assumes.
    """
    from repro.core.metrics import jain_fairness
    from repro.traffic.generators import PeriodicStream

    fairness: List[Tuple[float, float]] = []
    mean_latency: List[Tuple[float, float]] = []
    pairs = [("m0", "m2"), ("m1", "m3"), ("m2", "m0"), ("m3", "m1")]
    for backoff in backoffs:
        arch = build_architecture("rmboc", num_buses=1,
                                  retry_backoff=backoff)
        sim = arch.sim
        sim.add_all([
            PeriodicStream(f"s{i}", arch.ports[src], dst, period=300,
                           payload_bytes=512, stop=horizon)
            for i, (src, dst) in enumerate(pairs)
        ])
        sim.run(horizon)
        arch.run_to_completion(max_cycles=200 * horizon)
        per_pair = [
            sum(m.payload_bytes for m in arch.log.delivered()
                if m.src == src and m.dst == dst
                and m.delivered_cycle <= horizon)
            for src, dst in pairs
        ]
        lats = arch.log.latencies()
        fairness.append((backoff, jain_fairness(per_pair)))
        mean_latency.append((backoff, sum(lats) / len(lats)))
    return {
        "fairness": AblationSeries("a7", "Jain index @ horizon", fairness),
        "mean_latency": AblationSeries("a7", "mean latency", mean_latency),
    }
