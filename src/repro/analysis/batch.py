"""Fleet-scale batched seed sweeps.

Monte-Carlo confidence runs pump the *same* scenario through thousands
of seeds.  Spawning a process per seed (the :mod:`repro.analysis.parallel`
pattern) pays interpreter start-up, import and pickling costs per seed,
which dwarfs the actual simulation once the vec engine has collapsed
the busy path.  :func:`run_seed_fleet` instead packs the whole fleet
into one batched program, seed-major: every seed's simulation runs to
completion in one process, with the SoA backend's compiled ticks doing
the heavy lifting.  :func:`run_seed_fleet_pool` is the process-pool
comparator (one worker task per seed) used by the busy-path benchmark.

Each seed is an independent, fully deterministic simulation — results
depend only on ``(arch, seed, workload)``, never on engine choice or
how the fleet is grouped, so ``run_seed_fleet(arch, seeds)`` equals the
concatenation of single-seed fleets (asserted by
``tests/analysis/test_batch.py``).
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.arch import build_architecture

#: default per-seed workload: bursts of randomly-paired messages with a
#: drain gap between bursts — the busy-then-quiescent shape the vec
#: engine's stretch batching is built for
DEFAULT_BURSTS = 6
DEFAULT_BURST_SIZE = 40
DEFAULT_BURST_GAP = 1_500
DEFAULT_PAYLOADS = (64, 256, 1024)
DEFAULT_CYCLES = 12_000

#: fleets up to this many seeds also ledger one ``repro.run/1`` record
#: per seed (with full telemetry/journey sections); larger fleets keep
#: only the fleet-level summary record — per-seed instrumentation on a
#: thousand-seed Monte-Carlo run would swamp the ledger
PER_SEED_LEDGER_MAX = 32


@dataclass
class SeedResult:
    """Measurements of one seed's run (engine-independent)."""

    seed: int
    sent: int
    delivered: int
    mean_latency: float
    max_latency: int

    def key(self) -> Tuple[int, int, int, float, int]:
        return (self.seed, self.sent, self.delivered,
                self.mean_latency, self.max_latency)


@dataclass
class FleetResult:
    """A whole fleet's per-seed results plus wall-clock accounting."""

    arch: str
    engine: Optional[str]
    results: List[SeedResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: ledger id of the fleet-level ``repro.run/1`` record (None when
    #: the ledger is disabled or the fleet was run unledgered)
    run_id: Optional[str] = None
    #: ledger ids of the per-seed records, in seed order (empty for
    #: fleets larger than :data:`PER_SEED_LEDGER_MAX`)
    seed_run_ids: List[str] = field(default_factory=list)

    @property
    def seeds(self) -> List[int]:
        return [r.seed for r in self.results]

    @property
    def delivered_total(self) -> int:
        return sum(r.delivered for r in self.results)

    def summary(self) -> Dict[str, Any]:
        n = len(self.results)
        return {
            "arch": self.arch,
            "engine": self.engine,
            "seeds": n,
            "delivered_total": self.delivered_total,
            "mean_latency": (
                sum(r.mean_latency * r.delivered for r in self.results)
                / max(1, self.delivered_total)
            ),
            "wall_seconds": self.wall_seconds,
            "seeds_per_second": n / self.wall_seconds
            if self.wall_seconds else float("inf"),
        }


def run_seed(
    arch_key: str,
    seed: int,
    engine: Optional[str] = None,
    num_modules: int = 4,
    cycles: int = DEFAULT_CYCLES,
    bursts: int = DEFAULT_BURSTS,
    burst_size: int = DEFAULT_BURST_SIZE,
    burst_gap: int = DEFAULT_BURST_GAP,
    payloads: Sequence[int] = DEFAULT_PAYLOADS,
    **build_kwargs: Any,
) -> SeedResult:
    """One seed of the canonical fleet workload.

    The workload injects ``bursts`` bursts of ``burst_size`` messages
    between random module pairs (seeded), separated by ``burst_gap``
    drain cycles, then runs for ``cycles`` cycles.  Deterministic in
    ``(arch_key, seed, config)`` and bit-identical across engines.
    """
    arch = build_architecture(arch_key, num_modules=num_modules,
                              engine=engine, **build_kwargs)
    sim = arch.sim
    ports = arch.ports
    mods = list(ports)
    rng = random.Random(seed)
    payloads = list(payloads)
    for b in range(bursts):
        base = 1 + b * burst_gap
        for _ in range(burst_size):
            at = base + rng.randrange(0, 40)
            src, dst = rng.sample(mods, 2)
            pb = rng.choice(payloads)
            sim.at(at, lambda _s, s=src, d=dst, p=pb: ports[s].send(d, p))
    sim.run(cycles)
    delivered = arch.log.delivered()
    latencies = [m.latency for m in delivered]
    return SeedResult(
        seed=seed,
        sent=arch.log.total,
        delivered=len(delivered),
        mean_latency=(sum(latencies) / len(latencies)) if latencies else 0.0,
        max_latency=max(latencies) if latencies else 0,
    )


def _seed_spread(results: Sequence[SeedResult]) -> Dict[str, Any]:
    """Across-seed dispersion per metric — the noise floor
    ``repro diff`` uses when comparing runs of this configuration."""
    metrics = {
        "sent": [float(r.sent) for r in results],
        "delivered": [float(r.delivered) for r in results],
        "mean_latency": [r.mean_latency for r in results],
        "max_latency": [float(r.max_latency) for r in results],
    }
    out: Dict[str, Any] = {}
    for name, values in metrics.items():
        n = len(values)
        mean = sum(values) / n if n else 0.0
        var = (sum((v - mean) ** 2 for v in values) / n) if n else 0.0
        out[name] = {
            "count": n,
            "mean": mean,
            "std": var ** 0.5,
            "min": min(values) if values else 0.0,
            "max": max(values) if values else 0.0,
        }
    return out


def run_seed_fleet(
    arch_key: str,
    seeds: Sequence[int],
    engine: Optional[str] = "vec",
    ledger: bool = True,
    **workload: Any,
) -> FleetResult:
    """The batched fleet: every seed simulated in this process,
    seed-major (seed *i* runs to completion before seed *i+1* starts),
    with the chosen engine — ``"vec"`` by default, where the compiled
    ticks amortize the fleet's busy path.

    Ledgering (opt out with ``ledger=False`` or ``REPRO_LEDGER=0``):
    fleets up to :data:`PER_SEED_LEDGER_MAX` seeds persist one fully
    instrumented ``repro.run/1`` record per seed, and every fleet
    persists a fleet-level summary record aggregating the per-seed
    stats with their across-seed spread (``seed_stats``) and the
    per-seed run ids (``seed_run_ids``) — see
    :attr:`FleetResult.run_id`.
    """
    from repro.obs.ledger import (RunLedger, build_run_record,
                                  ledger_enabled, ledgered_call)

    seeds = list(seeds)
    ledgered = ledger and ledger_enabled()
    per_seed = ledgered and len(seeds) <= PER_SEED_LEDGER_MAX
    fleet = FleetResult(arch=arch_key, engine=engine)
    t0 = time.perf_counter()
    for seed in seeds:
        if per_seed:
            result, rid = ledgered_call(
                lambda s=seed: run_seed(arch_key, s, engine=engine,
                                        **workload),
                kind="seed", name=arch_key, config=dict(workload),
                seed=seed, engine=engine)
            fleet.seed_run_ids.append(rid)
        else:
            result = run_seed(arch_key, seed, engine=engine, **workload)
        fleet.results.append(result)
    fleet.wall_seconds = time.perf_counter() - t0
    if ledgered:
        record = build_run_record(
            "fleet", arch_key,
            config={**workload, "seeds": seeds},
            seed=seeds[0] if len(seeds) == 1 else None,
            engine=engine,
            stats={
                "arch": arch_key,
                "engine": engine,
                "seeds": len(seeds),
                "delivered_total": fleet.delivered_total,
                "mean_latency": fleet.summary()["mean_latency"],
                "per_seed": [{
                    "seed": r.seed,
                    "sent": r.sent,
                    "delivered": r.delivered,
                    "mean_latency": r.mean_latency,
                    "max_latency": r.max_latency,
                } for r in fleet.results],
            },
            seed_stats=_seed_spread(fleet.results),
            seed_run_ids=fleet.seed_run_ids or None,
            wall_seconds=fleet.wall_seconds)
        fleet.run_id = RunLedger().store(record)
    return fleet


def _pool_worker(packed: Tuple[str, int, Optional[str], Dict[str, Any]]
                 ) -> SeedResult:
    arch_key, seed, engine, workload = packed
    return run_seed(arch_key, seed, engine=engine, **workload)


def run_seed_fleet_pool(
    arch_key: str,
    seeds: Sequence[int],
    engine: Optional[str] = None,
    max_workers: Optional[int] = None,
    **workload: Any,
) -> FleetResult:
    """Process-pool comparator: one worker task per seed.  Exists so the
    busy-path benchmark can measure what the batched fleet saves; the
    per-seed results are identical to :func:`run_seed_fleet`."""
    fleet = FleetResult(arch=arch_key, engine=engine)
    packed = [(arch_key, seed, engine, dict(workload)) for seed in seeds]
    t0 = time.perf_counter()
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        fleet.results = list(pool.map(_pool_worker, packed,
                                      chunksize=max(1, len(seeds) // 64)))
    fleet.wall_seconds = time.perf_counter() - t0
    return fleet


def render_fleet(fleet: FleetResult) -> str:
    """One-paragraph human summary of a fleet run."""
    s = fleet.summary()
    return (
        f"{s['arch']}: {s['seeds']} seeds, engine "
        f"{s['engine'] or 'default'} — {s['delivered_total']} delivered, "
        f"mean latency {s['mean_latency']:.1f} cycles, "
        f"{s['wall_seconds']:.2f}s ({s['seeds_per_second']:.1f} seeds/s)"
    )
