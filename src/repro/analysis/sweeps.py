"""Generic parameter-sweep driver.

Runs the minimal scenario over a cartesian grid of architecture/config
parameters and collects the normalized metrics — the workhorse behind
``repro sweep`` and ad-hoc design-space exploration::

    grid = SweepGrid(arch=["buscom", "conochi"],
                     width=[8, 16, 32],
                     payload_bytes=[16, 256])
    results = run_sweep(grid)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Sequence

from repro.arch import build_architecture
from repro.core.scenario import minimal_scenario

#: keys consumed by the scenario rather than the architecture builder
_SCENARIO_KEYS = ("payload_bytes", "pattern", "repeats", "gap_cycles")


class SweepGrid:
    """A cartesian grid of named parameter values."""

    def __init__(self, **axes: Sequence[Any]):
        if "arch" not in axes:
            raise ValueError("a sweep needs an 'arch' axis")
        for name, values in axes.items():
            if not values:
                raise ValueError(f"axis {name!r} is empty")
        self.axes: Dict[str, List[Any]] = {
            name: list(values) for name, values in axes.items()
        }

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def points(self) -> Iterator[Dict[str, Any]]:
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            yield dict(zip(names, combo))


@dataclass
class SweepPoint:
    """One grid point's configuration and measurements."""

    params: Dict[str, Any]
    mean_latency: float
    max_latency: int
    total_cycles: int
    observed_dmax: int
    area_slices: int
    fmax_mhz: float

    def row(self, axis_names: Sequence[str]) -> List[Any]:
        return (
            [self.params[n] for n in axis_names]
            + [round(self.mean_latency, 1), self.max_latency,
               self.observed_dmax, self.area_slices,
               round(self.fmax_mhz)]
        )


def run_sweep(grid: SweepGrid, max_cycles: int = 1_000_000,
              engine: str = None) -> List[SweepPoint]:
    """Run the minimal scenario at every grid point.

    ``engine`` selects the simulation backend for every point
    (``"object"``/``"vec"``; None defers to ``REPRO_SIM_ENGINE``).
    Results are engine-independent — the vec backend is bit-identical.
    """
    out: List[SweepPoint] = []
    for params in grid.points():
        build_kwargs = {
            k: v for k, v in params.items()
            if k != "arch" and k not in _SCENARIO_KEYS
        }
        scenario_kwargs = {
            k: v for k, v in params.items() if k in _SCENARIO_KEYS
        }
        arch = build_architecture(params["arch"], engine=engine,
                                  **build_kwargs)
        result = minimal_scenario(arch, max_cycles=max_cycles,
                                  **scenario_kwargs)
        out.append(SweepPoint(
            params=params,
            mean_latency=result.mean_latency,
            max_latency=result.max_latency,
            total_cycles=result.total_cycles,
            observed_dmax=result.observed_dmax,
            area_slices=arch.area_slices(),
            fmax_mhz=arch.fmax_hz() / 1e6,
        ))
    return out


def render_sweep(grid: SweepGrid, points: List[SweepPoint]) -> str:
    """Tabulate sweep results."""
    from repro.core.report import format_table

    axis_names = list(grid.axes)
    headers = axis_names + ["mean lat", "max lat", "d_max", "slices",
                            "f_max MHz"]
    return format_table(headers, [p.row(axis_names) for p in points])
