"""repro.control — the SLO-driven closed-loop control plane.

PR 4 built the sensors (the declarative alert engine), PR 5 the
actuators (per-architecture recovery policies); this package closes
the loop: alerts drive runtime adaptation — slot re-planning, switch
insertion, module re-placement, lane re-allocation, arbiter
rebalancing — through a guarded actuation pipeline with preflight,
bounded retries, rollback, and a hard safety budget.

Entry points:

* :func:`attach_control` / :class:`ControlLoop` — wire a controller
  onto an architecture's telemetry;
* :func:`adaptive_rules` — the alert rule set adaptive runs watch;
* :func:`run_adapt` / ``repro adapt`` — adaptive-vs-static evaluation
  (same traffic, same faults, measured by SLO burn / MTTR /
  undelivered traffic);
* :func:`validate_control` — structural check of ``repro.control/1``
  action logs (used by the CI ``adaptive-smoke`` job).
"""

from repro.control.actions import (Action, ActionPolicy, adaptive_rules,
                                   make_action_policy,
                                   register_action_policy)
from repro.control.evaluate import (ADAPT_SCHEMA, render_adapt,
                                    run_adapt, run_adaptive_pair,
                                    validate_adapt, validate_control)
from repro.control.guards import ActuationGuard, GuardConfig
from repro.control.loop import (CONTROL_SCHEMA, ActionRecord,
                                ControlLoop, attach_control)

__all__ = [
    "Action",
    "ActionPolicy",
    "ActionRecord",
    "ActuationGuard",
    "ADAPT_SCHEMA",
    "CONTROL_SCHEMA",
    "ControlLoop",
    "GuardConfig",
    "adaptive_rules",
    "attach_control",
    "make_action_policy",
    "register_action_policy",
    "render_adapt",
    "run_adapt",
    "run_adaptive_pair",
    "validate_adapt",
    "validate_control",
]
