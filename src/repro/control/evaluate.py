"""Adaptive-vs-static evaluation: does closing the loop actually help?

``repro adapt <experiment>`` runs, for every architecture the
experiment exercises, one crafted *sustained-pressure* scenario twice
under identical traffic and identical alert rules: once **static**
(telemetry and alerts attached, nobody acting on them) and once
**adaptive** (a :class:`~repro.control.loop.ControlLoop` wired to the
alert stream).  Three outcome metrics decide the verdict, mirroring
the chaos harness's resilience vocabulary:

* **SLO burn** — total cycles any rule spent in a fired breach episode
  (:meth:`AlertEngine.total_burn`);
* **MTTR** — the longest fire-to-clear recovery among breach episodes,
  censored at the horizon when a breach never clears
  (:meth:`AlertEngine.episodes`);
* **undelivered traffic** — messages the scenario injected that never
  arrived.

A pair counts as *improved* only when the adaptive run burns strictly
fewer cycles, recovers strictly faster, and delivers no less traffic —
the controller must not buy latency with loss.  The scenarios are
deliberately winnable for the reconfigurable designs (a starved TDMA
dynamic segment, an RMBoC lane famine, a DyNoC detour wall) and
deliberately *not* for the static baselines: StaticMesh shares DyNoC's
re-placement policy but its welded-shut floorplan makes every apply
fail, so its action log honestly records infeasibility — which is the
paper's point about static architectures.

Every run is deterministic: traffic schedules are fixed functions of
the seed, the controller is RNG-free, and the emitted ``repro.adapt/1``
document is engine-independent (object vs vec).  It is *not*
invariant under ``REPRO_SIM_FASTPATH=0`` — the always-tick reference
scheduler gives the lazy alert evaluator more sampling points, which
can shift episode edges (the improved/regression verdicts stay
stable; see docs/adaptive.md).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.arch import build_architecture
from repro.control.actions import adaptive_rules
from repro.control.guards import GuardConfig
from repro.control.loop import (CONTROL_SCHEMA, FINAL_STATUSES,
                                ControlLoop)
from repro.fabric.geometry import Rect
from repro.sim import Simulator
from repro.sim.vec import make_simulator

__all__ = ["ADAPT_SCHEMA", "run_adaptive_pair", "run_adapt",
           "validate_control", "validate_adapt", "render_adapt"]

#: schema tag of the document :func:`run_adapt` emits
ADAPT_SCHEMA = "repro.adapt/1"

#: run horizon — long enough for every scenario's pressure phase plus
#: a recovery tail where cleared breaches actually show up as cleared
ADAPT_HORIZON = 20_000

#: guard tuned to the evaluation horizon: the improvement check waits
#: long enough for a trailing burn-rate window to drain after a fix
ADAPT_GUARD = GuardConfig(observe_window=4_096, cooldown=2_048)


# ----------------------------------------------------------------------
# scenarios: one sustained-pressure case per architecture.  Each builds
# the architecture on `sim`, schedules periodic traffic, and returns
# the arch.  Traffic must be *periodic* (not a one-shot burst) so the
# watched breach persists in the static run and can genuinely clear in
# the adaptive one.
# ----------------------------------------------------------------------
def _scenario_buscom(sim: Simulator, seed: int):
    """Starved dynamic segment: every static slot belongs to an idle
    module and the dynamic segment is too short for one payload byte,
    so the bulk sender's backlog can only move if the controller
    re-plans a slot."""
    from repro.arch.buscom.schedule import SlotTable

    table = SlotTable(1, 4)
    for s in range(3):
        table.set_static(0, s, "m1")  # slot 3 stays dynamic
    arch = build_architecture("buscom", num_modules=4, num_buses=1,
                              sim=sim, table=table,
                              slots_per_bus=4, static_slots=3,
                              dynamic_segment_cycles=2)
    ports = arch.ports
    start = 10 + seed % 17
    for i in range(28):
        sim.at(start + 400 * i,
               lambda s: ports["m0"].send("m2", 200, tag="adapt"))
    return arch


def _scenario_rmboc(sim: Simulator, seed: int):
    """Lane famine: a one-channel budget under all-to-all burst waves
    keeps every NI queue deep — the buses have spare lanes, but the
    per-module cap forbids using them until the controller raises it."""
    arch = build_architecture("rmboc", num_modules=4, sim=sim,
                              max_channels_per_module=1)
    ports = arch.ports
    mods = list(arch.modules)
    start = 10 + seed % 17
    # continuous, slightly past the one-channel throughput: the NI
    # backlog climbs without bound until the cap rises
    for w in range(240):
        at = start + 50 * w
        for src in mods:
            for dst in mods:
                if src != dst:
                    sim.at(at, lambda s, src=src, dst=dst:
                           ports[src].send(dst, 64, tag="adapt"))
    return arch


def _scenario_dynoc(sim: Simulator, seed: int):
    """A wall of logic between a chatty pair: every packet detours the
    long way round until the endpoint is re-placed beside its peer."""
    arch = build_architecture("dynoc", num_modules=0, mesh=(9, 7),
                              sim=sim)
    arch.attach("src", rect=Rect(0, 3, 1, 1))
    arch.attach("dst", rect=Rect(8, 3, 1, 1))
    arch.attach("wall", rect=Rect(4, 1, 3, 5))
    ports = arch.ports
    start = 10 + seed % 17
    for i in range(240):
        sim.at(start + 50 * i,
               lambda s: ports["src"].send("dst", 16, tag="adapt"))
    return arch


def _scenario_staticmesh(sim: Simulator, seed: int):
    """The same chatty-pair pressure on the welded-shut baseline: the
    shared DyNoC policy plans relocations, every apply fails."""
    arch = build_architecture("staticmesh", num_modules=9, sim=sim)
    ports = arch.ports
    mods = list(arch.modules)
    start = 10 + seed % 17
    for w in range(24):
        at = start + 300 * w
        for src in mods:
            for dst in mods:
                if src != dst:
                    sim.at(at, lambda s, src=src, dst=dst:
                           ports[src].send(dst, 64, tag="adapt"))
    return arch


def _scenario_conochi(sim: Simulator, seed: int):
    """Two modules crowded onto one switch of a four-switch chain:
    their combined bursts keep the fabric queue deep until a switch is
    inserted and one of them migrates off."""
    from repro.arch.conochi.arch import standard_grid

    arch = build_architecture("conochi", num_modules=0,
                              grid=standard_grid(4), sim=sim)
    arch.attach("m0", rect=Rect(1, 0, 1, 1), switch=(1, 1))
    arch.attach("m1", rect=Rect(1, 2, 1, 1), switch=(1, 1))
    arch.attach("m2", rect=Rect(3, 0, 1, 1), switch=(3, 1))
    arch.attach("m3", rect=Rect(4, 0, 1, 1), switch=(4, 1))
    ports = arch.ports
    start = 10 + seed % 17
    for w in range(40):
        at = start + 300 * w
        for src, dst in (("m0", "m2"), ("m1", "m3"),
                         ("m0", "m3"), ("m1", "m2")):
            for k in range(4):
                sim.at(at + k, lambda s, src=src, dst=dst:
                       ports[src].send(dst, 128, tag="adapt"))
    return arch


def _scenario_sharedbus(sim: Simulator, seed: int):
    """One heavy talker among light ones on the single bus: the
    arbiter queue stays deep at the bulk sender; rotating it to the
    scan head is the only knob the design offers."""
    arch = build_architecture("sharedbus", num_modules=4, sim=sim)
    ports = arch.ports
    mods = list(arch.modules)
    start = 10 + seed % 17
    for w in range(40):
        at = start + 300 * w
        for k in range(10):
            sim.at(at + k,
                   lambda s: ports["m0"].send("m2", 128, tag="adapt"))
        for src in mods[1:]:
            sim.at(at, lambda s, src=src:
                   ports[src].send("m0", 64, tag="adapt"))
    return arch


_SCENARIOS = {
    "buscom": _scenario_buscom,
    "rmboc": _scenario_rmboc,
    "dynoc": _scenario_dynoc,
    "staticmesh": _scenario_staticmesh,
    "conochi": _scenario_conochi,
    "sharedbus": _scenario_sharedbus,
}


# ----------------------------------------------------------------------
def _run_variant(key: str, seed: int, adaptive: bool,
                 engine: Optional[str],
                 guard: Optional[GuardConfig]) -> Dict[str, Any]:
    """One scenario run; static and adaptive differ only in whether a
    ControlLoop subscribes to the (identical) alert stream."""
    from repro.obs.alerts import AlertEngine
    from repro.obs.flows import FlowTelemetry

    mode = "adaptive" if adaptive else "static"
    sim = make_simulator(name=f"adapt-{key}-{mode}", engine=engine)
    tel = FlowTelemetry()
    tel.engine = AlertEngine(rules=adaptive_rules())
    tel.attach(sim)
    arch = _SCENARIOS[key](sim, seed)
    loop = None
    if adaptive:
        loop = ControlLoop(arch, tel=tel, guard=guard or ADAPT_GUARD)
    sim.run(ADAPT_HORIZON)
    tel.evaluate_now(sim.cycle)
    eng = tel.engine
    episodes = eng.episodes(sim.cycle)
    durations = [e["duration"] for e in episodes]
    sent = arch.log.total
    delivered = len(arch.log.delivered())
    out: Dict[str, Any] = {
        "mode": mode,
        "cycle": sim.cycle,
        "slo_burn_cycles": eng.total_burn(sim.cycle),
        "mttr_max": max(durations) if durations else None,
        "episodes": len(episodes),
        "episodes_open": sum(1 for e in episodes if e["open"]),
        "alerts_fired": len(eng.alerts),
        "alerts_cleared": len(eng.clears),
        "messages_sent": sent,
        "messages_delivered": delivered,
        "messages_undelivered": sent - delivered,
    }
    if loop is not None:
        out["control"] = loop.action_log(sim.cycle)
    return out


def _improved(static: Dict[str, Any],
              adaptive: Dict[str, Any]) -> bool:
    """Strict win: less burn, faster recovery, no traffic lost that
    the static run delivered."""
    s_mttr = static["mttr_max"] or 0
    a_mttr = adaptive["mttr_max"] or 0
    return (
        adaptive["slo_burn_cycles"] < static["slo_burn_cycles"]
        and a_mttr < s_mttr
        and (adaptive["messages_undelivered"]
             <= static["messages_undelivered"])
    )


def run_adaptive_pair(key: str, seed: int = 7,
                      engine: Optional[str] = None,
                      guard: Optional[GuardConfig] = None
                      ) -> Dict[str, Any]:
    """One architecture's scenario, static then adaptive, plus deltas."""
    if key not in _SCENARIOS:
        known = ", ".join(sorted(_SCENARIOS))
        raise KeyError(f"no adaptive scenario for {key!r} "
                       f"(known: {known})")
    static = _run_variant(key, seed, False, engine, guard)
    adaptive = _run_variant(key, seed, True, engine, guard)
    return {
        "arch": key,
        "seed": seed,
        "static": static,
        "adaptive": adaptive,
        "deltas": {
            "slo_burn_cycles": (adaptive["slo_burn_cycles"]
                                - static["slo_burn_cycles"]),
            "mttr_max": ((adaptive["mttr_max"] or 0)
                         - (static["mttr_max"] or 0)),
            "messages_undelivered": (
                adaptive["messages_undelivered"]
                - static["messages_undelivered"]),
        },
        "improved": _improved(static, adaptive),
    }


def run_adapt(experiment: str, seed: int = 7,
              engine: Optional[str] = None,
              ledger: bool = True) -> Dict[str, Any]:
    """The ``repro.adapt/1`` document: adaptive-vs-static pairs for
    every architecture the experiment exercises.

    Like the chaos sweep, the run persists a ``repro.run/1`` ledger
    record (opt out with ``ledger=False`` or ``REPRO_LEDGER=0``) whose
    id rides under ``run_id``.
    """
    import time as _time

    from repro.analysis.chaos import discover_arch_keys
    from repro.obs.ledger import (RunLedger, build_run_record,
                                  ledger_enabled)
    from repro.obs.session import ObservationSession

    keys = [k for k in discover_arch_keys(experiment)
            if k in _SCENARIOS]
    if not keys:
        raise RuntimeError(f"experiment {experiment!r} builds no "
                           f"architecture with an adaptive scenario")
    session = ObservationSession(trace=False)
    t0 = _time.perf_counter()
    pairs: List[Dict[str, Any]] = []
    with session:
        for key in keys:
            pairs.append(run_adaptive_pair(key, seed=seed,
                                           engine=engine))
    improved = [p["arch"] for p in pairs if p["improved"]]
    regressions = [p["arch"] for p in pairs
                   if p["deltas"]["messages_undelivered"] > 0
                   or p["deltas"]["slo_burn_cycles"] > 0]
    doc: Dict[str, Any] = {
        "schema": ADAPT_SCHEMA,
        "experiment": experiment,
        "seed": seed,
        "architectures": keys,
        "pairs": pairs,
        "improved": improved,
        "regressions": regressions,
    }
    if ledger and ledger_enabled():
        record = build_run_record(
            "adapt", experiment,
            config={"architectures": keys},
            seed=seed, engine=engine, stats=doc,
            sims=session.sims,
            wall_seconds=_time.perf_counter() - t0)
        doc["run_id"] = RunLedger().store(record)
    return doc


# ----------------------------------------------------------------------
# validation + rendering
# ----------------------------------------------------------------------
_ACTION_KEYS = ("aid", "rule", "kind", "target", "cycle", "status")

_VALID_STATUSES = FINAL_STATUSES + ("applied",)

_VARIANT_KEYS = ("mode", "slo_burn_cycles", "mttr_max",
                 "messages_sent", "messages_delivered",
                 "messages_undelivered")


def validate_control(doc: Dict[str, Any]) -> int:
    """Structural check of a ``repro.control/1`` action log (the CI
    ``adaptive-smoke`` job runs this); returns the action count."""
    if doc.get("schema") != CONTROL_SCHEMA:
        raise ValueError(f"schema is {doc.get('schema')!r}, "
                         f"expected {CONTROL_SCHEMA!r}")
    for field in ("arch", "cycle", "actions", "counts", "guard"):
        if field not in doc:
            raise ValueError(f"action log has no {field!r}")
    counts: Dict[str, int] = {}
    for a in doc["actions"]:
        missing = [k for k in _ACTION_KEYS if k not in a]
        if missing:
            raise ValueError(f"action {a.get('aid')!r} is missing "
                             f"{', '.join(missing)}")
        if a["status"] not in _VALID_STATUSES:
            raise ValueError(f"action {a['aid']!r} has unknown status "
                             f"{a['status']!r}")
        counts[a["status"]] = counts.get(a["status"], 0) + 1
    if counts != dict(doc["counts"]):
        raise ValueError(f"counts {doc['counts']!r} disagree with the "
                         f"actions list ({counts!r})")
    return len(doc["actions"])


def validate_adapt(doc: Dict[str, Any]) -> int:
    """Structural check of a ``repro.adapt/1`` document; returns the
    number of pairs."""
    if doc.get("schema") != ADAPT_SCHEMA:
        raise ValueError(f"schema is {doc.get('schema')!r}, "
                         f"expected {ADAPT_SCHEMA!r}")
    pairs = doc.get("pairs")
    if not pairs:
        raise ValueError("document has no pairs")
    for p in pairs:
        for field in ("arch", "static", "adaptive", "deltas",
                      "improved"):
            if field not in p:
                raise ValueError(f"pair {p.get('arch')!r} is missing "
                                 f"{field!r}")
        for variant in ("static", "adaptive"):
            gone = [k for k in _VARIANT_KEYS if k not in p[variant]]
            if gone:
                raise ValueError(f"pair {p['arch']!r} {variant} is "
                                 f"missing {', '.join(gone)}")
        validate_control(p["adaptive"]["control"])
        if "control" in p["static"]:
            raise ValueError(f"pair {p['arch']!r}: the static variant "
                             f"must not carry an action log")
    if "improved" not in doc:
        raise ValueError("document has no improved list")
    return len(pairs)


def render_adapt(doc: Dict[str, Any]) -> str:
    """Human-readable table of an adaptive-vs-static document."""
    lines = [
        f"adaptive sweep: {doc['experiment']} (seed {doc['seed']})",
        "",
        f"{'arch':<11}{'burn s/a':>16}{'mttr s/a':>16}"
        f"{'undlv s/a':>11}{'actions':>9}  verdict",
    ]

    def fmt(v: Any) -> str:
        return "-" if v is None else str(v)

    for p in doc["pairs"]:
        s, a = p["static"], p["adaptive"]
        counts = a["control"]["counts"]
        applied = sum(counts.get(k, 0)
                      for k in ("applied", "confirmed", "rolled_back"))
        verdict = ("improved" if p["improved"] else
                   "REGRESSED" if p["deltas"]["slo_burn_cycles"] > 0
                   or p["deltas"]["messages_undelivered"] > 0
                   else "no change")
        lines.append(
            f"{p['arch']:<11}"
            f"{fmt(s['slo_burn_cycles']) + '/' + fmt(a['slo_burn_cycles']):>16}"
            f"{fmt(s['mttr_max']) + '/' + fmt(a['mttr_max']):>16}"
            f"{str(s['messages_undelivered']) + '/' + str(a['messages_undelivered']):>11}"
            f"{applied:>9}  {verdict}"
        )
    lines.append("")
    improved = doc["improved"]
    lines.append(
        f"verdict       : {len(improved)}/{len(doc['pairs'])} "
        f"architectures improved"
        + (f" ({', '.join(improved)})" if improved else "")
    )
    return "\n".join(lines)
