"""The guarded actuation pipeline: what keeps the loop from flapping.

An SLO controller that fires a reconfiguration at every alert is worse
than no controller — it thrashes the fabric exactly when the fabric is
busiest.  :class:`ActuationGuard` sits between the alert stream and
the per-architecture action policies and enforces, in order:

* **cooldown / hysteresis** per ``(rule, target)``: after an action
  (and doubly so after a rollback) the same knob is left alone for a
  configurable window, so a breach that survives one actuation cannot
  drive an actuation storm;
* **concurrency** — at most ``max_concurrent`` actions may be between
  apply and post-check at once;
* a hard **safety budget**: at most ``max_actions_per_window`` applies
  per trailing ``budget_window`` cycles.  Past it the controller
  degrades to observe-only (fires are logged as suppressed) and raises
  a ``controller-saturated`` alert; actuation resumes when the
  trailing window drains back under budget.

Retry pacing reuses the repo-wide bounded-exponential helper
(:func:`repro.sim.backoff.bounded_backoff`) plus a crc32-keyed
deterministic jitter, so same-seed runs produce byte-identical retry
schedules without an RNG object.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.sim.backoff import bounded_backoff, deterministic_jitter

__all__ = ["GuardConfig", "ActuationGuard"]


@dataclass(frozen=True)
class GuardConfig:
    """Tunables of the actuation pipeline (all in cycles)."""

    #: leave a (rule, target) pair alone this long after an apply
    cooldown: int = 2_048
    #: after a rollback the pair's cooldown is multiplied by this
    rollback_penalty: int = 4
    #: observation window between apply and the improvement check
    observe_window: int = 2_048
    #: success unless the re-read metric still exceeds
    #: ``max(threshold, improve_frac * value-at-fire)``
    improve_frac: float = 0.9
    #: bounded retries when planning/apply is momentarily infeasible
    max_retries: int = 2
    retry_backoff: int = 512
    retry_backoff_cap: int = 8_192
    #: deterministic jitter span added to each retry wait
    jitter: int = 64
    #: actions allowed between apply and post-check simultaneously
    max_concurrent: int = 2
    #: hard safety budget: applies per trailing budget_window
    max_actions_per_window: int = 8
    budget_window: int = 32_768

    def __post_init__(self) -> None:
        if self.cooldown < 0 or self.observe_window < 1:
            raise ValueError("cooldown must be >= 0, observe_window >= 1")
        if not 0.0 <= self.improve_frac <= 1.0:
            raise ValueError(
                f"improve_frac must be in [0, 1], got {self.improve_frac}"
            )
        if self.max_concurrent < 1 or self.max_actions_per_window < 1:
            raise ValueError("concurrency and budget must be >= 1")


class ActuationGuard:
    """Pure bookkeeping — no simulator access, trivially deterministic."""

    def __init__(self, cfg: Optional[GuardConfig] = None):
        self.cfg = cfg or GuardConfig()
        #: (rule, target) -> cycle the pair becomes actionable again
        self._cooldown_until: Dict[Tuple[str, str], int] = {}
        #: action ids between apply and post-check
        self._inflight: set = set()
        #: cycles of recent applies (trailing safety-budget window)
        self._applied_at: Deque[int] = deque()
        self.suppressed_counts: Dict[str, int] = {}

    # -- admission ------------------------------------------------------
    def admit(self, rule: str, target: str,
              now: int) -> Optional[str]:
        """None when an action may proceed, else the suppression
        reason (``"saturated"`` / ``"concurrent-limit"`` /
        ``"cooldown"``)."""
        reason = None
        if self.saturated(now):
            reason = "saturated"
        elif len(self._inflight) >= self.cfg.max_concurrent:
            reason = "concurrent-limit"
        elif self._cooldown_until.get((rule, target), 0) > now:
            reason = "cooldown"
        if reason is not None:
            self.suppressed_counts[reason] = (
                self.suppressed_counts.get(reason, 0) + 1
            )
        return reason

    def saturated(self, now: int) -> bool:
        """Trailing-window apply count at (or past) the hard budget."""
        self._prune(now)
        return len(self._applied_at) >= self.cfg.max_actions_per_window

    def _prune(self, now: int) -> None:
        horizon = now - self.cfg.budget_window
        while self._applied_at and self._applied_at[0] <= horizon:
            self._applied_at.popleft()

    # -- lifecycle ------------------------------------------------------
    def note_applied(self, aid: str, rule: str, target: str,
                     now: int) -> None:
        self._inflight.add(aid)
        self._applied_at.append(now)
        self._cooldown_until[(rule, target)] = now + self.cfg.cooldown

    def note_settled(self, aid: str, rule: str, target: str, now: int,
                     rolled_back: bool) -> None:
        self._inflight.discard(aid)
        if rolled_back:
            # hysteresis: an action that did not help must not be
            # retried at the base cadence — the breach needs to clear
            # and re-fire, and even then the knob stays cold longer
            self._cooldown_until[(rule, target)] = (
                now + self.cfg.cooldown * self.cfg.rollback_penalty
            )

    def inflight(self) -> int:
        return len(self._inflight)

    # -- retry pacing ---------------------------------------------------
    def retry_delay(self, attempt: int, rule: str, target: str) -> int:
        """Bounded exponential wait before retry ``attempt`` (1-based),
        plus a deterministic jitter keyed on the (rule, target,
        attempt) stream."""
        wait = bounded_backoff(self.cfg.retry_backoff, attempt,
                               cap=self.cfg.retry_backoff_cap)
        return wait + deterministic_jitter(
            self.cfg.jitter, "control", rule, target, attempt
        )

    def snapshot(self, now: int) -> Dict[str, object]:
        self._prune(now)
        return {
            "inflight": len(self._inflight),
            "window_applies": len(self._applied_at),
            "saturated": self.saturated(now),
            "suppressed": dict(sorted(self.suppressed_counts.items())),
        }
