"""Per-architecture adaptive actions for the SLO control loop.

Mirrors the structure of :mod:`repro.faults.policies`: one policy
class per architecture, each translating an alert into that design's
own runtime-reconfiguration primitive —

===========  =========================================================
BUS-COM      re-plan the TDMA table: grant a static slot (taken from
             the least-loaded owner) to the most-backlogged module
             (``reassign_slot``)
CoNoChi      insert a switch next to a crowded one and migrate a
             module onto it (``add_switch`` + ``migrate_module``)
DyNoC        re-place the hottest flow's endpoint module next to its
             peer so traffic stops detouring through saturated
             routers (``remove_module`` + ``place_module``)
StaticMesh   same policy as DyNoC — and the apply always fails,
             because the static design welds placement shut; the
             action log records the suppression, which *is* the
             paper's point about static baselines
RMBoC        lane re-allocation: raise the per-module concurrent-
             circuit cap during a backoff storm
             (``set_channel_cap``)
sharedbus    arbiter priority rebalancing: rotate the most-backlogged
             module to the head of the round-robin scan
             (``set_arbitration_order``)
===========  =========================================================

Every plan is deterministic — candidates are enumerated in sorted
order, ties break lexically — and every action carries an explicit
``rollback`` closure restoring the pre-action configuration.  Policies
only call public architecture entry points (enforced by lint rule
QL012).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.fabric.geometry import Rect
from repro.obs.alerts import AlertRule, default_rules

__all__ = ["Action", "ActionPolicy", "make_action_policy",
           "adaptive_rules", "register_action_policy"]


def adaptive_rules() -> List[AlertRule]:
    """The rule set a controller-attached run watches.

    The canonical defaults plus the controller-specific pressure
    signals: instantaneous fabric-queue depth (CoNoChi switch fabrics,
    the sharedbus arbiter) and RMBoC request-backoff storms.  Rules
    whose metrics an architecture never records simply never fire, so
    one set serves all six designs.
    """
    return default_rules() + [
        AlertRule("fabric-pressure", "queue_current", 8,
                  kind="sustained", for_cycles=256,
                  description="a fabric ingress queue has stayed deep "
                              "— switch ports or arbiter saturated"),
        AlertRule("backoff-storm", "counter:rmboc.blocked", 256,
                  kind="burn_rate", window=1_024,
                  description="RMBoC senders rejected faster than the "
                              "lane budget explains — circuits "
                              "re-colliding on saturated segments"),
    ]


@dataclass
class Action:
    """One planned actuation: apply/rollback closures plus metadata."""

    kind: str
    target: str
    detail: str = ""
    apply: Callable[[], None] = field(default=lambda: None)
    rollback: Callable[[], None] = field(default=lambda: None)


class ActionPolicy:
    """Base: maps fired alerts to architecture-specific actions."""

    ARCH = "base"
    #: alert rules this policy responds to
    RULES: Tuple[str, ...] = ()

    def __init__(self, arch):
        self.arch = arch

    def covers(self, rule: str) -> bool:
        return rule in self.RULES

    def plan(self, alert, tel, now: int) -> Optional[Action]:
        """An Action for this alert, or None when nothing feasible
        exists right now (the loop retries with backoff)."""
        raise NotImplementedError


# ----------------------------------------------------------------------
class BusComActionPolicy(ActionPolicy):
    """Dynamic TDMA slot re-planning via the SlotTable machinery."""

    ARCH = "buscom"
    RULES = ("tdma-slot-overrun",)

    def plan(self, alert, tel, now: int) -> Optional[Action]:
        arch = self.arch
        backlogs = arch.total_backlog()
        if not backlogs:
            return None
        needy = min(
            (m for m in sorted(backlogs)),
            key=lambda m: (-backlogs[m], m),
        )
        if backlogs[needy] <= 0:
            return None
        owners = arch.table.owners()
        donors = sorted(
            m for m in owners
            if m != needy and owners[m] > 0
        )
        if not donors:
            return None
        donor = min(donors, key=lambda m: (backlogs.get(m, 0), m))
        slots = sorted(arch.table.static_slots_of(donor))
        if not slots:
            return None
        bus, slot = slots[0]
        return Action(
            kind="reassign-slot",
            target=f"bus{bus}.slot{slot}",
            detail=f"{donor} -> {needy}",
            apply=lambda: arch.reassign_slot(bus, slot, needy),
            rollback=lambda: arch.reassign_slot(bus, slot, donor),
        )


# ----------------------------------------------------------------------
class CoNoChiActionPolicy(ActionPolicy):
    """Switch insertion under sustained fabric-queue pressure."""

    ARCH = "conochi"
    RULES = ("fabric-pressure",)

    def _switch_of(self, module: str):
        control = self.arch.control
        return control.switch_of(control.resolve(module))

    def plan(self, alert, tel, now: int) -> Optional[Action]:
        arch = self.arch
        grid = arch.grid
        control = arch.control
        # the most crowded switch that still shares ports between
        # modules — relieving it is what a new switch buys
        crowded = [
            s for s in sorted(grid.switches())
            if control.attachments_at(s) >= 2
        ]
        if not crowded:
            return None
        crowded.sort(key=lambda s: (-control.attachments_at(s), s))
        switch = crowded[0]
        rects = grid.modules
        for module in sorted(arch.modules):
            if self._switch_of(module) != switch:
                continue
            rect = rects.get(module)
            if rect is None:
                continue
            site = self._insertion_site(grid, rect)
            if site is None:
                continue
            return self._plan_insertion(module, switch, site, rect)
        return None

    def _insertion_site(self, grid, rect: Rect):
        """A FREE tile adjacent to the module's rect that would link
        into the existing switch fabric."""
        from repro.fabric.tiles import TileType

        switches = set(grid.switches())
        for cx, cy in sorted(rect.cells()):
            for dx, dy in ((0, -1), (0, 1), (-1, 0), (1, 0)):
                tx, ty = cx + dx, cy + dy
                if not grid.in_bounds(tx, ty):
                    continue
                if grid.get(tx, ty) is not TileType.FREE:
                    continue
                joins = any(
                    (tx + ex, ty + ey) in switches
                    for ex, ey in ((0, -1), (0, 1), (-1, 0), (1, 0))
                )
                if joins:
                    return (tx, ty)
        return None

    def _plan_insertion(self, module: str, old_switch, site,
                        rect: Rect) -> Action:
        arch = self.arch

        def apply() -> None:
            arch.add_switch(site)
            arch.migrate_module(module, site, rect)

        def rollback() -> None:
            arch.migrate_module(module, old_switch, rect)
            # the spare switch stays in the grid: remove_switch
            # refuses while table updates are pending, and an unused
            # switch is harmless capacity
        return Action(
            kind="insert-switch",
            target=f"switch{site}",
            detail=f"{module} off crowded {old_switch}",
            apply=apply,
            rollback=rollback,
        )


# ----------------------------------------------------------------------
class DyNoCActionPolicy(ActionPolicy):
    """Module re-placement around saturated routers (S-XY masking)."""

    ARCH = "dynoc"
    RULES = ("detour-storm", "link-saturation", "flow-latency-p99")

    def plan(self, alert, tel, now: int) -> Optional[Action]:
        arch = self.arch
        flows = [
            f for f in tel.flows.values()
            if f.latency.count
            and f.src in arch.modules and f.dst in arch.modules
        ]
        if not flows:
            return None
        flows.sort(key=lambda f: (-f.latency.percentile(99),
                                  f.src, f.dst))
        for flow in flows:
            action = self._plan_relocation(flow.src, flow.dst)
            if action is not None:
                return action
        return None

    def _plan_relocation(self, src: str, dst: str) -> Optional[Action]:
        arch = self.arch
        try:
            src_pl = arch.placement_of(src)
            dst_pl = arch.placement_of(dst)
        except KeyError:
            return None
        if dst_pl.rect.w != 1 or dst_pl.rect.h != 1:
            return None
        ax, ay = src_pl.access
        old_rect = dst_pl.rect
        old_access = dst_pl.access
        cur_dist = abs(old_rect.x - ax) + abs(old_rect.y - ay)
        used = set()
        for name in arch.modules:
            try:
                used.update(arch.placement_of(name).rect.cells())
            except KeyError:
                continue
        best = None
        for x in range(arch.cfg.mesh_cols):
            for y in range(arch.cfg.mesh_rows):
                if (x, y) in used or not arch.is_active((x, y)):
                    continue
                dist = abs(x - ax) + abs(y - ay)
                if dist < 1 or dist >= cur_dist:
                    continue
                key = (dist, y, x)
                if best is None or key < best[0]:
                    best = (key, (x, y))
        if best is None:
            return None
        nx, ny = best[1]
        new_rect = Rect(nx, ny, 1, 1)

        def move(rect: Rect, access) -> None:
            arch.remove_module(dst)
            try:
                arch.place_module(dst, rect, access)
            except Exception:
                # keep the fabric consistent: restore the old site
                # before re-raising so the loop's retry sees the
                # pre-action placement
                arch.place_module(dst, old_rect, old_access)
                raise

        return Action(
            kind="replace-module",
            target=dst,
            detail=f"{old_rect.x},{old_rect.y} -> {nx},{ny} "
                   f"(near {src})",
            apply=lambda: move(new_rect, (nx, ny)),
            rollback=lambda: move(old_rect, old_access),
        )


class StaticMeshActionPolicy(DyNoCActionPolicy):
    """Same plan as DyNoC; apply always fails on the welded-shut
    baseline, leaving an honest "infeasible" trail in the action log."""

    ARCH = "staticmesh"
    # the static mesh can't mask routers either, so congestion shows
    # up as router-queue pressure rather than detours — cover it and
    # let the (always-infeasible) relocation plan document why the
    # static baseline cannot adapt
    RULES = DyNoCActionPolicy.RULES + ("fabric-pressure",)


# ----------------------------------------------------------------------
class RMBoCActionPolicy(ActionPolicy):
    """Lane re-allocation under backoff storms."""

    ARCH = "rmboc"
    # lane famine surfaces two ways: senders backing off after lane
    # rejections (blocked counter storms) and messages piling up at a
    # network interface whose channel budget is exhausted (NI queue
    # pressure) — the same knob relieves both
    RULES = ("backoff-storm", "fabric-pressure")

    def plan(self, alert, tel, now: int) -> Optional[Action]:
        arch = self.arch
        cap = arch.channel_cap
        if cap >= arch.cfg.num_buses:
            return None
        return Action(
            kind="raise-channel-cap",
            target="fabric",
            detail=f"cap {cap} -> {cap + 1}",
            apply=lambda: arch.set_channel_cap(cap + 1),
            rollback=lambda: arch.set_channel_cap(cap),
        )


# ----------------------------------------------------------------------
class SharedBusActionPolicy(ActionPolicy):
    """Arbiter priority rebalancing on the static baseline bus."""

    ARCH = "sharedbus"
    RULES = ("fabric-pressure",)

    def plan(self, alert, tel, now: int) -> Optional[Action]:
        arch = self.arch
        backlogs = arch.backlogs()
        if not backlogs:
            return None
        head = min(sorted(backlogs),
                   key=lambda m: (-backlogs[m], m))
        if backlogs[head] <= 0:
            return None
        order = arch.arbitration_order()
        if not order or order[0] == head:
            return None
        i = order.index(head)
        new_order = order[i:] + order[:i]

        def rollback() -> None:
            arch.set_arbitration_order(order)

        return Action(
            kind="rebalance-arbiter",
            target=head,
            detail=f"scan head {order[0]} -> {head}",
            apply=lambda: arch.set_arbitration_order(new_order),
            rollback=rollback,
        )


# ----------------------------------------------------------------------
_POLICIES: Dict[str, Type[ActionPolicy]] = {
    "buscom": BusComActionPolicy,
    "conochi": CoNoChiActionPolicy,
    "dynoc": DyNoCActionPolicy,
    "staticmesh": StaticMeshActionPolicy,
    "rmboc": RMBoCActionPolicy,
    "sharedbus": SharedBusActionPolicy,
}


def register_action_policy(key: str,
                           policy: Type[ActionPolicy]) -> None:
    """Out-of-tree architectures plug their action policy in here."""
    _POLICIES[key] = policy


def make_action_policy(arch) -> ActionPolicy:
    """The action policy for an architecture instance (KeyError when
    the architecture has none registered)."""
    try:
        cls = _POLICIES[arch.KEY]
    except KeyError:
        raise KeyError(
            f"no action policy registered for architecture "
            f"{arch.KEY!r} (known: {', '.join(sorted(_POLICIES))})"
        ) from None
    return cls(arch)
