"""The closed loop: alert stream in, guarded actuation out.

:class:`ControlLoop` subscribes to an :class:`~repro.obs.alerts.
AlertEngine` (``engine.subscribe``) and reacts to **edges** — a rule
firing or clearing — never to a per-cycle poll, so an idle fabric
costs nothing and the kernel's quiescence fast-forward survives.  A
run with no controller attached executes byte-identically to one
before this module existed: the only hook is the listener list on the
alert engine, which is empty by default.

On a fire edge the loop asks the architecture's
:class:`~repro.control.actions.ActionPolicy` for an action, runs it
through the :class:`~repro.control.guards.ActuationGuard` (cooldown,
concurrency, safety budget), applies it, and schedules an improvement
check one observation window later.  If the breach has not cleared
and the re-read metric has not improved past the guard's bar, the
action is rolled back and the (rule, target) pair is put on an
extended cooldown.  Momentarily infeasible plans retry with bounded
exponential backoff and deterministic jitter; a tripped safety budget
degrades the loop to observe-only and raises a
``controller-saturated`` alert.

Everything the loop does is observable: trace emits + span events
(source ``"control"``), the ``repro.control/1`` action-log document
(:meth:`ControlLoop.action_log`), ``repro_control_*`` Prometheus
series, an "actions" pane in ``repro watch``, and ledger records via
the chaos/adapt harnesses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.control.actions import (ActionPolicy, adaptive_rules,
                                   make_action_policy)
from repro.control.guards import ActuationGuard, GuardConfig

__all__ = ["ControlLoop", "ActionRecord", "CONTROL_SCHEMA",
           "attach_control"]

#: schema tag of the action-log document
CONTROL_SCHEMA = "repro.control/1"

#: statuses an action record can end in
FINAL_STATUSES = ("confirmed", "rolled_back", "failed", "suppressed")


@dataclass
class ActionRecord:
    """One controller decision, applied or not."""

    aid: str
    rule: str
    kind: str
    target: str
    detail: str
    cycle: int          # decision cycle (the alert edge)
    status: str         # applied | confirmed | rolled_back | failed
                        # | suppressed
    reason: str = ""    # suppression/failure reason
    attempts: int = 0
    applied_cycle: int = -1
    checked_cycle: int = -1
    fire_value: float = 0.0
    check_value: Optional[float] = None
    subject: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "aid": self.aid,
            "rule": self.rule,
            "kind": self.kind,
            "target": self.target,
            "detail": self.detail,
            "cycle": self.cycle,
            "status": self.status,
            "reason": self.reason,
            "attempts": self.attempts,
            "applied_cycle": self.applied_cycle,
            "checked_cycle": self.checked_cycle,
            "fire_value": self.fire_value,
            "check_value": self.check_value,
            "subject": self.subject,
        }


@dataclass
class _Pending:
    record: ActionRecord
    action: Any
    alert: Any


class ControlLoop:
    """SLO-driven control plane for one architecture instance."""

    def __init__(self, arch, tel=None,
                 policy: Optional[ActionPolicy] = None,
                 guard: Optional[GuardConfig] = None):
        self.arch = arch
        self.sim = arch.sim
        self.tel = tel if tel is not None else self.sim.telemetry
        if self.tel is None:
            raise ValueError(
                "ControlLoop needs telemetry attached to the simulator "
                "(FlowTelemetry().attach(sim)) — the loop is driven by "
                "the lazy alert stream, never a per-cycle poll"
            )
        engine = self.tel.engine
        if engine is None:
            from repro.obs.alerts import AlertEngine

            engine = self.tel.engine = AlertEngine(
                rules=adaptive_rules()
            )
        self.engine = engine
        self.policy = policy or make_action_policy(arch)
        self.guard = ActuationGuard(guard)
        self.actions: List[ActionRecord] = []
        self.observe_only = False
        self._aid_seq = itertools.count()
        self._saturation_alerted = False
        engine.subscribe(self._on_alert)
        # discovery hook for watch/prom exporters (one loop per sim)
        self.sim.control = self

    # ------------------------------------------------------------------
    # alert edges
    # ------------------------------------------------------------------
    def _on_alert(self, event: str, alert) -> None:
        if event != "fire":
            return  # clears settle via the scheduled checks
        if not self.policy.covers(alert.rule):
            return
        now = self.sim.cycle
        if self.guard.saturated(now):
            self._note_saturation(now)
            self._suppress(alert, now, "saturated")
            return
        self._resume_if_drained(now)
        reason = self.guard.admit(alert.rule, alert.subject or "arch",
                                  now)
        if reason is not None:
            if reason == "saturated":
                self._note_saturation(now)
            self._suppress(alert, now, reason)
            return
        self._attempt(alert, now, attempt=1)

    def _resume_if_drained(self, now: int) -> None:
        if self.observe_only and not self.guard.saturated(now):
            self.observe_only = False
            self._saturation_alerted = False
            if self.sim.tracing:
                self.sim.emit("control", "resumed", cycle=now)

    def _note_saturation(self, now: int) -> None:
        self.observe_only = True
        if self._saturation_alerted:
            return
        self._saturation_alerted = True
        self.engine.inject(
            "controller-saturated", cycle=now,
            value=float(self.guard.cfg.max_actions_per_window),
            threshold=float(self.guard.cfg.max_actions_per_window),
            message=(
                f"safety budget hit: "
                f"{self.guard.cfg.max_actions_per_window} actions in "
                f"{self.guard.cfg.budget_window} cycles — controller "
                f"degraded to observe-only"),
            tel=self.tel,
        )

    def _suppress(self, alert, now: int, reason: str) -> None:
        record = ActionRecord(
            aid=f"a{next(self._aid_seq)}",
            rule=alert.rule, kind="none",
            target=alert.subject or "arch", detail="",
            cycle=now, status="suppressed", reason=reason,
            fire_value=alert.value, subject=alert.subject,
        )
        self.actions.append(record)
        self._emit(record)

    # ------------------------------------------------------------------
    # actuation
    # ------------------------------------------------------------------
    def _attempt(self, alert, now: int, attempt: int) -> None:
        record: Optional[ActionRecord] = None
        try:
            action = self.policy.plan(alert, self.tel, now)
            if action is not None:
                record = ActionRecord(
                    aid=f"a{next(self._aid_seq)}",
                    rule=alert.rule, kind=action.kind,
                    target=action.target, detail=action.detail,
                    cycle=now, status="applied", attempts=attempt,
                    applied_cycle=self.sim.cycle,
                    fire_value=alert.value, subject=alert.subject,
                )
                action.apply()
        except Exception as exc:  # infeasible right now
            action = None
            failure = f"{type(exc).__name__}: {exc}"
        else:
            failure = "no feasible action"
        if action is None or record is None:
            self._retry_or_fail(alert, now, attempt, failure)
            return
        self.actions.append(record)
        self.guard.note_applied(record.aid, record.rule, record.target,
                                self.sim.cycle)
        self._emit(record)
        pending = _Pending(record=record, action=action, alert=alert)
        self.sim.after(self.guard.cfg.observe_window,
                       lambda _s: self._check(pending))

    def _retry_or_fail(self, alert, now: int, attempt: int,
                       failure: str) -> None:
        cfg = self.guard.cfg
        if attempt <= cfg.max_retries:
            delay = self.guard.retry_delay(
                attempt, alert.rule, alert.subject or "arch")
            self.sim.after(
                delay,
                lambda s: self._attempt(alert, s.cycle,
                                        attempt + 1))
            return
        record = ActionRecord(
            aid=f"a{next(self._aid_seq)}",
            rule=alert.rule, kind="none",
            target=alert.subject or "arch", detail="",
            cycle=now, status="failed", reason=failure,
            attempts=attempt, fire_value=alert.value,
            subject=alert.subject,
        )
        self.actions.append(record)
        self._emit(record)

    # ------------------------------------------------------------------
    # post-action improvement check
    # ------------------------------------------------------------------
    def _check(self, pending: _Pending) -> None:
        record = pending.record
        now = self.sim.cycle
        record.checked_cycle = now
        # force a fresh evaluation so the episode state reflects this
        # cycle, not the last record-path eval
        self.tel.evaluate_now(now)
        still_burning = record.rule in self.engine.active(now)
        improved = not still_burning
        if still_burning and record.rule in {
                r.name for r in self.engine.rules}:
            value = self.engine.current_value(record.rule, self.tel,
                                              now)
            record.check_value = value
            rule = self.engine.rule_named(record.rule)
            if (rule.kind != "burn_rate" and value is not None
                    and value <= max(
                        rule.threshold,
                        self.guard.cfg.improve_frac
                        * record.fire_value)):
                improved = True
        if improved:
            record.status = "confirmed"
            self.guard.note_settled(record.aid, record.rule,
                                    record.target, now,
                                    rolled_back=False)
        else:
            record.status = "rolled_back"
            record.reason = "no improvement in observation window"
            try:
                pending.action.rollback()
            except Exception as exc:
                record.reason = (
                    f"rollback failed: {type(exc).__name__}: {exc}")
            self.guard.note_settled(record.aid, record.rule,
                                    record.target, now,
                                    rolled_back=True)
        self._emit(record)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _emit(self, record: ActionRecord) -> None:
        sim = self.sim
        if sim.tracing:
            sim.emit("control", record.status, aid=record.aid,
                     rule=record.rule, kind=record.kind,
                     target=record.target, reason=record.reason)
        if sim.tracer is not None:
            begin = (record.applied_cycle
                     if record.applied_cycle >= 0 else record.cycle)
            end = (record.checked_cycle
                   if record.checked_cycle >= 0 else sim.cycle)
            sim.span_event(
                "control", f"{record.kind}:{record.status}",
                begin=begin, end=max(end, begin),
                aid=record.aid, rule=record.rule,
                target=record.target, detail=record.detail,
                reason=record.reason,
            )

    def status_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.actions:
            out[record.status] = out.get(record.status, 0) + 1
        return dict(sorted(out.items()))

    def action_log(self, now: Optional[int] = None) -> Dict[str, Any]:
        """The ``repro.control/1`` document for this loop."""
        at = now if now is not None else self.sim.cycle
        return {
            "schema": CONTROL_SCHEMA,
            "arch": self.arch.KEY,
            "cycle": at,
            "actions": [r.to_dict() for r in self.actions],
            "counts": self.status_counts(),
            "observe_only": self.observe_only,
            "guard": self.guard.snapshot(at),
            "burn_cycles": self.engine.burn_cycles(at),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"ControlLoop(arch={self.arch.KEY!r}, "
                f"actions={len(self.actions)}, "
                f"observe_only={self.observe_only})")


def attach_control(arch, tel=None,
                   guard: Optional[GuardConfig] = None) -> ControlLoop:
    """Convenience: build the default policy + loop for ``arch``."""
    return ControlLoop(arch, tel=tel, guard=guard)
