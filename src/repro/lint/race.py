"""Graph-level determinism rules QL007–QL011.

These rules run on the whole-program access graph built by
:mod:`repro.lint.graph` rather than on one class at a time:

=======  ========  =====================================================
rule     severity  meaning
=======  ========  =====================================================
QL007    error     write-write race: two distinct component classes
                   stage the same wire on their tick paths, so the
                   committed value depends on commit order
QL008    error     multi-producer or multi-consumer FIFO topology —
                   the static counterpart of the sanitizer's SAN003
QL009    error     iteration over an unordered ``set`` of components or
                   channels whose body stages channel state or draws
                   randomness — hash order leaks into simulation state
QL010    warning   object-path code reads a ``VEC_FIELDS`` attribute
                   outside the tick path without a flush-site dominator
                   (``flush``/``flush_kernels``), so it can observe
                   stale pre-kernel state under ``--engine vec``
QL011    error     a fault policy registered in ``_POLICIES`` calls a
                   ``self.arch.<hook>()`` the keyed architecture class
                   does not implement (crashes only when that fault
                   fires)
=======  ========  =====================================================

Each rule is conservative in the direction that matters for its
severity: the error rules only fire on accesses the graph proves are on
a tick path of a concrete component class, while QL010 is a warning
because flushing may be handled by a caller the dominator scan cannot
see (such hits belong in the baseline with a justification).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.graph import AccessGraph, Access, ClassDecl, build_graph

try:  # flush-site metadata lives next to the kernels it describes
    from repro.sim.vec.kernels import VEC_FLUSH_SITES
except Exception:  # pragma: no cover - vec layer always importable
    VEC_FLUSH_SITES = ("flush", "flush_kernels")

#: rule id -> (default severity, one-line summary)
GRAPH_RULES: Dict[str, Tuple[Severity, str]] = {
    "QL007": (Severity.ERROR,
              "write-write race: multiple components stage one wire"),
    "QL008": (Severity.ERROR,
              "multi-producer/multi-consumer FIFO topology"),
    "QL009": (Severity.ERROR,
              "iteration over an unordered set reaches staged state or RNG"),
    "QL010": (Severity.WARNING,
              "object-path read of VEC_FIELDS state without a flush "
              "dominator"),
    "QL011": (Severity.ERROR,
              "fault policy calls a recovery hook the architecture lacks"),
}

_STAGED_WRITE_CALLS = {"drive", "push", "try_push", "push_all"}
_RNG_CALLS = {"random", "randint", "randrange", "choice", "choices",
              "shuffle", "sample", "uniform", "gauss", "rand"}
_SET_CONSTRUCTORS = {"set", "frozenset"}


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return ast.dump(node)


# ----------------------------------------------------------------------
# QL007 / QL008 — shared-channel topology rules
# ----------------------------------------------------------------------
def _topology_findings(graph: AccessGraph) -> List[Finding]:
    findings: List[Finding] = []
    for key, accesses in sorted(graph.accesses_by_channel().items()):
        node = graph.channels.get(key)
        kind = node.kind if node else "channel"
        label = f"{key[0]}.{key[1]}"

        def _sites(ops: Set[str], tick_only: bool = True) -> List[Access]:
            return [a for a in accesses
                    if a.op in ops
                    and (a.tick_path or not tick_only)
                    and graph.classes.get(a.component, _NOT_COMPONENT
                                          ).is_component]

        if kind in ("wire", "pulse", "channel"):
            stagers = _sites({"stage"})
            writers = sorted({a.component for a in stagers})
            if len(writers) >= 2:
                site = min(stagers, key=lambda a: (a.path, a.line))
                findings.append(Finding(
                    "QL007", GRAPH_RULES["QL007"][0], site.path, site.line,
                    label,
                    f"{kind} {label} is staged by {len(writers)} distinct "
                    f"components on their tick paths "
                    f"({', '.join(writers)}); the committed value depends "
                    f"on commit order — route each driver through its own "
                    f"wire or a FIFO"))
        if kind in ("fifo", "channel"):
            pushers = sorted({a.component for a in _sites({"push"})})
            # pops act on the committed queue, so non-tick consumers
            # (event handlers) race just the same: count them all.
            poppers = sorted({a.component
                              for a in _sites({"pop"}, tick_only=False)
                              if not a.method.endswith(".__init__")})
            for role, names in (("producer", pushers), ("consumer", poppers)):
                if len(names) >= 2:
                    op = "push" if role == "producer" else "pop"
                    site = min((a for a in accesses if a.op == op),
                               key=lambda a: (a.path, a.line))
                    findings.append(Finding(
                        "QL008", GRAPH_RULES["QL008"][0], site.path,
                        site.line, label,
                        f"fifo {label} has {len(names)} {role}s "
                        f"({', '.join(names)}); FIFO ports are "
                        f"single-{role} — give each its own port "
                        f"(sanitizer counterpart: SAN003)"))
    return findings


class _NotComponent:
    is_component = False


_NOT_COMPONENT = _NotComponent()


# ----------------------------------------------------------------------
# QL009 — unordered iteration
# ----------------------------------------------------------------------
def _set_typed_attrs(decl: ClassDecl) -> Set[str]:
    """``self.x`` attributes assigned a set literal/constructor/
    comprehension anywhere in the class's effective methods."""
    attrs: Set[str] = set()
    ordered: Set[str] = set()
    for _name, (_cls, _path, fn) in decl.methods.items():
        for node in ast.walk(fn):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            elif isinstance(node, ast.AugAssign):
                target, value = node.target, None
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            if _is_set_expr(value):
                attrs.add(target.attr)
            elif value is not None:
                ordered.add(target.attr)
    return attrs - ordered  # reassigned to a non-set anywhere: trust that


def _is_set_expr(value: Optional[ast.expr]) -> bool:
    if isinstance(value, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
            and value.func.id in _SET_CONSTRUCTORS):
        return True
    return False


def _iter_is_unordered(node: ast.expr, set_attrs: Set[str]) -> bool:
    """Is ``for _ in <node>`` iteration over an unordered set?

    ``sorted(...)`` (or any other ordering wrapper) exempts; plain
    ``list(s)``/``tuple(s)`` of a set merely freezes the hash order and
    does not.
    """
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id == "sorted":
            return False
        if node.func.id in _SET_CONSTRUCTORS:
            return True
        if node.func.id in ("list", "tuple") and node.args:
            return _iter_is_unordered(node.args[0], set_attrs)
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in set_attrs):
        return True
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)):
        # set algebra on two unordered operands
        return (_iter_is_unordered(node.left, set_attrs)
                or _iter_is_unordered(node.right, set_attrs))
    return False


def _body_reaches_state(body: Sequence[ast.stmt]) -> Optional[ast.AST]:
    """First node in ``body`` that stages channel state or draws
    randomness, else None."""
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if isinstance(fn, ast.Attribute):
                if fn.attr in _STAGED_WRITE_CALLS:
                    return node
                if fn.attr in _RNG_CALLS:
                    return node
                if "rng" in _unparse(fn.value).lower().split("."):
                    return node
    return None


def _iteration_findings(graph: AccessGraph) -> List[Finding]:
    findings: List[Finding] = []
    for name, decl in sorted(graph.classes.items()):
        set_attrs = _set_typed_attrs(decl)
        for mname, (def_cls, def_path, fn) in sorted(decl.methods.items()):
            if def_cls != name:
                continue  # report once, in the defining class
            for node in ast.walk(fn):
                if not isinstance(node, (ast.For, ast.AsyncFor)):
                    continue
                if not _iter_is_unordered(node.iter, set_attrs):
                    continue
                hit = _body_reaches_state(node.body)
                if hit is None:
                    continue
                findings.append(Finding(
                    "QL009", GRAPH_RULES["QL009"][0], def_path,
                    node.lineno, f"{name}.{mname}",
                    f"iterates over unordered {_unparse(node.iter)!r} and "
                    f"the loop body reaches staged state or RNG "
                    f"({_unparse(hit)!r} at line "
                    f"{getattr(hit, 'lineno', node.lineno)}); wrap the "
                    f"iterable in sorted(...) to pin the order"))
    return findings


# ----------------------------------------------------------------------
# QL010 — vec/object divergence hazard
# ----------------------------------------------------------------------
def _vec_divergence_findings(graph: AccessGraph) -> List[Finding]:
    findings: List[Finding] = []
    for name, decl in sorted(graph.classes.items()):
        if not decl.vec_fields:
            continue
        for mname, (def_cls, def_path, fn) in sorted(decl.methods.items()):
            if def_cls != name:
                continue
            if mname in decl.tick_reachable or mname == "__init__":
                continue
            if mname in VEC_FLUSH_SITES or mname.startswith("_make_vec"):
                continue
            flush_line = None
            for node in ast.walk(fn):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in VEC_FLUSH_SITES):
                    flush_line = node.lineno
                    break
            for node in ast.walk(fn):
                if not (isinstance(node, ast.Attribute)
                        and isinstance(node.ctx, ast.Load)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"
                        and node.attr in decl.vec_fields):
                    continue
                if flush_line is not None and flush_line <= node.lineno:
                    continue  # flushed before the read: dominated
                findings.append(Finding(
                    "QL010", GRAPH_RULES["QL010"][0], def_path,
                    node.lineno, f"{name}.{mname}",
                    f"reads VEC_FIELDS attribute self.{node.attr} outside "
                    f"the tick path without a preceding "
                    f"{'/'.join(VEC_FLUSH_SITES)} call; under --engine vec "
                    f"this can observe stale pre-kernel state"))
                break  # one finding per method is enough
    return findings


# ----------------------------------------------------------------------
# QL011 — fault-policy hook completeness
# ----------------------------------------------------------------------
def _policy_hook_findings(graph: AccessGraph) -> List[Finding]:
    registry = graph.registries.get("_POLICIES")
    if not registry:
        return []
    findings: List[Finding] = []
    archs_by_key: Dict[str, List[ClassDecl]] = {}
    for decl in graph.classes.values():
        if decl.arch_key is not None:
            archs_by_key.setdefault(decl.arch_key, []).append(decl)
    for key, policy_name in sorted(registry.items()):
        policy = graph.classes.get(policy_name)
        archs = archs_by_key.get(key, [])
        if policy is None or not archs:
            continue
        # hooks exempted by a hasattr(...) guard anywhere in the policy
        guarded: Set[str] = set()
        for _m, (_c, _p, fn) in policy.methods.items():
            for node in ast.walk(fn):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id in ("hasattr", "getattr")
                        and len(node.args) >= 2
                        and isinstance(node.args[1], ast.Constant)
                        and isinstance(node.args[1].value, str)):
                    guarded.add(node.args[1].value)
        for mname, (def_cls, def_path, fn) in sorted(policy.methods.items()):
            for node in ast.walk(fn):
                if not (isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Attribute)
                        and isinstance(node.value.value, ast.Name)
                        and node.value.value.id == "self"
                        and node.value.attr == "arch"):
                    continue
                hook = node.attr
                if hook in guarded or hook == "KEY":
                    continue
                if any(hook in arch.methods for arch in archs):
                    continue
                if any(_class_has_attr(graph, arch, hook) for arch in archs):
                    continue
                names = ", ".join(sorted(a.name for a in archs))
                findings.append(Finding(
                    "QL011", GRAPH_RULES["QL011"][0], def_path,
                    node.lineno, f"{policy_name}.{mname}",
                    f"policy for arch key {key!r} uses self.arch.{hook}, "
                    f"but {names} neither defines nor inherits it — the "
                    f"recovery path crashes only when that fault fires"))
    return findings


def _class_has_attr(graph: AccessGraph, decl: ClassDecl, attr: str) -> bool:
    """Does ``decl`` (or any ancestor the graph can see) bind ``attr``
    as a non-method attribute — class body or ``self.attr = ...``?"""
    seen: Set[str] = set()
    queue = [decl.name]
    while queue:
        name = queue.pop()
        if name in seen or name not in graph.classes:
            continue
        seen.add(name)
        current = graph.classes[name]
        for node in ast.walk(current.node):
            target: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign):
                target = node.target
            if target is None:
                continue
            if isinstance(target, ast.Name) and target.id == attr:
                return True
            if (isinstance(target, ast.Attribute) and target.attr == attr
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                return True
        queue.extend(current.bases)
    return False


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def run_graph_rules(graph: AccessGraph) -> List[Finding]:
    """All QL007–QL011 findings for a built access graph."""
    findings: List[Finding] = []
    findings.extend(_topology_findings(graph))
    findings.extend(_iteration_findings(graph))
    findings.extend(_vec_divergence_findings(graph))
    findings.extend(_policy_hook_findings(graph))
    return findings


def lint_graph_paths(paths: Sequence[str]) -> List[Finding]:
    """Build the access graph for ``paths`` and run the graph rules;
    parse errors surface as QL000 findings."""
    graph, errors = build_graph(paths)
    return list(errors) + run_graph_rules(graph)
