"""Finding and severity types shared by the static pass and the CLI."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List


class Severity(enum.IntEnum):
    """Ordered severity levels; comparisons follow int ordering."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; choose from "
                f"{', '.join(s.name.lower() for s in cls)}"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One contract violation reported by the static pass."""

    rule: str           # e.g. "QL001"
    severity: Severity
    path: str           # file the finding is in
    line: int           # 1-based line number
    symbol: str         # "Class.method" (or "<module>")
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}: {self.severity} "
                f"[{self.rule}] {self.symbol}: {self.message}")


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable display order: by file, then line, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))
