"""Finding and severity types shared by the static pass and the CLI."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple


class Severity(enum.IntEnum):
    """Ordered severity levels; comparisons follow int ordering.

    The integer value *is* the rank: ``--min-severity`` filtering and
    every other comparison goes through :attr:`rank`, never through the
    names (string comparison would order ``error`` < ``info``).
    """

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; choose from "
                f"{', '.join(s.name.lower() for s in cls)}"
            ) from None

    @property
    def rank(self) -> int:
        """Explicit total-order rank (higher is more severe)."""
        return int(self)

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` for this severity."""
        return {Severity.INFO: "note",
                Severity.WARNING: "warning",
                Severity.ERROR: "error"}[self]

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One contract violation reported by the static pass."""

    rule: str           # e.g. "QL001"
    severity: Severity
    path: str           # file the finding is in
    line: int           # 1-based line number
    symbol: str         # "Class.method" (or "<module>")
    message: str

    @property
    def key(self) -> Tuple[str, str, int, str]:
        """Identity for deduplication: ``(rule, file, line, symbol)``.

        Helper-method attribution can surface the same source site
        through more than one analysis path (e.g. a helper reached from
        two entry methods); findings sharing this key describe one
        defect and must be reported once.
        """
        return (self.rule, self.path, self.line, self.symbol)

    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-independent identity used by the baseline file: the
        line number is deliberately excluded so unrelated edits above a
        baselined finding do not resurrect it."""
        return (self.rule, self.path.replace("\\", "/"), self.symbol)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}: {self.severity} "
                f"[{self.rule}] {self.symbol}: {self.message}")


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable display order: by file, then line, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def dedupe_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Drop findings that repeat an earlier finding's
    ``(rule, file, line, symbol)`` key, preserving first-seen order."""
    seen: Set[Tuple[str, str, int, str]] = set()
    out: List[Finding] = []
    for finding in findings:
        key = finding.key
        if key not in seen:
            seen.add(key)
            out.append(finding)
    return out
