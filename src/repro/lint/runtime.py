"""Runtime sanitizer for the quiescence-aware kernel.

Enable with ``Simulator(sanitize=True)`` or ``REPRO_SIM_SANITIZE=1``.
The sanitizer instruments every :class:`~repro.sim.channel.Wire`,
:class:`~repro.sim.channel.PulseWire` and :class:`~repro.sim.channel.FIFO`
created on a sanitizing simulator (by swapping the instance onto a
recording subclass) and tracks per-component read/write sets each cycle.
Three contract violations raise :class:`SanitizerError` with a precise
diagnostic:

``SAN001`` *missed wake* — a channel some component has read commits a
    changed value while that component sleeps with no wake scheduled for
    the visibility cycle.  Under the slow path the component would have
    re-ticked and observed the change; under the fast path it stays
    asleep — the classic fast-path divergence.  Fix: ``watch()`` the
    channel (or return a timed hint covering the change).

``SAN002`` *side-effecting sleeper* — a component staged a channel write
    in the same tick it reported quiescence.  Its tick was observably
    not a no-op, so the sleep claim breaks golden equivalence (a
    slow-path run would re-execute the tick next cycle).

``SAN003`` *multi-consumer FIFO* — two different components popped the
    same FIFO.  Pops act on committed state immediately (they are not
    staged), so a FIFO's read port has exactly one owner; a second
    consumer makes results depend on tick order.

Two further checks form the opt-in **race detector**
(``Simulator(sanitize="race")`` / ``REPRO_SIM_SANITIZE=race``), the
runtime counterpart of the static rules QL007/QL008 and the adversarial
confirmation step for their findings:

``SAN004`` *same-cycle conflicting writes* — two distinct components
    wrote the same channel in one cycle.  For wires this fires *before*
    the generic double-drive :class:`SimError` so the diagnostic names
    both drivers; for FIFOs (where multiple pushers are silently
    order-dependent) it fires at the end of the cycle.

``SAN005`` *order-sensitive commit* — detected by a shadow double
    commit: the staged writes of each multi-writer channel are replayed
    with the writer groups in reversed order, and if the committed
    outcome differs the result depends on tick order.  Only reported in
    ``race="record"`` mode (see below), since ``"raise"`` mode stops at
    the SAN004 site.

Race mode ``"raise"`` (the default for ``sanitize="race"``) raises on
the first SAN004; mode ``"record"`` instead accumulates violations in
:attr:`Sanitizer.violations` and *drops* conflicting wire writes so one
run can surface every race — record mode is a diagnostic harness and is
deliberately **not** equivalence-preserving.

The sanitizer is otherwise a pure observer: with no violations,
sanitized runs are bit-identical to unsanitized ones (asserted by
``tests/sim/test_sanitizer.py``).  Reads and writes performed outside
any component tick — scheduled events, test harness code — are exempt
from SAN002/SAN003/SAN004 and never enter a read set.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.sim.channel import FIFO, PulseWire, Wire
from repro.sim.engine import SLEEP, SimError, Simulator

#: sentinel for "this staged write always counts as a change" (FIFOs)
_ALWAYS_CHANGED = object()

#: sentinel for "no staged payload to track" (race-mode write ownership)
_NO_ITEM = object()


class SanitizerError(SimError):
    """A quiescence-contract violation detected at runtime."""

    def __init__(self, rule: str, message: str):
        super().__init__(f"[{rule}] {message}")
        self.rule = rule


def _parse_race_mode(race: object) -> Optional[str]:
    """Normalize the ``race`` constructor argument / env value."""
    if race in (False, None, 0, ""):
        return None
    if race in (True, 1, "raise", "race", "2"):
        return "raise"
    if race == "record":
        return "record"
    raise SimError(
        f"unknown race-detector mode {race!r}; use False, 'raise' "
        f"(alias: True/'race') or 'record'")


def _name(obj: object) -> str:
    return repr(getattr(obj, "name", obj))


class Sanitizer:
    """Per-simulator recorder of channel read/write sets and checks."""

    def __init__(self, sim: Simulator, race: object = False):
        self.sim = sim
        #: channel -> components that have read it from inside a tick
        self._readers: Dict[object, Set[object]] = {}
        #: channels with writes staged this cycle -> pre-stage committed
        #: value (``_ALWAYS_CHANGED`` when any stage is observable)
        self._staged: Dict[object, Any] = {}
        #: channels the currently ticking component wrote this tick
        self._tick_writes: List[object] = []
        #: FIFO -> the component owning its read port (first popper)
        self._pop_owner: Dict[object, object] = {}
        #: (rule, channel-name, component-name) counts, for reporting
        self.violations: Dict[Tuple[str, str, str], int] = {}
        #: None (off) | "raise" | "record" — see module docstring
        self.race_mode = _parse_race_mode(race)
        #: channel -> [(component, staged value/items)] for this cycle,
        #: tick-attributed writes only (race mode)
        self._cycle_writers: Dict[object, List[Tuple[object, Any]]] = {}

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------
    def adopt(self, channel: object) -> None:
        """Swap ``channel`` onto its recording subclass (called by
        ``_Subscribable._init_channel`` on sanitizing simulators)."""
        sanitized = _SANITIZED.get(type(channel))
        if sanitized is None:
            return  # user-defined subclass: leave it unobserved
        if isinstance(channel, Wire):
            # migrate the plain `value` attribute under the property
            channel.__dict__["_value"] = channel.__dict__.pop("value", None)
        channel.__class__ = sanitized

    # ------------------------------------------------------------------
    # hooks (called by the sanitized channels and the engine)
    # ------------------------------------------------------------------
    def on_read(self, channel: object) -> None:
        component = self.sim._ticking
        if component is not None:
            self._readers.setdefault(channel, set()).add(component)

    def on_write(self, channel: object, old: Any = _ALWAYS_CHANGED,
                 items: Any = _NO_ITEM) -> None:
        if channel not in self._staged:
            self._staged[channel] = old
        component = self.sim._ticking
        if component is not None:
            self._tick_writes.append(channel)
            if self.race_mode is not None and items is not _NO_ITEM:
                self._cycle_writers.setdefault(channel, []).append(
                    (component, items))

    def on_drive_attempt(self, wire: object, value: Any) -> bool:
        """SAN004 pre-check for wire drives, run *before* the write is
        staged (the generic double-drive ``SimError`` would otherwise
        fire first without naming the two drivers).  Returns False when
        the write must be dropped (``record`` mode conflict)."""
        if self.race_mode is None:
            return True
        component = self.sim._ticking
        if component is None:
            return True  # event/harness writes are exempt
        writers = self._cycle_writers.setdefault(wire, [])
        conflict = next((c for c, _ in writers if c is not component), None)
        writers.append((component, value))
        if conflict is None:
            return True
        if self.race_mode == "raise":
            raise SanitizerError(
                "SAN004",
                f"wire {_name(wire)} written by {_name(component)} in "
                f"cycle {self.sim.cycle}, but {_name(conflict)} already "
                f"wrote it this cycle — the committed value depends on "
                f"tick order (static counterpart: QL007); give each "
                f"driver its own wire or arbitrate through a FIFO")
        self._record("SAN004", wire, component)
        return False

    def _record(self, rule: str, channel: object, component: object) -> None:
        key = (rule, str(getattr(channel, "name", channel)),
               str(getattr(component, "name", component)))
        self.violations[key] = self.violations.get(key, 0) + 1

    def on_pop(self, fifo: "FIFO") -> None:
        component = self.sim._ticking
        if component is None:
            return
        owner = self._pop_owner.setdefault(fifo, component)
        if owner is not component:
            if self.race_mode == "record":
                self._record("SAN003", fifo, component)
                return
            raise SanitizerError(
                "SAN003",
                f"FIFO {fifo.name!r} popped by component "
                f"{getattr(component, 'name', component)!r} but its read "
                f"port is owned by {getattr(owner, 'name', owner)!r} "
                f"(first pop, cycle-order dependent) — a FIFO has exactly "
                f"one consumer; give each consumer its own FIFO",
            )

    def on_tick_end(self, component: object, hint: object) -> None:
        """SAN002: a tick that stages writes must not report quiescence."""
        writes, self._tick_writes = self._tick_writes, []
        if not writes:
            return
        quiescent = hint is SLEEP or (
            isinstance(hint, int) and not isinstance(hint, bool)
            and hint > self.sim.cycle + 1)
        if quiescent:
            names = ", ".join(sorted(
                repr(getattr(c, "name", c)) for c in set(writes)))
            raise SanitizerError(
                "SAN002",
                f"component {getattr(component, 'name', component)!r} "
                f"staged write(s) on channel(s) {names} in cycle "
                f"{self.sim.cycle} and reported quiescence "
                f"({'SLEEP' if hint is SLEEP else f'wake at {hint}'}) in "
                f"the same tick — a quiescent tick must be an observable "
                f"no-op; return None this cycle and sleep on the next",
            )

    def end_cycle(self) -> None:
        """SAN001: after the commit phase, every changed channel must
        have woken (or scheduled) each sleeping component that reads it.
        In race mode, also run the per-cycle SAN004/SAN005 checks."""
        if self.race_mode is not None and self._cycle_writers:
            self._check_races()
        if not self._staged:
            return
        staged, self._staged = self._staged, {}
        visible_at = self.sim.cycle + 1
        for channel, old in staged.items():
            if old is not _ALWAYS_CHANGED:
                try:
                    if old == getattr(channel, "value", _ALWAYS_CHANGED):
                        continue  # committed value did not change
                except Exception:
                    pass  # un-comparable values: treat as changed
            for reader in self._readers.get(channel, ()):
                asleep = getattr(reader, "_asleep", False)
                wake_at = getattr(reader, "_wake_at", None)
                if asleep and (wake_at is None or wake_at > visible_at):
                    raise SanitizerError(
                        "SAN001",
                        f"channel {getattr(channel, 'name', channel)!r} "
                        f"committed a change in cycle {self.sim.cycle} but "
                        f"component {getattr(reader, 'name', reader)!r}, "
                        f"which reads it, is asleep "
                        f"{'for good' if wake_at is None else f'until cycle {wake_at}'} "
                        f"and was not woken — it would observe the change "
                        f"on the slow path but not on the fast path; "
                        f"watch() the channel before sleeping",
                    )

    def _check_races(self) -> None:
        """End-of-cycle SAN004 (multi-writer FIFOs) and SAN005 (shadow
        double-commit in reversed writer order) checks."""
        writers_by_channel, self._cycle_writers = self._cycle_writers, {}
        for channel, writes in writers_by_channel.items():
            # contiguous per-writer groups, in arrival (tick) order
            groups: List[Tuple[object, List[Any]]] = []
            for component, staged in writes:
                if groups and groups[-1][0] is component:
                    groups[-1][1].append(staged)
                else:
                    groups.append((component, [staged]))
            if len({id(c) for c, _ in groups}) < 2:
                continue  # single writer: its own order is its business
            if isinstance(channel, FIFO):
                names = ", ".join(sorted(_name(c) for c, _ in groups))
                if self.race_mode == "raise":
                    raise SanitizerError(
                        "SAN004",
                        f"FIFO {_name(channel)} pushed by multiple "
                        f"components in cycle {self.sim.cycle} ({names}); "
                        f"the committed item order depends on tick order "
                        f"(static counterpart: QL008) — give each "
                        f"producer its own write port")
                for component, _ in groups:
                    self._record("SAN004", channel, component)
            # SAN005 shadow double-commit: replay the writer groups in
            # reversed order and compare the committed outcome.
            forward = [item for _, staged in groups for item in staged]
            reverse = [item for _, staged in reversed(groups)
                       for item in staged]
            if isinstance(channel, FIFO):
                order_sensitive = forward != reverse
            else:
                # wires: last write wins; record mode dropped the
                # conflicting stores, so compare first-vs-last values
                try:
                    order_sensitive = forward[0] != reverse[0]
                except Exception:
                    order_sensitive = True  # un-comparable: assume yes
            if order_sensitive:
                if self.race_mode == "raise":
                    raise SanitizerError(
                        "SAN005",
                        f"channel {_name(channel)} commit is "
                        f"order-sensitive in cycle {self.sim.cycle}: "
                        f"replaying its staged writes with the writer "
                        f"order reversed commits a different result — "
                        f"tick order is reaching simulation state")
                for component, _ in groups:
                    self._record("SAN005", channel, component)

    # ------------------------------------------------------------------
    def forget(self, component: object) -> None:
        """Drop a component from all read sets and pop ownership (used
        when a module is reconfigured out of the simulation)."""
        for readers in self._readers.values():
            readers.discard(component)
        for fifo, owner in list(self._pop_owner.items()):
            if owner is component:
                del self._pop_owner[fifo]
        for writes in self._cycle_writers.values():
            writes[:] = [(c, staged) for c, staged in writes
                         if c is not component]


# ----------------------------------------------------------------------
# recording channel subclasses
# ----------------------------------------------------------------------
class _RecordingWireMixin:
    """Read/write recording shared by sanitized wires."""

    @property
    def value(self) -> Any:
        san = self._sim.sanitizer
        if san is not None:
            san.on_read(self)
        return self._value

    @value.setter
    def value(self, new: Any) -> None:
        # commit-phase and init-time stores; not a component write
        self._value = new

    def drive(self, value: Any) -> None:
        old = self._value
        san = self._sim.sanitizer
        if san is not None and not san.on_drive_attempt(self, value):
            return  # record-mode conflict: write dropped, race recorded
        super().drive(value)
        if san is not None:
            san.on_write(self, old)

    def driven(self) -> bool:
        san = self._sim.sanitizer
        if san is not None:
            san.on_read(self)
        return super().driven()


class _SanitizedWire(_RecordingWireMixin, Wire):
    pass


class _SanitizedPulseWire(_RecordingWireMixin, PulseWire):
    pass


class _SanitizedFIFO(FIFO):
    def _on_read(self) -> None:
        san = self._sim.sanitizer
        if san is not None:
            san.on_read(self)

    def _on_write(self, item: Any = _ALWAYS_CHANGED) -> None:
        san = self._sim.sanitizer
        if san is not None:
            san.on_write(self, items=item)

    # -- write port ----------------------------------------------------
    def push(self, item: Any) -> None:
        super().push(item)
        self._on_write(item)

    def try_push(self, item: Any) -> bool:
        ok = super().try_push(item)
        if ok:
            self._on_write(item)
        return ok

    def push_all(self, items: Iterable[Any]) -> None:
        items = list(items)
        super().push_all(items)
        for item in items:
            self._on_write(item)

    def can_push(self, n: int = 1) -> bool:
        self._on_read()
        return super().can_push(n)

    # -- read port -----------------------------------------------------
    def __len__(self) -> int:
        self._on_read()
        return super().__len__()

    def __bool__(self) -> bool:
        self._on_read()
        return super().__bool__()

    def __iter__(self):
        self._on_read()
        return super().__iter__()

    def peek(self) -> Optional[Any]:
        self._on_read()
        return super().peek()

    def pop(self) -> Any:
        self._on_read()
        san = self._sim.sanitizer
        if san is not None:
            san.on_pop(self)
        return super().pop()

    def try_pop(self) -> Optional[Any]:
        self._on_read()
        san = self._sim.sanitizer
        if san is not None:
            san.on_pop(self)
        return super().try_pop()


_SANITIZED = {
    Wire: _SanitizedWire,
    PulseWire: _SanitizedPulseWire,
    FIFO: _SanitizedFIFO,
}
