"""SARIF 2.1.0 export for ``repro lint`` findings.

Produces the subset of SARIF that GitHub code scanning consumes: one
``run`` with a tool driver, a rule table (``tool.driver.rules`` with
stable indices), and one ``result`` per finding carrying
``ruleId``/``ruleIndex``, a ``level`` derived from
:attr:`~repro.lint.findings.Severity.sarif_level`, a physical location,
and a ``partialFingerprints`` entry built from the finding's
line-independent :meth:`~repro.lint.findings.Finding.baseline_key` so
re-runs match results across unrelated edits.

:func:`validate_sarif` checks the structural constraints of the 2.1.0
schema that matter for upload (required properties, index consistency,
level vocabulary) without needing a JSON-schema package — CI runs it
against the artifact before upload.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.lint.findings import Finding, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
_TOOL_NAME = "repro-simlint"
_LEVELS = {"none", "note", "warning", "error"}


def _fingerprint(finding: Finding) -> str:
    blob = "\x1f".join(str(part) for part in finding.baseline_key())
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def to_sarif(findings: Sequence[Finding],
             rules: Mapping[str, Tuple[Severity, str]],
             tool_version: str = "0") -> Dict[str, object]:
    """Render ``findings`` as a SARIF 2.1.0 log object.

    ``rules`` is the merged rule table (id -> (default severity,
    summary)); rules never fired still appear in the driver so code
    scanning can show them as "passing".
    """
    rule_ids = sorted(set(rules) | {f.rule for f in findings})
    index_of = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    driver_rules: List[Dict[str, object]] = []
    for rule_id in rule_ids:
        severity, summary = rules.get(
            rule_id, (Severity.WARNING, "unregistered rule"))
        driver_rules.append({
            "id": rule_id,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": severity.sarif_level},
        })
    results: List[Dict[str, object]] = []
    for finding in findings:
        results.append({
            "ruleId": finding.rule,
            "ruleIndex": index_of[finding.rule],
            "level": finding.severity.sarif_level,
            "message": {"text": f"{finding.symbol}: {finding.message}"},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(finding.line, 1)},
                },
                "logicalLocations": [{
                    "fullyQualifiedName": finding.symbol,
                }],
            }],
            "partialFingerprints": {
                "simlintBaselineKey/v1": _fingerprint(finding),
            },
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": _TOOL_NAME,
                "version": tool_version,
                "informationUri":
                    "https://example.invalid/repro/docs/linting.md",
                "rules": driver_rules,
            }},
            "columnKind": "utf16CodeUnits",
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }


def validate_sarif(doc: object) -> List[str]:
    """Structural 2.1.0 validation; returns a list of problems (empty
    when the document is upload-ready)."""
    problems: List[str] = []

    def need(cond: bool, message: str) -> bool:
        if not cond:
            problems.append(message)
        return cond

    if not need(isinstance(doc, dict), "log must be a JSON object"):
        return problems
    assert isinstance(doc, dict)
    need(doc.get("version") == SARIF_VERSION,
         f"version must be {SARIF_VERSION!r}")
    runs = doc.get("runs")
    if not need(isinstance(runs, list) and len(runs) >= 1,
                "runs must be a non-empty array"):
        return problems
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        if not need(isinstance(run, dict), f"{where} must be an object"):
            continue
        driver = (run.get("tool") or {}).get("driver") \
            if isinstance(run.get("tool"), dict) else None
        if not need(isinstance(driver, dict),
                    f"{where}.tool.driver is required"):
            continue
        need(bool(driver.get("name")),
             f"{where}.tool.driver.name is required")
        rules = driver.get("rules", [])
        rule_ids: List[str] = []
        if need(isinstance(rules, list),
                f"{where}.tool.driver.rules must be an array"):
            for qi, rule in enumerate(rules):
                rwhere = f"{where}.tool.driver.rules[{qi}]"
                if not need(isinstance(rule, dict) and bool(rule.get("id")),
                            f"{rwhere}.id is required"):
                    continue
                rule_ids.append(rule["id"])
                config = rule.get("defaultConfiguration", {})
                if isinstance(config, dict) and "level" in config:
                    need(config["level"] in _LEVELS,
                         f"{rwhere}.defaultConfiguration.level "
                         f"{config['level']!r} not in {sorted(_LEVELS)}")
        results = run.get("results", [])
        if not need(isinstance(results, list),
                    f"{where}.results must be an array"):
            continue
        for si, result in enumerate(results):
            swhere = f"{where}.results[{si}]"
            if not need(isinstance(result, dict),
                        f"{swhere} must be an object"):
                continue
            message = result.get("message")
            need(isinstance(message, dict) and bool(message.get("text")),
                 f"{swhere}.message.text is required")
            level = result.get("level")
            if level is not None:
                need(level in _LEVELS,
                     f"{swhere}.level {level!r} not in {sorted(_LEVELS)}")
            rule_id = result.get("ruleId")
            index = result.get("ruleIndex")
            if rule_id is not None and rule_ids:
                need(rule_id in rule_ids,
                     f"{swhere}.ruleId {rule_id!r} not in driver rules")
            if index is not None:
                ok = (isinstance(index, int)
                      and 0 <= index < max(len(rule_ids), 1))
                need(ok, f"{swhere}.ruleIndex {index!r} out of range")
                if ok and rule_id is not None and rule_ids:
                    need(rule_ids[index] == rule_id,
                         f"{swhere}.ruleIndex does not match ruleId")
            for li, loc in enumerate(result.get("locations", [])):
                lwhere = f"{swhere}.locations[{li}]"
                phys = loc.get("physicalLocation") \
                    if isinstance(loc, dict) else None
                if not need(isinstance(phys, dict),
                            f"{lwhere}.physicalLocation is required"):
                    continue
                art = phys.get("artifactLocation")
                need(isinstance(art, dict) and bool(art.get("uri")),
                     f"{lwhere}.physicalLocation.artifactLocation.uri "
                     f"is required")
                region = phys.get("region")
                if isinstance(region, dict) and "startLine" in region:
                    need(isinstance(region["startLine"], int)
                         and region["startLine"] >= 1,
                         f"{lwhere}.region.startLine must be >= 1")
    return problems
