"""AST-based static checks of the quiescence contract (``repro lint``).

The activity-driven kernel's golden-equivalence guarantee (see
``repro.sim.engine``) rests on conventions that Python cannot enforce at
runtime without cost: a component that sleeps must ``watch()`` every
channel it reads, ticks must draw randomness from seeded streams, writes
must be staged through the channel primitives, and no component may
reach into another's private state.  This module walks every
:class:`~repro.sim.component.Component` subclass it can find and flags
violations *before* they become silent fast-path divergences.

Rules
-----

=======  ========  =====================================================
rule     severity  meaning
=======  ========  =====================================================
QL001    error     channel read in a tick path of a component that can
                   sleep, with no matching ``watch()``/``subscribe()``
QL002    error     nondeterministic source (``random``, ``time``,
                   ``datetime``) called from a component method
                   (warning for a bare module-level ``import random``)
QL003    error     staged write (``drive``/``push``/...) from
                   ``__init__`` or a ``@property`` — outside any
                   tick/event context
QL004    error     mutation of another object's private (underscore)
                   attribute from a component method
QL005    error     ``tick()`` signature that cannot return a
                   :data:`~repro.sim.component.QuiescenceHint` (wrong
                   arity, ``-> None``/``-> bool``/``-> str`` annotation,
                   or a literal bool/str/float return)
QL006    error     a component that installs a batch kernel (declares
                   ``VEC_FIELDS``/``VEC_SHARED`` or defines
                   ``_make_vec_kernel``) whose object-path ``tick``
                   call-graph mutates a private ``self._x`` attribute
                   not listed in either declaration — the kernel's
                   stretch replay would not account for it
QL012    error     control-plane code (``repro.control``) touching
                   another object's private (underscore) state —
                   adaptive actions must go through public architecture
                   entry points (``reassign_slot``, ``add_switch``,
                   ``set_channel_cap``, ...) so every actuation stays
                   observable and rollback-safe
QL000    error     file failed to parse
=======  ========  =====================================================

Static analysis is necessarily approximate: channels are recognized when
constructed (or annotated) as ``Wire``/``PulseWire``/``FIFO`` attributes
of ``self``, "can sleep" means the class references :data:`SLEEP` or
``tick`` returns an integer expression, and aliasing through local
variables is not tracked.  The runtime sanitizer
(:mod:`repro.lint.runtime`) covers the dynamic remainder.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding, Severity, sort_findings

#: rule id -> (default severity, one-line summary)
RULES: Dict[str, Tuple[Severity, str]] = {
    "QL000": (Severity.ERROR, "file failed to parse"),
    "QL001": (Severity.ERROR,
              "channel read in a sleeping component's tick path without watch()"),
    "QL002": (Severity.ERROR,
              "nondeterministic source used instead of repro.sim.rng"),
    "QL003": (Severity.ERROR,
              "staged write (drive/push) outside tick/event contexts"),
    "QL004": (Severity.ERROR,
              "direct mutation of another object's private state"),
    "QL005": (Severity.ERROR,
              "tick() signature cannot return a QuiescenceHint"),
    "QL006": (Severity.ERROR,
              "batch-kernel component's tick mutates state outside "
              "VEC_FIELDS/VEC_SHARED"),
    "QL012": (Severity.ERROR,
              "control-plane code touches another object's private "
              "state instead of a public entry point"),
}

_CHANNEL_CONSTRUCTORS = {"Wire", "PulseWire", "FIFO"}
_CHANNEL_ANNOTATIONS = _CHANNEL_CONSTRUCTORS | {"Channel"}
_CHANNEL_READ_CALLS = {"pop", "try_pop", "peek", "driven"}
_STAGED_WRITE_CALLS = {"drive", "push", "try_push", "push_all"}
_CONTAINER_MUTATORS = {"append", "extend", "add", "insert", "remove",
                       "clear", "update", "popleft", "pop", "discard",
                       "setdefault"}
_NONDET_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
}


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return ast.dump(node)


def _shallow_walk(root: ast.AST) -> Iterable[ast.AST]:
    """Walk ``root``'s body without descending into nested function,
    lambda, or class definitions (those run in a different context)."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(node))


def _base_names(cls: ast.ClassDef) -> Set[str]:
    names = set()
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _component_closure(classmap: Dict[str, Set[str]]) -> Set[str]:
    """Transitive (name-based) set of Component subclasses."""
    component: Set[str] = {"Component"}
    changed = True
    while changed:
        changed = False
        for name, bases in classmap.items():
            if name not in component and bases & component:
                component.add(name)
                changed = True
    return component


class _ClassInfo:
    """Everything the rules need to know about one component class."""

    def __init__(self, cls: ast.ClassDef):
        self.cls = cls
        self.methods: List[ast.FunctionDef] = [
            n for n in cls.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        self.channel_exprs = self._channel_exprs()
        self.watched = self._watched_exprs()
        self.can_sleep = self._can_sleep()
        self.vec_declared = self._vec_declaration()

    # -- channel attribute inference -----------------------------------
    def _channel_exprs(self) -> Set[str]:
        channels: Set[str] = set()
        ann_params: Dict[str, str] = {}
        for method in self.methods:
            for arg in (method.args.posonlyargs + method.args.args
                        + method.args.kwonlyargs):
                if arg.annotation is not None:
                    ann = _unparse(arg.annotation).strip("'\"")
                    if ann.split("[")[0].split(".")[-1] in _CHANNEL_ANNOTATIONS:
                        ann_params[arg.arg] = ann
        for method in self.methods:
            for node in ast.walk(method):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    ann = _unparse(node.annotation).strip("'\"")
                    if (isinstance(target, ast.Attribute)
                            and ann.split("[")[0].split(".")[-1]
                            in _CHANNEL_ANNOTATIONS):
                        channels.add(_unparse(target))
                if not isinstance(target, ast.Attribute) or value is None:
                    continue
                if isinstance(value, ast.Call):
                    fn = value.func
                    name = fn.id if isinstance(fn, ast.Name) else (
                        fn.attr if isinstance(fn, ast.Attribute) else "")
                    if name in _CHANNEL_CONSTRUCTORS:
                        channels.add(_unparse(target))
                elif isinstance(value, ast.Name) and value.id in ann_params:
                    channels.add(_unparse(target))
        return channels

    # -- watch()/subscribe() coverage ----------------------------------
    def _watched_exprs(self) -> Set[str]:
        watched: Set[str] = set()
        for node in ast.walk(self.cls):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if not isinstance(fn, ast.Attribute):
                continue
            if fn.attr == "watch" and node.args:
                watched.add(_unparse(node.args[0]))
            elif fn.attr == "subscribe" and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Name) and arg.id == "self":
                    watched.add(_unparse(fn.value))
        return watched

    # -- batch-kernel (vec) declaration --------------------------------
    def _vec_declaration(self) -> Optional[Set[str]]:
        """The union of the class's ``VEC_FIELDS``/``VEC_SHARED``
        string tuples, or None when the class does not opt into the
        batch-kernel contract (no declaration and no
        ``_make_vec_kernel``)."""
        declared: Set[str] = set()
        found = any(m.name == "_make_vec_kernel" for m in self.methods)
        for node in self.cls.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if (isinstance(target, ast.Name)
                        and target.id in ("VEC_FIELDS", "VEC_SHARED")):
                    found = True
                    if isinstance(value, (ast.Tuple, ast.List)):
                        declared.update(
                            elt.value for elt in value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                        )
        return declared if found else None

    # -- quiescence capability -----------------------------------------
    def _can_sleep(self) -> bool:
        for node in ast.walk(self.cls):
            if isinstance(node, ast.Name) and node.id == "SLEEP":
                return True
            if isinstance(node, ast.Attribute) and node.attr == "SLEEP":
                return True
        tick = next((m for m in self.methods if m.name == "tick"), None)
        if tick is not None:
            for node in _shallow_walk(tick):
                if isinstance(node, ast.Return) and isinstance(
                        node.value, (ast.BinOp, ast.Constant)):
                    value = node.value
                    if isinstance(value, ast.Constant):
                        if isinstance(value.value, int) and not isinstance(
                                value.value, bool):
                            return True
                    else:
                        return True
        return False


class _ComponentChecker:
    """Applies QL001-QL005 to one component class."""

    def __init__(self, path: str, info: _ClassInfo):
        self.path = path
        self.info = info
        self.findings: List[Finding] = []

    def _add(self, rule: str, node: ast.AST, symbol: str, message: str,
             severity: Optional[Severity] = None) -> None:
        self.findings.append(Finding(
            rule=rule,
            severity=severity or RULES[rule][0],
            path=self.path,
            line=getattr(node, "lineno", 0),
            symbol=symbol,
            message=message,
        ))

    def run(self) -> List[Finding]:
        for method in self.info.methods:
            symbol = f"{self.info.cls.name}.{method.name}"
            self._check_nondeterminism(method, symbol)
            self._check_foreign_mutation(method, symbol)
            if method.name != "__init__":
                self._check_unwatched_reads(method, symbol)
            if method.name == "__init__" or self._is_property(method):
                self._check_staged_writes(method, symbol)
            if method.name == "tick":
                self._check_tick_signature(method, symbol)
        self._check_vec_contract()
        return self.findings

    @staticmethod
    def _is_property(method: ast.FunctionDef) -> bool:
        for deco in method.decorator_list:
            if isinstance(deco, ast.Name) and deco.id in (
                    "property", "cached_property"):
                return True
            if isinstance(deco, ast.Attribute) and deco.attr in (
                    "setter", "getter", "cached_property"):
                return True
        return False

    # -- QL001 ----------------------------------------------------------
    def _check_unwatched_reads(self, method: ast.FunctionDef,
                               symbol: str) -> None:
        if not self.info.can_sleep:
            return
        for node in _shallow_walk(method):
            channel: Optional[str] = None
            kind = ""
            if (isinstance(node, ast.Attribute) and node.attr == "value"
                    and isinstance(node.ctx, ast.Load)):
                base = _unparse(node.value)
                if base in self.info.channel_exprs:
                    channel, kind = base, ".value"
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CHANNEL_READ_CALLS):
                base = _unparse(node.func.value)
                if base in self.info.channel_exprs:
                    channel, kind = base, f".{node.func.attr}()"
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ("len", "bool") and node.args):
                base = _unparse(node.args[0])
                if base in self.info.channel_exprs:
                    channel, kind = base, f" via {node.func.id}()"
            if channel is not None and channel not in self.info.watched:
                self._add(
                    "QL001", node, symbol,
                    f"reads {channel}{kind} but the component can sleep and "
                    f"never watch()es it — a commit on that channel will not "
                    f"wake it (fast-path divergence)",
                )

    # -- QL002 ----------------------------------------------------------
    def _check_nondeterminism(self, method: ast.FunctionDef,
                              symbol: str) -> None:
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            fn = _unparse(node.func)
            if fn.startswith("random.") or fn in _NONDET_CALLS:
                self._add(
                    "QL002", node, symbol,
                    f"calls {fn}() — use a seeded stream from "
                    f"repro.sim.rng.make_rng so runs stay reproducible",
                )

    # -- QL003 ----------------------------------------------------------
    def _check_staged_writes(self, method: ast.FunctionDef,
                             symbol: str) -> None:
        for node in _shallow_walk(method):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _STAGED_WRITE_CALLS):
                base = _unparse(node.func.value)
                if base in self.info.channel_exprs:
                    where = ("__init__" if method.name == "__init__"
                             else f"property {method.name!r}")
                    self._add(
                        "QL003", node, symbol,
                        f"stages a write ({base}.{node.func.attr}) from "
                        f"{where}; staged writes belong in tick() or a "
                        f"scheduled event, where the commit phase follows",
                    )

    # -- QL004 ----------------------------------------------------------
    @staticmethod
    def _foreign_private(node: ast.expr) -> Optional[str]:
        """Return 'expr._attr' when ``node`` is a private attribute of an
        object other than ``self``/``cls``."""
        if not isinstance(node, ast.Attribute):
            return None
        attr = node.attr
        if not attr.startswith("_") or attr.startswith("__"):
            return None
        base = _unparse(node.value)
        if base in ("self", "cls"):
            return None
        return f"{base}.{attr}"

    def _check_foreign_mutation(self, method: ast.FunctionDef,
                                symbol: str) -> None:
        for node in ast.walk(method):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CONTAINER_MUTATORS):
                hit = self._foreign_private(node.func.value)
                if hit is not None:
                    self._add(
                        "QL004", node, symbol,
                        f"mutates {hit} via .{node.func.attr}() — another "
                        f"object's private state; stage the change through "
                        f"Wire.drive/FIFO.push or a public method instead",
                    )
                continue
            for target in targets:
                hit = self._foreign_private(target)
                if hit is not None:
                    self._add(
                        "QL004", node, symbol,
                        f"assigns to {hit} — another object's private "
                        f"state; stage the change through Wire.drive/"
                        f"FIFO.push or a public method instead",
                    )

    # -- QL006 ----------------------------------------------------------
    @staticmethod
    def _self_private_root(expr: ast.expr) -> Optional[str]:
        """The ``_attr`` name when ``expr`` is (a subscript of)
        ``self._attr`` with a single-underscore name, else None."""
        while isinstance(expr, ast.Subscript):
            expr = expr.value
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"):
            attr = expr.attr
            if attr.startswith("_") and not attr.startswith("__"):
                return attr
        return None

    def _tick_reachable(self) -> List[ast.FunctionDef]:
        """Same-class methods reachable from ``tick`` through direct
        ``self.method()`` calls (base-class helpers and aliased calls
        are out of scope, matching the module's approximation rules)."""
        methods = {m.name: m for m in self.info.methods}
        if "tick" not in methods:
            return []
        seen: Set[str] = set()
        queue = ["tick"]
        while queue:
            name = queue.pop()
            if name in seen or name not in methods:
                continue
            seen.add(name)
            for node in ast.walk(methods[name]):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "self"):
                    queue.append(node.func.attr)
        return [methods[name] for name in sorted(seen)]

    def _check_vec_contract(self) -> None:
        declared = self.info.vec_declared
        if declared is None:
            return
        for method in self._tick_reachable():
            symbol = f"{self.info.cls.name}.{method.name}"
            for node in ast.walk(method):
                hits: List[Tuple[ast.AST, str, str]] = []
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                elif isinstance(node, ast.Delete):
                    targets = list(node.targets)
                elif (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _CONTAINER_MUTATORS):
                    attr = self._self_private_root(node.func.value)
                    if attr is not None:
                        hits.append((node, attr, f".{node.func.attr}()"))
                for target in targets:
                    attr = self._self_private_root(target)
                    if attr is not None:
                        hits.append((node, attr, "assignment"))
                for where, attr, how in hits:
                    if attr in declared:
                        continue
                    self._add(
                        "QL006", where, symbol,
                        f"tick path mutates self.{attr} ({how}) but the "
                        f"class installs a batch kernel and declares "
                        f"neither VEC_FIELDS nor VEC_SHARED for it — the "
                        f"kernel's stretch replay will not account for "
                        f"this state (vec/object divergence)",
                    )

    # -- QL005 ----------------------------------------------------------
    def _check_tick_signature(self, method: ast.FunctionDef,
                              symbol: str) -> None:
        args = method.args
        required = (len(args.posonlyargs) + len(args.args)
                    - len(args.defaults))
        if args.vararg is None and required != 2:
            self._add(
                "QL005", method, symbol,
                f"tick must accept exactly (self, sim); this signature has "
                f"{required} required parameter(s) and the scheduler's "
                f"tick(sim) call cannot satisfy it",
            )
        required_kwonly = sum(
            1 for d in args.kw_defaults if d is None)
        if required_kwonly:
            self._add(
                "QL005", method, symbol,
                "tick must not take required keyword-only parameters",
            )
        if method.returns is not None:
            ann = _unparse(method.returns).strip("'\"")
            if ann in ("None", "bool", "str", "float", "bytes"):
                self._add(
                    "QL005", method, symbol,
                    f"return annotation -> {ann} cannot express a "
                    f"QuiescenceHint (None | SLEEP | wake cycle); annotate "
                    f"-> QuiescenceHint (re-exported from repro.sim)",
                )
        for node in _shallow_walk(method):
            if isinstance(node, ast.Return) and isinstance(
                    node.value, ast.Constant):
                value = node.value.value
                if isinstance(value, (bool, str, float, bytes)):
                    self._add(
                        "QL005", node, symbol,
                        f"returns {value!r}, which is not a valid "
                        f"QuiescenceHint (None, SLEEP, or an int wake cycle)",
                    )


# ----------------------------------------------------------------------
# module / path drivers
# ----------------------------------------------------------------------
# QL012: the control plane mutates architectures only through public
# entry points
# ----------------------------------------------------------------------
def _is_control_path(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return any(a == "repro" and b == "control"
               for a, b in zip(parts, parts[1:]))


def _walk_without_defs(root: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body, descending into lambdas (action closures)
    but not into nested function/class definitions."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(node))


def _lint_control_module(path: str, tree: ast.Module) -> List[Finding]:
    """QL012 over every function in a ``repro.control`` module: no
    foreign private mutation, no foreign private call — adaptive
    actions stay on public architecture entry points."""
    findings: List[Finding] = []
    fp = _ComponentChecker._foreign_private

    def _add(node: ast.AST, symbol: str, detail: str) -> None:
        findings.append(Finding("QL012", Severity.ERROR, path,
                                node.lineno, symbol, detail))

    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in _walk_without_defs(func):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                hit = fp(node.func)
                if hit is not None:
                    _add(node, func.name,
                         f"calls {hit}() — a private entry point of "
                         f"another object; control actions must use "
                         f"public architecture methods so actuation "
                         f"stays observable and rollback-safe")
                    continue
                if node.func.attr in _CONTAINER_MUTATORS:
                    hit = fp(node.func.value)
                    if hit is not None:
                        _add(node, func.name,
                             f"mutates {hit} via .{node.func.attr}() — "
                             f"another object's private state; control "
                             f"actions must use public architecture "
                             f"methods")
                continue
            for target in targets:
                hit = fp(target)
                if hit is not None:
                    _add(node, func.name,
                         f"assigns to {hit} — another object's private "
                         f"state; control actions must use public "
                         f"architecture methods")
    return findings


def _lint_module(path: str, tree: ast.Module,
                 component_classes: Set[str]) -> List[Finding]:
    findings: List[Finding] = []
    classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
    has_component = any(c.name in component_classes for c in classes)
    if has_component:
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        findings.append(Finding(
                            "QL002", Severity.WARNING, path, node.lineno,
                            "<module>",
                            "imports the unseeded `random` module in a file "
                            "defining components; prefer repro.sim.rng",
                        ))
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] == "random":
                    findings.append(Finding(
                        "QL002", Severity.WARNING, path, node.lineno,
                        "<module>",
                        "imports from the unseeded `random` module in a file "
                        "defining components; prefer repro.sim.rng",
                    ))
    for cls in classes:
        if cls.name not in component_classes:
            continue
        findings.extend(
            _ComponentChecker(path, _ClassInfo(cls)).run())
    if _is_control_path(path):
        findings.extend(_lint_control_module(path, tree))
    return findings


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d != "__pycache__"
                                 and not d.startswith("."))
                for fname in sorted(files):
                    if fname.endswith(".py"):
                        out.append(os.path.join(root, fname))
        else:
            out.append(path)
    return out


def lint_paths(paths: Sequence[str]) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings."""
    files = discover_files(paths)
    parsed: List[Tuple[str, ast.Module]] = []
    findings: List[Finding] = []
    classmap: Dict[str, Set[str]] = {}
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                tree = ast.parse(fh.read(), filename=path)
        except (SyntaxError, OSError, UnicodeDecodeError) as exc:
            findings.append(Finding(
                "QL000", Severity.ERROR, path,
                getattr(exc, "lineno", 0) or 0, "<module>",
                f"could not parse: {exc}"))
            continue
        parsed.append((path, tree))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                classmap.setdefault(node.name, set()).update(
                    _base_names(node))
    component_classes = _component_closure(classmap)
    for path, tree in parsed:
        findings.extend(_lint_module(path, tree, component_classes))
    return sort_findings(findings)


def lint_source(source: str, filename: str = "<memory>") -> List[Finding]:
    """Lint a source string (test fixtures, editor integrations)."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Finding("QL000", Severity.ERROR, filename,
                        exc.lineno or 0, "<module>",
                        f"could not parse: {exc}")]
    classmap: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            classmap.setdefault(node.name, set()).update(_base_names(node))
    return sort_findings(
        _lint_module(filename, tree, _component_closure(classmap)))
