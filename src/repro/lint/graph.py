"""Whole-program component↔channel access graph.

The static rules QL001–QL006 look at one class at a time.  The race
rules (QL007–QL011, :mod:`repro.lint.race`) need the *whole program*:
which component classes read, stage, push or pop which channel objects,
after resolving inheritance (including diamonds through
``arch/base.py``-style bases), channels handed to helper classes
through constructor parameters, and writes buried in helper methods
reached from ``tick``.

This module builds that graph.  It is necessarily approximate — static
analysis of Python cannot track every alias — but the approximations
are all *sound for the repo's idioms* and documented here:

* **Channel slots** are attributes of ``self`` assigned a
  ``Wire``/``PulseWire``/``FIFO`` construction, annotated as one, or
  assigned from a constructor parameter that some call site binds to a
  known channel (constructor aliasing).  Locals are not tracked.
* **Inheritance** is name-based: a subclass inherits every base-class
  method and channel slot not shadowed by its own; diamond bases are
  visited once.  Each *concrete* class owns its own copy of an
  inherited slot (two siblings inheriting ``Base._bus`` do **not**
  share a channel node — every instance constructs its own), while an
  *aliased* slot shares the canonical node of the channel that was
  passed in.
* **Helper methods**: accesses anywhere in a class's effective method
  table are attributed to the concrete class, and methods reachable
  from ``tick`` through ``self.helper(...)`` calls (including inherited
  helpers) are marked as tick-path accesses.
* **Canonicalization** is union-find over ``(owner_class, attr)``
  slots: aliasing unions the callee's slot with the caller's, and the
  root prefers the slot whose construction (and therefore kind) was
  seen.

``repro lint --graph`` dumps the result as DOT or JSON
(:meth:`AccessGraph.to_dot` / :meth:`AccessGraph.to_json`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.static_rules import discover_files

_CHANNEL_CONSTRUCTORS = {"Wire": "wire", "PulseWire": "pulse", "FIFO": "fifo"}
_CHANNEL_ANNOTATIONS = {"Wire": "wire", "PulseWire": "pulse", "FIFO": "fifo",
                        "Channel": "channel"}

#: channel method name -> access op
_OP_BY_CALL = {
    "drive": "stage",
    "push": "push", "try_push": "push", "push_all": "push",
    "pop": "pop", "try_pop": "pop",
    "peek": "read", "driven": "read", "can_push": "read",
}

_READ_BUILTINS = {"len", "bool", "list", "iter", "tuple"}

ChannelKey = Tuple[str, str]  # (owner class, attribute)


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return ast.dump(node)


def _ann_kind(annotation: Optional[ast.expr]) -> Optional[str]:
    """The channel kind named by a type annotation, if any."""
    if annotation is None:
        return None
    text = _unparse(annotation).strip("'\"")
    name = text.split("[")[0].split(".")[-1].strip()
    if text.startswith("Optional[") or text.startswith("Union["):
        inner = text.split("[", 1)[1].rstrip("]").split(",")[0]
        name = inner.split(".")[-1].strip()
    return _CHANNEL_ANNOTATIONS.get(name)


@dataclass
class ChannelNode:
    """One canonical channel in the graph."""

    key: ChannelKey
    kind: str = "channel"          # wire | pulse | fifo | channel
    path: str = ""
    line: int = 0
    aliases: Set[ChannelKey] = field(default_factory=set)

    @property
    def label(self) -> str:
        return f"{self.key[0]}.{self.key[1]}"


@dataclass
class Access:
    """One component-class → channel access edge."""

    component: str       # accessing (concrete) class
    channel: ChannelKey  # canonical channel key
    op: str              # read | stage | push | pop | watch
    path: str
    line: int
    method: str          # "Class.method" the access appears in
    tick_path: bool      # reachable from Class.tick via self-calls
    via: Tuple[str, ...] = ()  # helper-call chain from the entry method

    def to_dict(self) -> Dict[str, object]:
        return {
            "component": self.component,
            "channel": f"{self.channel[0]}.{self.channel[1]}",
            "op": self.op,
            "path": self.path,
            "line": self.line,
            "method": self.method,
            "tick_path": self.tick_path,
            "via": list(self.via),
        }


@dataclass
class ClassDecl:
    """A parsed class and its resolution context."""

    name: str
    path: str
    node: ast.ClassDef
    bases: List[str]
    #: method name -> (defining class name, defining path, FunctionDef)
    methods: Dict[str, Tuple[str, str, ast.FunctionDef]] = field(
        default_factory=dict)
    #: attr -> channel kind, for slots constructed/annotated in this mro
    own_slots: Dict[str, str] = field(default_factory=dict)
    #: attr -> (path, line) of the construction/annotation site
    slot_sites: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: attr -> constructor parameter name it aliases (self.x = param)
    param_slots: Dict[str, str] = field(default_factory=dict)
    #: attr -> class name, for object-typed attributes (self.x = Cls(...))
    obj_types: Dict[str, str] = field(default_factory=dict)
    is_component: bool = False
    #: class-level VEC_FIELDS/VEC_SHARED string declarations (or None)
    vec_declared: Optional[Set[str]] = None
    vec_fields: Set[str] = field(default_factory=set)
    #: class-level KEY = "..." value, if any (architecture key)
    arch_key: Optional[str] = None
    #: methods reachable from tick via self-calls
    tick_reachable: Set[str] = field(default_factory=set)


class AccessGraph:
    """The resolved whole-program graph (see module docstring)."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassDecl] = {}
        self.channels: Dict[ChannelKey, ChannelNode] = {}
        self.accesses: List[Access] = []
        #: module-level ``NAME = {"key": ClassName, ...}`` registries
        #: (e.g. ``_POLICIES`` in faults/policies.py), merged across files
        self.registries: Dict[str, Dict[str, str]] = {}
        #: union-find parent map over channel slot keys
        self._parent: Dict[ChannelKey, ChannelKey] = {}

    # -- union-find ----------------------------------------------------
    def _find(self, key: ChannelKey) -> ChannelKey:
        parent = self._parent
        root = key
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(key, key) != key:
            parent[key], key = root, parent[key]
        return root

    def _union(self, alias: ChannelKey, target: ChannelKey) -> None:
        ra, rt = self._find(alias), self._find(target)
        if ra != rt:
            self._parent[ra] = rt

    def resolve(self, key: ChannelKey) -> ChannelKey:
        """Canonical key for a channel slot."""
        return self._find(key)

    # -- queries -------------------------------------------------------
    def accesses_by_channel(self) -> Dict[ChannelKey, List[Access]]:
        out: Dict[ChannelKey, List[Access]] = {}
        for access in self.accesses:
            out.setdefault(access.channel, []).append(access)
        return out

    def components(self) -> List[str]:
        return sorted(n for n, c in self.classes.items() if c.is_component)

    # -- exports -------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "schema": "repro.lint.graph/1",
            "components": [
                {"name": name, "path": decl.path,
                 "arch_key": decl.arch_key,
                 "tick_reachable": sorted(decl.tick_reachable)}
                for name, decl in sorted(self.classes.items())
                if decl.is_component
            ],
            "channels": [
                {"id": node.label, "kind": node.kind,
                 "path": node.path, "line": node.line,
                 "aliases": sorted(f"{o}.{a}" for o, a in node.aliases)}
                for _, node in sorted(self.channels.items())
            ],
            "edges": [a.to_dict() for a in self.accesses],
        }

    def to_dot(self) -> str:
        """GraphViz DOT rendering: components are boxes, channels are
        ellipses, edge style encodes the access op."""
        style = {"stage": 'color="red"', "push": 'color="orange"',
                 "pop": 'color="blue"', "read": 'color="gray50"',
                 "watch": 'color="green" style="dashed"'}
        lines = ["digraph simlint_access {", "  rankdir=LR;"]
        comps = {a.component for a in self.accesses}
        for comp in sorted(comps):
            lines.append(f'  "{comp}" [shape=box];')
        for key in sorted({a.channel for a in self.accesses}):
            node = self.channels.get(key)
            kind = node.kind if node else "channel"
            lines.append(
                f'  "{key[0]}.{key[1]}" [shape=ellipse label='
                f'"{key[0]}.{key[1]}\\n({kind})"];')
        seen: Set[Tuple[str, ChannelKey, str]] = set()
        for access in self.accesses:
            sig = (access.component, access.channel, access.op)
            if sig in seen:
                continue
            seen.add(sig)
            attrs = style.get(access.op, "")
            src, dst = access.component, f"{access.channel[0]}.{access.channel[1]}"
            if access.op in ("read", "pop"):
                lines.append(f'  "{dst}" -> "{src}" '
                             f'[label="{access.op}" {attrs}];')
            else:
                lines.append(f'  "{src}" -> "{dst}" '
                             f'[label="{access.op}" {attrs}];')
        lines.append("}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# builder
# ----------------------------------------------------------------------
class _GraphBuilder:
    def __init__(self) -> None:
        self.graph = AccessGraph()
        self.errors: List[Finding] = []
        self._trees: List[Tuple[str, ast.Module]] = []

    # -- phase 1: parse and register classes ---------------------------
    def add_source(self, source: str, path: str) -> None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.errors.append(Finding(
                "QL000", Severity.ERROR, path, exc.lineno or 0,
                "<module>", f"could not parse: {exc}"))
            return
        self._trees.append((path, tree))
        for stmt in tree.body:
            # module-level str->ClassName dict registries (QL011 input)
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Dict)):
                entries: Dict[str, str] = {}
                for k, v in zip(stmt.value.keys, stmt.value.values):
                    if (isinstance(k, ast.Constant) and isinstance(k.value, str)
                            and isinstance(v, ast.Name)):
                        entries[k.value] = v.id
                if entries and len(entries) == len(stmt.value.keys):
                    self.graph.registries.setdefault(
                        stmt.targets[0].id, {}).update(entries)
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                bases = []
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        bases.append(base.id)
                    elif isinstance(base, ast.Attribute):
                        bases.append(base.attr)
                # name collisions across files: first declaration wins
                # (the repo has none; fixtures should not rely on them)
                self.graph.classes.setdefault(
                    node.name, ClassDecl(node.name, path, node, bases))

    def add_file(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                self.add_source(fh.read(), path)
        except (OSError, UnicodeDecodeError) as exc:
            self.errors.append(Finding(
                "QL000", Severity.ERROR, path, 0, "<module>",
                f"could not read: {exc}"))

    # -- phase 2: resolve hierarchy ------------------------------------
    def resolve(self) -> AccessGraph:
        classes = self.graph.classes
        # component closure (name-based, matching static_rules)
        component: Set[str] = {"Component"}
        changed = True
        while changed:
            changed = False
            for name, decl in classes.items():
                if name not in component and set(decl.bases) & component:
                    component.add(name)
                    changed = True
        for name, decl in classes.items():
            decl.is_component = name in component

        for decl in classes.values():
            self._build_method_table(decl)
        for decl in classes.values():
            self._scan_class_body(decl)
            self._scan_slots(decl)
        for decl in classes.values():
            decl.tick_reachable = self._reachable_from(decl, "tick")
        # constructor aliasing needs every class's slots known first
        for decl in classes.values():
            self._bind_call_sites(decl)
        self._promote_param_slots()
        for decl in classes.values():
            self._collect_accesses(decl)
        return self.graph

    def _build_method_table(self, decl: ClassDecl) -> None:
        """Effective methods: own first, then BFS over bases (diamond
        bases visited once; earlier bases win, approximating the MRO)."""
        classes = self.graph.classes
        seen_cls: Set[str] = set()
        queue: List[str] = [decl.name]
        while queue:
            name = queue.pop(0)
            if name in seen_cls or name not in classes:
                continue
            seen_cls.add(name)
            current = classes[name]
            for item in current.node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    decl.methods.setdefault(
                        item.name, (name, current.path, item))
            queue.extend(current.bases)

    def _scan_class_body(self, decl: ClassDecl) -> None:
        """Class-level declarations: VEC_FIELDS/VEC_SHARED and KEY."""
        declared: Set[str] = set()
        fields: Set[str] = set()
        found = "_make_vec_kernel" in decl.methods
        for ancestor in self._mro(decl):
            for node in ancestor.node.body:
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id in ("VEC_FIELDS", "VEC_SHARED"):
                        found = True
                        if isinstance(value, (ast.Tuple, ast.List)):
                            names = {elt.value for elt in value.elts
                                     if isinstance(elt, ast.Constant)
                                     and isinstance(elt.value, str)}
                            declared.update(names)
                            if target.id == "VEC_FIELDS":
                                fields.update(names)
                    elif (target.id == "KEY" and decl.arch_key is None
                            and isinstance(value, ast.Constant)
                            and isinstance(value.value, str)):
                        decl.arch_key = value.value
        decl.vec_declared = declared if found else None
        decl.vec_fields = fields

    def _mro(self, decl: ClassDecl) -> List[ClassDecl]:
        classes = self.graph.classes
        out: List[ClassDecl] = []
        seen: Set[str] = set()
        queue = [decl.name]
        while queue:
            name = queue.pop(0)
            if name in seen or name not in classes:
                continue
            seen.add(name)
            out.append(classes[name])
            queue.extend(classes[name].bases)
        return out

    def _scan_slots(self, decl: ClassDecl) -> None:
        """Channel slots and object-typed attributes of one class, from
        its *effective* method table (inherited ``__init__`` included)."""
        classes = self.graph.classes
        for mname, (def_cls, def_path, fn) in decl.methods.items():
            ann_params: Dict[str, str] = {}
            typed_params: Dict[str, str] = {}
            for arg in (fn.args.posonlyargs + fn.args.args
                        + fn.args.kwonlyargs):
                kind = _ann_kind(arg.annotation)
                if kind is not None:
                    ann_params[arg.arg] = kind
                elif arg.annotation is not None:
                    tname = _unparse(arg.annotation).strip("'\"")
                    tname = tname.split("[")[0].split(".")[-1]
                    if tname in classes:
                        typed_params[arg.arg] = tname
            for node in ast.walk(fn):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                ann: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value, ann = node.target, node.value, node.annotation
                else:
                    continue
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                attr = target.attr
                kind = _ann_kind(ann)
                if kind is not None:
                    self._add_slot(decl, attr, kind, def_path, node.lineno)
                if isinstance(value, ast.Call):
                    fname = (value.func.id if isinstance(value.func, ast.Name)
                             else value.func.attr
                             if isinstance(value.func, ast.Attribute) else "")
                    if fname in _CHANNEL_CONSTRUCTORS:
                        self._add_slot(decl, attr,
                                       _CHANNEL_CONSTRUCTORS[fname],
                                       def_path, node.lineno)
                    elif fname in classes:
                        decl.obj_types.setdefault(attr, fname)
                elif isinstance(value, ast.Name):
                    pname = value.id
                    if pname in ann_params:
                        self._add_slot(decl, attr, ann_params[pname],
                                       def_path, node.lineno)
                        decl.param_slots.setdefault(attr, pname)
                    elif pname in typed_params:
                        decl.obj_types.setdefault(attr, typed_params[pname])
                    elif mname == "__init__":
                        params = {a.arg for a in
                                  (fn.args.posonlyargs + fn.args.args
                                   + fn.args.kwonlyargs)}
                        if pname in params:
                            # potential constructor alias; promoted to a
                            # channel slot only if a call site binds one
                            decl.param_slots.setdefault(attr, pname)

    def _add_slot(self, decl: ClassDecl, attr: str, kind: str,
                  path: str, line: int) -> None:
        if attr not in decl.own_slots or decl.own_slots[attr] == "channel":
            decl.own_slots[attr] = kind
            decl.slot_sites[attr] = (path, line)

    def _reachable_from(self, decl: ClassDecl, entry: str) -> Set[str]:
        if entry not in decl.methods:
            return set()
        seen: Set[str] = set()
        queue = [entry]
        while queue:
            name = queue.pop()
            if name in seen or name not in decl.methods:
                continue
            seen.add(name)
            _, _, fn = decl.methods[name]
            for node in ast.walk(fn):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "self"):
                    queue.append(node.func.attr)
        return seen

    # -- phase 3: constructor aliasing ---------------------------------
    def _init_params(self, decl: ClassDecl) -> List[str]:
        if "__init__" not in decl.methods:
            return []
        _, _, fn = decl.methods["__init__"]
        names = [a.arg for a in fn.args.posonlyargs + fn.args.args]
        return names[1:] if names and names[0] == "self" else names

    def _bind_call_sites(self, decl: ClassDecl) -> None:
        """Find ``Callee(...)`` constructions inside ``decl``'s methods
        and union callee param-slots with the channels passed in."""
        classes = self.graph.classes
        for mname, (def_cls, _path, fn) in decl.methods.items():
            if def_cls != decl.name:
                continue  # call sites are bound once, in the definer
            for node in ast.walk(fn):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id in classes):
                    continue
                callee = classes[node.func.id]
                params = self._init_params(callee)
                bound: Dict[str, ast.expr] = {}
                for i, arg in enumerate(node.args):
                    if i < len(params):
                        bound[params[i]] = arg
                for kw in node.keywords:
                    if kw.arg is not None:
                        bound[kw.arg] = kw.value
                for attr, pname in callee.param_slots.items():
                    expr = bound.get(pname)
                    if expr is None:
                        continue
                    src_key = self._channel_ref(decl, expr)
                    if src_key is not None:
                        self.graph._union((callee.name, attr), src_key)

    def _channel_ref(self, decl: ClassDecl,
                     expr: ast.expr) -> Optional[ChannelKey]:
        """Resolve an expression in ``decl``'s context to a channel slot
        key (``self.x`` or ``self.obj.x``), else None."""
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"):
            if expr.attr in self._all_slots(decl):
                return (decl.name, expr.attr)
        elif (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Attribute)
                and isinstance(expr.value.value, ast.Name)
                and expr.value.value.id == "self"):
            owner_type = decl.obj_types.get(expr.value.attr)
            if owner_type is not None:
                owner = self.graph.classes.get(owner_type)
                if owner is not None and expr.attr in self._all_slots(owner):
                    return (owner_type, expr.attr)
        return None

    def _all_slots(self, decl: ClassDecl) -> Dict[str, str]:
        slots = dict(decl.own_slots)
        for attr in decl.param_slots:
            slots.setdefault(attr, "channel")
        return slots

    def _promote_param_slots(self) -> None:
        """Param-assigned attributes become channel slots only when a
        call site bound a channel (or the param was channel-annotated);
        otherwise they are plain attributes and are dropped."""
        for decl in self.graph.classes.values():
            for attr in list(decl.param_slots):
                key = (decl.name, attr)
                if attr in decl.own_slots:
                    continue  # annotated: already a slot
                if self.graph._find(key) != key:
                    decl.own_slots[attr] = "channel"
                    decl.slot_sites.setdefault(
                        attr, (decl.path, decl.node.lineno))
                else:
                    del decl.param_slots[attr]

    # -- phase 4: accesses ---------------------------------------------
    def _node_for(self, key: ChannelKey) -> ChannelNode:
        root = self.graph._find(key)
        node = self.graph.channels.get(root)
        if node is None:
            node = ChannelNode(key=root)
            self.graph.channels[root] = node
        if key != root:
            node.aliases.add(key)
        for probe in (root, key):  # the root's constructed kind wins
            owner = self.graph.classes.get(probe[0])
            if owner is None:
                continue
            kind = owner.own_slots.get(probe[1])
            if kind and kind != "channel" and node.kind == "channel":
                node.kind = kind
            if not node.path and probe[1] in owner.slot_sites:
                node.path, node.line = owner.slot_sites[probe[1]]
        return node

    def _collect_accesses(self, decl: ClassDecl) -> None:
        slots = self._all_slots(decl)
        if not slots and not decl.obj_types:
            return
        for mname, (def_cls, def_path, fn) in decl.methods.items():
            symbol = f"{decl.name}.{mname}"
            tick_path = mname in decl.tick_reachable
            via = () if mname == "tick" else (mname,)
            for node in ast.walk(fn):
                hit = self._classify(decl, slots, node)
                if hit is None:
                    continue
                key, op = hit
                canonical = self.graph._find(key)
                self._node_for(key)
                self.graph.accesses.append(Access(
                    component=decl.name, channel=canonical, op=op,
                    path=def_path, line=getattr(node, "lineno", 0),
                    method=symbol, tick_path=tick_path, via=via))

    def _classify(self, decl: ClassDecl, slots: Dict[str, str],
                  node: ast.AST) -> Optional[Tuple[ChannelKey, str]]:
        """Map one AST node to a channel access, if it is one."""
        # EXPR.value reads (wires)
        if (isinstance(node, ast.Attribute) and node.attr == "value"
                and isinstance(node.ctx, ast.Load)):
            key = self._channel_ref(decl, node.value)
            if key is not None:
                return key, "read"
        elif isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Attribute):
                op = _OP_BY_CALL.get(fn.attr)
                if op is not None:
                    key = self._channel_ref(decl, fn.value)
                    if key is not None:
                        return key, op
                if fn.attr == "watch" and node.args:
                    key = self._channel_ref(decl, node.args[0])
                    if key is not None:
                        return key, "watch"
                if fn.attr == "subscribe":
                    key = self._channel_ref(decl, fn.value)
                    if key is not None:
                        return key, "watch"
            elif (isinstance(fn, ast.Name) and fn.id in _READ_BUILTINS
                    and node.args):
                key = self._channel_ref(decl, node.args[0])
                if key is not None:
                    return key, "read"
        return None


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def build_graph(paths: Sequence[str]) -> Tuple[AccessGraph, List[Finding]]:
    """Build the access graph for every ``.py`` file under ``paths``;
    returns ``(graph, parse_errors)``."""
    builder = _GraphBuilder()
    for path in discover_files(paths):
        builder.add_file(path)
    graph = builder.resolve()
    return graph, builder.errors


def build_graph_sources(
    sources: Dict[str, str],
) -> Tuple[AccessGraph, List[Finding]]:
    """Build the access graph from in-memory sources (tests, tools);
    ``sources`` maps a filename to its source text."""
    builder = _GraphBuilder()
    for path, source in sorted(sources.items()):
        builder.add_source(source, path)
    graph = builder.resolve()
    return graph, builder.errors


def graph_source(source: str, filename: str = "<memory>"):
    """Convenience single-source builder (mirrors ``lint_source``)."""
    return build_graph_sources({filename: source})
