"""Suppressions, baseline files, and per-directory rule policies.

Three complementary ways to accept a finding without silencing the
analyzer wholesale:

**Inline suppressions** — a ``# simlint:`` comment in the source:

* ``# simlint: disable=QL005`` on the offending line,
* ``# simlint: disable-next-line=QL005,QL009`` on the line above,
* ``# simlint: disable-file=QL010`` anywhere in the file, or
* ``disable=all`` to suppress every rule at that site.

Comments are found with :mod:`tokenize`, so strings that merely contain
the marker text do not suppress anything.

**Baseline file** — a checked-in JSON inventory
(``.simlint-baseline.json``, schema ``repro.simlint-baseline/1``) of
known findings keyed by the line-independent
:meth:`~repro.lint.findings.Finding.baseline_key` with a per-key count
and a mandatory ``justification``.  Matching findings are filtered;
stale entries (nothing matches any more) are reported so the baseline
can only shrink.

**Directory policies** — per-directory rule allowlists so example and
test code can stay illustrative.  Longest matching prefix wins; the
defaults ship in :data:`DEFAULT_DIR_POLICIES`.
"""

from __future__ import annotations

import io
import json
import os
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding

BASELINE_SCHEMA = "repro.simlint-baseline/1"
_MARKER = "simlint:"


# ----------------------------------------------------------------------
# inline suppressions
# ----------------------------------------------------------------------
@dataclass
class SuppressionIndex:
    """Parsed ``# simlint:`` comments of one file."""

    #: line -> rule ids disabled on that line ("all" disables everything)
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: rules disabled for the whole file
    file_wide: Set[str] = field(default_factory=set)

    def suppresses(self, rule: str, line: int) -> bool:
        for rules in (self.file_wide, self.by_line.get(line, ())):
            if "all" in rules or rule in rules:
                return True
        return False


def _parse_directive(comment: str) -> List[Tuple[str, Set[str]]]:
    """``# simlint: disable=QL001,QL002 disable-file=QL010`` ->
    ``[("disable", {...}), ("disable-file", {...})]``."""
    text = comment.lstrip("#").strip()
    marker = text.find(_MARKER)
    if marker < 0:
        return []
    out: List[Tuple[str, Set[str]]] = []
    for token in text[marker + len(_MARKER):].split():
        if "=" not in token:
            continue
        verb, _, rules = token.partition("=")
        verb = verb.strip().lower()
        if verb in ("disable", "disable-next-line", "disable-file"):
            ids = {r.strip() for r in rules.split(",") if r.strip()}
            if ids:
                out.append((verb, ids))
    return out


def scan_suppressions(source: str) -> SuppressionIndex:
    """All ``# simlint:`` suppressions in ``source`` (tokenize-based,
    so the marker inside a string literal is ignored)."""
    index = SuppressionIndex()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            for verb, rules in _parse_directive(tok.string):
                line = tok.start[0]
                if verb == "disable":
                    index.by_line.setdefault(line, set()).update(rules)
                elif verb == "disable-next-line":
                    index.by_line.setdefault(line + 1, set()).update(rules)
                else:
                    index.file_wide.update(rules)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparseable files already surface as QL000
    return index


def apply_suppressions(findings: Iterable[Finding]) -> List[Finding]:
    """Drop findings whose file carries a matching inline suppression."""
    cache: Dict[str, SuppressionIndex] = {}
    kept: List[Finding] = []
    for finding in findings:
        index = cache.get(finding.path)
        if index is None:
            try:
                with open(finding.path, "r", encoding="utf-8") as fh:
                    index = scan_suppressions(fh.read())
            except OSError:
                index = SuppressionIndex()
            cache[finding.path] = index
        if not index.suppresses(finding.rule, finding.line):
            kept.append(finding)
    return kept


# ----------------------------------------------------------------------
# baseline file
# ----------------------------------------------------------------------
@dataclass
class BaselineEntry:
    rule: str
    path: str
    symbol: str
    count: int
    justification: str = ""

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path.replace("\\", "/"), self.symbol)


class BaselineError(ValueError):
    """The baseline file is malformed."""


def load_baseline(path: str) -> List[BaselineEntry]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"{path}: expected a {BASELINE_SCHEMA!r} document")
    entries: List[BaselineEntry] = []
    for i, raw in enumerate(doc.get("findings", [])):
        if not isinstance(raw, dict):
            raise BaselineError(f"{path}: findings[{i}] is not an object")
        try:
            entries.append(BaselineEntry(
                rule=str(raw["rule"]), path=str(raw["path"]),
                symbol=str(raw["symbol"]),
                count=int(raw.get("count", 1)),
                justification=str(raw.get("justification", ""))))
        except KeyError as exc:
            raise BaselineError(
                f"{path}: findings[{i}] missing {exc}") from None
    return entries


def write_baseline(path: str, findings: Sequence[Finding],
                   justification: str = "accepted by --write-baseline"
                   ) -> List[BaselineEntry]:
    """Write the baseline covering ``findings`` and return its entries."""
    grouped: Dict[Tuple[str, str, str], int] = {}
    for finding in findings:
        rule, raw_path, symbol = finding.baseline_key()
        key = (rule, _canonical_path(raw_path), symbol)
        grouped[key] = grouped.get(key, 0) + 1
    entries = [BaselineEntry(rule=r, path=p, symbol=s, count=n,
                             justification=justification)
               for (r, p, s), n in sorted(grouped.items())]
    doc = {
        "schema": BASELINE_SCHEMA,
        "findings": [{"rule": e.rule, "path": e.path, "symbol": e.symbol,
                      "count": e.count, "justification": e.justification}
                     for e in entries],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return entries


def _canonical_path(path: str) -> str:
    """Repo-relative, "/"-separated form for baseline matching, so a
    baseline written from a checkout matches findings produced against
    the same files via an absolute package path."""
    norm = path.replace("\\", "/")
    if os.path.isabs(norm):
        try:
            rel = os.path.relpath(norm)
        except ValueError:  # different drive (Windows)
            return norm
        if not rel.startswith(".."):
            norm = rel.replace(os.sep, "/")
    return norm.lstrip("./")


def apply_baseline(findings: Iterable[Finding],
                   entries: Sequence[BaselineEntry]
                   ) -> Tuple[List[Finding], List[BaselineEntry]]:
    """Filter baselined findings.

    Returns ``(new_findings, stale_entries)``: each entry absorbs up to
    ``count`` findings sharing its line-independent key (paths compared
    repo-relative); findings beyond the count (a regression grew) pass
    through, and entries that matched nothing are reported stale so the
    baseline can only shrink.
    """
    def norm(key: Tuple[str, str, str]) -> Tuple[str, str, str]:
        return (key[0], _canonical_path(key[1]), key[2])

    budget: Dict[Tuple[str, str, str], int] = {}
    matched: Dict[Tuple[str, str, str], int] = {}
    for entry in entries:
        key = norm(entry.key)
        budget[key] = budget.get(key, 0) + max(entry.count, 0)
    kept: List[Finding] = []
    for finding in findings:
        key = norm(finding.baseline_key())
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched[key] = matched.get(key, 0) + 1
        else:
            kept.append(finding)
    stale = [entry for entry in entries
             if matched.get(norm(entry.key), 0) == 0]
    return kept, stale


# ----------------------------------------------------------------------
# per-directory rule policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DirPolicy:
    """Rules allowed to fire under one directory prefix."""

    prefix: str          # normalized, "/"-separated, no trailing slash
    allow: frozenset     # rule ids that still fire; "all" = everything
    reason: str = ""


#: default policies; longest matching prefix wins, src/ keeps everything.
DEFAULT_DIR_POLICIES: Tuple[DirPolicy, ...] = (
    # examples stay illustrative: structural topology/iteration/vec rules
    # still apply, but watch()-discipline and RNG hygiene are relaxed.
    DirPolicy("examples", frozenset(
        {"QL000", "QL003", "QL005", "QL007", "QL008", "QL011"}),
        "example code is illustrative; full contract applies in src/"),
    # test helpers intentionally construct contract violations; keep the
    # parse + topology rules so shared fixtures stay race-free...
    DirPolicy("tests", frozenset(
        {"QL000", "QL005", "QL007", "QL008"}),
        "test doubles intentionally violate narrow contracts"),
    # ...except the seeded racy fixtures, which exist to violate them:
    # every rule fires there so CI can assert detection still works.
    DirPolicy("tests/lint/fixtures", frozenset({"all"}),
              "seeded fixtures must keep tripping every rule"),
)


def _norm(path: str) -> str:
    return os.path.normpath(path).replace(os.sep, "/").lstrip("./")


def policy_for(path: str,
               policies: Sequence[DirPolicy] = DEFAULT_DIR_POLICIES
               ) -> Optional[DirPolicy]:
    """The longest-prefix policy covering ``path``, if any."""
    norm = _norm(path)
    best: Optional[DirPolicy] = None
    for policy in policies:
        prefix = policy.prefix.rstrip("/")
        anchored = norm == prefix or norm.startswith(prefix + "/") \
            or ("/" + prefix + "/") in ("/" + norm)
        if anchored and (best is None
                         or len(prefix) > len(best.prefix)):
            best = policy
    return best


def apply_dir_policies(findings: Iterable[Finding],
                       policies: Sequence[DirPolicy] = DEFAULT_DIR_POLICIES
                       ) -> List[Finding]:
    """Drop findings whose rule is not in the covering directory's
    allowlist (files under no policy keep every rule)."""
    kept: List[Finding] = []
    for finding in findings:
        policy = policy_for(finding.path, policies)
        if policy is None or "all" in policy.allow \
                or finding.rule in policy.allow:
            kept.append(finding)
    return kept
