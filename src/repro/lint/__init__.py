"""Machine-checked contracts for the quiescence-aware kernel.

Two halves, one contract (see ``docs/linting.md``):

* :mod:`repro.lint.static_rules` — an AST pass over every
  :class:`~repro.sim.component.Component` subclass, run as
  ``repro lint`` (rules QL001-QL005);
* :mod:`repro.lint.runtime` — a runtime sanitizer
  (``Simulator(sanitize=True)`` / ``REPRO_SIM_SANITIZE=1``) that records
  per-component channel read/write sets each cycle and raises on
  violations the static pass cannot see (checks SAN001-SAN003).
"""

from repro.lint.findings import Finding, Severity, sort_findings
from repro.lint.runtime import Sanitizer, SanitizerError
from repro.lint.static_rules import (
    RULES,
    discover_files,
    lint_paths,
    lint_source,
)

__all__ = [
    "Finding",
    "RULES",
    "Sanitizer",
    "SanitizerError",
    "Severity",
    "discover_files",
    "lint_paths",
    "lint_source",
    "sort_findings",
]
