"""Machine-checked contracts for the quiescence-aware kernel.

Two halves, one contract (see ``docs/linting.md``):

* static analysis, run as ``repro lint``:

  - :mod:`repro.lint.static_rules` — an AST pass over every
    :class:`~repro.sim.component.Component` subclass (rules
    QL001–QL006);
  - :mod:`repro.lint.graph` + :mod:`repro.lint.race` — a whole-program
    component↔channel access graph and the race/topology rules on it
    (QL007–QL011), dumped by ``repro lint --graph``;
  - :mod:`repro.lint.sarif` / :mod:`repro.lint.baseline` — SARIF 2.1.0
    export, inline ``# simlint: disable=...`` suppressions, baseline
    files, and per-directory rule policies;
  - :mod:`repro.lint.run` — the :func:`run_lint` pipeline tying these
    together in a fixed order.

* :mod:`repro.lint.runtime` — a runtime sanitizer
  (``Simulator(sanitize=True)`` / ``REPRO_SIM_SANITIZE=1``) that records
  per-component channel read/write sets each cycle and raises on
  violations the static pass cannot see (checks SAN001–SAN003), plus an
  opt-in race detector (``sanitize="race"`` / ``REPRO_SIM_SANITIZE=race``)
  tracking per-cycle write ownership (SAN004) and order-sensitive
  commits (SAN005).
"""

from repro.lint.baseline import (
    DEFAULT_DIR_POLICIES,
    DirPolicy,
    apply_baseline,
    apply_dir_policies,
    apply_suppressions,
    load_baseline,
    scan_suppressions,
    write_baseline,
)
from repro.lint.findings import (
    Finding,
    Severity,
    dedupe_findings,
    sort_findings,
)
from repro.lint.graph import AccessGraph, build_graph, build_graph_sources
from repro.lint.race import GRAPH_RULES, lint_graph_paths, run_graph_rules
from repro.lint.run import ALL_RULES, LintResult, run_lint
from repro.lint.runtime import Sanitizer, SanitizerError
from repro.lint.sarif import to_sarif, validate_sarif
from repro.lint.static_rules import (
    RULES,
    discover_files,
    lint_paths,
    lint_source,
)

__all__ = [
    "ALL_RULES",
    "AccessGraph",
    "DEFAULT_DIR_POLICIES",
    "DirPolicy",
    "Finding",
    "GRAPH_RULES",
    "LintResult",
    "RULES",
    "Sanitizer",
    "SanitizerError",
    "Severity",
    "apply_baseline",
    "apply_dir_policies",
    "apply_suppressions",
    "build_graph",
    "build_graph_sources",
    "dedupe_findings",
    "discover_files",
    "lint_graph_paths",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "run_graph_rules",
    "run_lint",
    "scan_suppressions",
    "sort_findings",
    "to_sarif",
    "validate_sarif",
    "write_baseline",
]
