"""The full lint pipeline behind ``repro lint``.

Order matters and is fixed here so the CLI, CI and tests agree:

1. static per-class rules (QL000–QL006, :mod:`repro.lint.static_rules`)
2. whole-program graph rules (QL007–QL011, :mod:`repro.lint.race` over
   the :mod:`repro.lint.graph` access graph)
3. dedupe by ``(rule, file, line, symbol)`` — helper attribution can
   reach one site through several paths
4. per-directory rule policies (examples/tests allowlists)
5. inline ``# simlint: disable=...`` suppressions
6. baseline filtering (line-independent keys, count-bounded)

Severity filtering is *not* done here — the CLI applies
``--min-severity`` on the result so ``--strict`` and reporting formats
all see the same finding set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.baseline import (
    BaselineEntry,
    DEFAULT_DIR_POLICIES,
    DirPolicy,
    apply_baseline,
    apply_dir_policies,
    apply_suppressions,
    load_baseline,
)
from repro.lint.findings import Finding, Severity, dedupe_findings, \
    sort_findings
from repro.lint.graph import AccessGraph, build_graph
from repro.lint.race import GRAPH_RULES, run_graph_rules
from repro.lint.static_rules import RULES, lint_paths

#: every rule the pipeline can emit: static + graph tables merged
ALL_RULES: Dict[str, Tuple[Severity, str]] = {**RULES, **GRAPH_RULES}


@dataclass
class LintResult:
    """Everything ``repro lint`` needs to report one run."""

    findings: List[Finding]
    graph: Optional[AccessGraph] = None
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: List[BaselineEntry] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def run_lint(paths: Sequence[str], *,
             with_graph: bool = True,
             baseline_path: Optional[str] = None,
             dir_policies: Sequence[DirPolicy] = DEFAULT_DIR_POLICIES,
             ) -> LintResult:
    """Run the full pipeline over ``paths`` (see module docstring).

    Raises on *internal* analyzer failure (unreadable baseline, crash in
    a rule) — the CLI maps that to exit code 2 so CI never mistakes a
    broken analyzer for a clean run.  Findings, including QL000 parse
    errors for unreadable inputs, never raise.
    """
    findings: List[Finding] = list(lint_paths(paths))
    graph: Optional[AccessGraph] = None
    if with_graph:
        graph, parse_errors = build_graph(paths)
        findings.extend(parse_errors)
        findings.extend(run_graph_rules(graph))

    findings = dedupe_findings(sort_findings(findings))
    findings = apply_dir_policies(findings, dir_policies)

    before = len(findings)
    findings = apply_suppressions(findings)
    suppressed = before - len(findings)

    baselined = 0
    stale: List[BaselineEntry] = []
    if baseline_path is not None:
        entries = load_baseline(baseline_path)
        before = len(findings)
        findings, stale = apply_baseline(findings, entries)
        baselined = before - len(findings)

    return LintResult(findings=findings, graph=graph,
                      suppressed=suppressed, baselined=baselined,
                      stale_baseline=stale)
