"""CoNoChi global control unit: addresses, directories, routing tables.

The control unit owns everything the paper centralizes: assignment of
physical addresses to attachment points, the logical-address directory
used by the interface modules, shortest-path routing-table computation,
and the staging of table updates during topology reconfiguration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.fabric.tiles import TileGrid

Coord = Tuple[int, int]
#: routing next-hop: neighbouring switch coordinate, or "local" delivery
NextHop = object


def compute_tables(
    grid: TileGrid, attach_switch: Dict[int, Coord]
) -> Dict[Coord, Dict[int, object]]:
    """Shortest-path routing tables for every switch.

    ``attach_switch`` maps physical address -> the switch its interface
    hangs off. Returns ``tables[switch][phys_addr] -> next switch coord
    or "local"``. Link weights are the wire-tile counts + 1, so paths
    minimize actual cycle latency, not hop count.
    """
    switches = grid.switches()
    adj: Dict[Coord, List[Tuple[Coord, int]]] = {s: [] for s in switches}
    for a, b, wire_tiles in grid.links():
        cost = wire_tiles + 1
        adj[a].append((b, cost))
        adj[b].append((a, cost))

    tables: Dict[Coord, Dict[int, object]] = {s: {} for s in switches}
    for phys, target in attach_switch.items():
        if target not in adj:
            raise ValueError(f"address {phys} attached to non-switch {target}")
        # BFS/Dijkstra-lite from the target over unit-ish costs: since
        # costs are small positive ints, run Dijkstra without heap
        # (networks here are tiny) for exact latency-shortest paths.
        dist: Dict[Coord, int] = {target: 0}
        nxt_toward: Dict[Coord, object] = {target: "local"}
        frontier = [target]
        while frontier:
            frontier.sort(key=lambda c: dist[c])
            cur = frontier.pop(0)
            for nbr, cost in adj[cur]:
                nd = dist[cur] + cost
                if nbr not in dist or nd < dist[nbr]:
                    dist[nbr] = nd
                    nxt_toward[nbr] = cur
                    if nbr not in frontier:
                        frontier.append(nbr)
        for s in switches:
            if s == target:
                tables[s][phys] = "local"
            elif s in nxt_toward:
                tables[s][phys] = nxt_toward[s]
            # unreachable switches simply lack the entry; lookups raise
    return tables


class GlobalControl:
    """Address authority + staged routing-table owner."""

    def __init__(self, grid: TileGrid):
        self.grid = grid
        self._next_phys = 0
        self._directory: Dict[str, int] = {}      # logical name -> phys addr
        self._aliases: Dict[str, str] = {}        # logical alias -> logical
        self._attach_switch: Dict[int, Coord] = {}  # phys addr -> switch
        self._tables: Dict[Coord, Dict[int, object]] = {}

    # ------------------------------------------------------------------
    # addresses
    # ------------------------------------------------------------------
    def register(self, logical: str, switch: Coord) -> int:
        """Assign a fresh physical address for ``logical`` at ``switch``."""
        if logical in self._directory:
            raise ValueError(f"logical address {logical!r} already registered")
        phys = self._next_phys
        self._next_phys += 1
        self._directory[logical] = phys
        self._attach_switch[phys] = switch
        return phys

    def unregister(self, logical: str) -> None:
        phys = self._directory.pop(logical, None)
        if phys is None:
            raise KeyError(f"logical address {logical!r} unknown")
        del self._attach_switch[phys]

    def migrate(self, logical: str, new_switch: Coord) -> None:
        """Re-home a logical address to another switch (module move) —
        peers keep using the unchanged logical address."""
        phys = self._directory.get(logical)
        if phys is None:
            raise KeyError(f"logical address {logical!r} unknown")
        self._attach_switch[phys] = new_switch

    def resolve(self, logical: str) -> int:
        """Resolve a logical address, following aliases.

        Aliases implement the paper's "moved or combined": when one
        module absorbs another's service, an alias redirects the old
        logical address to the survivor — peers never change.
        """
        seen = set()
        while logical in self._aliases:
            if logical in seen:
                raise ValueError(f"alias cycle through {logical!r}")
            seen.add(logical)
            logical = self._aliases[logical]
        if logical not in self._directory:
            raise KeyError(f"logical address {logical!r} unknown")
        return self._directory[logical]

    def add_alias(self, alias: str, target: str) -> None:
        """Redirect logical address ``alias`` to ``target``'s module."""
        if alias in self._directory:
            raise ValueError(
                f"{alias!r} is a live logical address; unregister it first"
            )
        probe = self._aliases.copy()
        probe[alias] = target
        # reject cycles up front
        cur, seen = target, {alias}
        while cur in probe:
            if cur in seen:
                raise ValueError(f"alias {alias!r} -> {target!r} forms a cycle")
            seen.add(cur)
            cur = probe[cur]
        self._aliases[alias] = target

    def remove_alias(self, alias: str) -> None:
        if alias not in self._aliases:
            raise KeyError(f"{alias!r} is not an alias")
        del self._aliases[alias]

    def switch_of(self, phys: int) -> Coord:
        return self._attach_switch[phys]

    def attachments_at(self, switch: Coord) -> int:
        return sum(1 for s in self._attach_switch.values() if s == switch)

    # ------------------------------------------------------------------
    # routing tables
    # ------------------------------------------------------------------
    def recompute_tables(self) -> Dict[Coord, Dict[int, object]]:
        self._tables = compute_tables(self.grid, self._attach_switch)
        return self._tables

    def recompute_avoiding(self, failed) -> Dict[Coord, Dict[int, object]]:
        """Distribute tables that route around every switch in
        ``failed`` (the fault response: the paper's table-update
        machinery applied to unplanned loss).  Addresses homed at a
        failed switch get no entries — lookups toward them raise.
        Passing an empty set restores the full tables."""
        failed = set(failed)
        if not failed:
            return self.recompute_tables()
        from repro.fabric.tiles import TileType
        saved = {c: self.grid.get(*c) for c in failed}
        for c in failed:
            self.grid.set(*c, TileType.FREE)
        try:
            attach = {phys: sw for phys, sw in self._attach_switch.items()
                      if sw not in failed}
            self._tables = compute_tables(self.grid, attach)
        finally:
            for c, t in saved.items():
                self.grid.set(*c, t)
        return self._tables

    @property
    def tables(self) -> Dict[Coord, Dict[int, object]]:
        return self._tables

    def lookup(self, switch: Coord, phys: int) -> object:
        try:
            return self._tables[switch][phys]
        except KeyError:
            raise KeyError(
                f"switch {switch} has no route to physical address {phys}"
            ) from None

    def route_latency(self, src_switch: Coord, phys: int,
                      switch_latency: int, link_latency_per_tile: int = 1
                      ) -> Optional[int]:
        """Analytic header latency from ``src_switch`` to the address's
        switch under current tables (None if unroutable)."""
        hops = 0
        wires = 0
        cur = src_switch
        seen = set()
        while True:
            if cur in seen:
                return None
            seen.add(cur)
            nxt = self._tables.get(cur, {}).get(phys)
            if nxt is None:
                return None
            hops += 1
            if nxt == "local":
                return hops * switch_latency + wires * link_latency_per_tile
            # wire tiles between cur and nxt
            for a, b, w in self.grid.links():
                if {a, b} == {cur, nxt}:
                    wires += w + 1
                    break
            cur = nxt
