"""CoNoChi configuration."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CoNoChiConfig:
    """Structural and timing parameters of a CoNoChi instance.

    Defaults reproduce the survey's published figures: a 96-bit
    three-layer protocol header (three words on 32-bit links), a
    1024-byte maximum payload, and a 5-cycle virtual cut-through switch
    traversal (Table 2). With a three-word header the effective
    bandwidth is p/(p+3) for p payload words — ~90 % at the ~100-byte
    packets of the streaming applications CoNoChi targets, which is the
    survey's quoted figure (experiment E3 sweeps the whole curve).
    """

    grid_cols: int = 4
    grid_rows: int = 4
    width: int = 32
    switch_latency: int = 5       # per-switch cut-through latency (Table 2)
    link_latency: int = 1         # cycles per hop between adjacent tiles
    header_bits: int = 96         # 3-layer protocol header (Table 1)
    max_payload_bytes: int = 1024  # Table 1
    table_update_latency: int = 16  # control-unit to switch table rewrite
    max_ports: int = 4            # full-duplex links per switch

    def __post_init__(self) -> None:
        if self.grid_cols < 2 or self.grid_rows < 2:
            raise ValueError("grid must be at least 2x2")
        if self.width < 1:
            raise ValueError("width must be >= 1")
        if self.switch_latency < 1 or self.link_latency < 1:
            raise ValueError("latencies must be >= 1")
        if self.header_bits < 1 or self.max_payload_bytes < 1:
            raise ValueError("header and payload must be positive")
        if self.table_update_latency < 0:
            raise ValueError("table_update_latency must be >= 0")
        if self.max_ports < 2:
            raise ValueError("switches need at least 2 ports")

    @property
    def header_words(self) -> int:
        return math.ceil(self.header_bits / self.width)

    def payload_words(self, payload_bytes: int) -> int:
        if payload_bytes > self.max_payload_bytes:
            raise ValueError(
                f"payload {payload_bytes} exceeds {self.max_payload_bytes}"
            )
        return math.ceil(payload_bytes * 8 / self.width)

    def packet_words(self, payload_bytes: int) -> int:
        return self.header_words + self.payload_words(payload_bytes)

    def fragments(self, payload_bytes: int) -> int:
        """Packets needed for a message of ``payload_bytes``."""
        return math.ceil(payload_bytes / self.max_payload_bytes)

    def efficiency(self, payload_bytes: int) -> float:
        """Effective-bandwidth fraction for ``payload_bytes`` packets."""
        p = self.payload_words(payload_bytes)
        return p / (p + self.header_words)
