"""CoNoChi topology constructors beyond the builder defaults.

The paper's Figure 4 shows an irregular hand-drawn topology; these
helpers build the common regular shapes — chain, ring, star, spaced
mesh — as tile grids whose wiring satisfies the structural invariants
(checked on construction), ready for ``build_conochi(grid=...)``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.fabric.tiles import TileGrid, TileType

Coord = Tuple[int, int]


def _validated(grid: TileGrid) -> TileGrid:
    if grid.dangling_wires():
        raise AssertionError(
            f"topology constructor left dangling wires: "
            f"{grid.dangling_wires()}"
        )
    if not grid.is_connected():
        raise AssertionError("topology constructor left the NoC split")
    return grid


def chain(n: int, spacing: int = 1) -> TileGrid:
    """``n`` switches in a row, ``spacing - 1`` H-wire tiles between
    neighbours (spacing 1 = direct adjacency)."""
    if n < 1 or spacing < 1:
        raise ValueError("need n >= 1 switches and spacing >= 1")
    grid = TileGrid(2 + (n - 1) * spacing + 1, 3)
    for i in range(n):
        grid.set(1 + i * spacing, 1, TileType.SWITCH)
    for i in range(n - 1):
        for x in range(2 + i * spacing, 1 + (i + 1) * spacing):
            grid.set(x, 1, TileType.HWIRE)
    return _validated(grid)


def ring(n: int) -> TileGrid:
    """``n`` switches (n >= 4, even) arranged as a rectangle ring —
    halves the chain's worst-case diameter."""
    if n < 4 or n % 2:
        raise ValueError("ring needs an even n >= 4")
    half = n // 2
    grid = TileGrid(half + 2, 5)
    for i in range(half):
        grid.set(1 + i, 1, TileType.SWITCH)   # bottom rail
        grid.set(1 + i, 3, TileType.SWITCH)   # top rail
    # close the ring at both ends with vertical wires
    grid.set(1, 2, TileType.VWIRE)
    grid.set(half, 2, TileType.VWIRE)
    return _validated(grid)


def star(leaves: int) -> TileGrid:
    """A hub switch with up to 4 leaf switches on direct links — the
    port budget makes >4 leaves impossible (raises)."""
    if not 1 <= leaves <= 4:
        raise ValueError("a 4-port switch supports 1..4 leaves")
    grid = TileGrid(5, 5)
    hub = (2, 2)
    grid.set(*hub, TileType.SWITCH)
    positions: List[Coord] = [(1, 2), (3, 2), (2, 1), (2, 3)]
    for pos in positions[:leaves]:
        grid.set(*pos, TileType.SWITCH)
    return _validated(grid)


def spaced_mesh(sw_cols: int, sw_rows: int) -> TileGrid:
    """Switches on a grid with one wire tile between neighbours, leaving
    the diagonal tiles free for modules.

    Note the port budget: interior switches use all four ports for
    links, so modules can only attach at edge/corner switches.
    """
    if sw_cols < 2 or sw_rows < 2:
        raise ValueError("mesh needs at least 2x2 switches")
    grid = TileGrid(2 * sw_cols + 1, 2 * sw_rows + 1)
    for j in range(sw_rows):
        for i in range(sw_cols):
            grid.set(1 + 2 * i, 1 + 2 * j, TileType.SWITCH)
    for j in range(sw_rows):
        for i in range(sw_cols - 1):
            grid.set(2 + 2 * i, 1 + 2 * j, TileType.HWIRE)
    for j in range(sw_rows - 1):
        for i in range(sw_cols):
            grid.set(1 + 2 * i, 2 + 2 * j, TileType.VWIRE)
    return _validated(grid)
