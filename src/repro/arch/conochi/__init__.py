"""CoNoChi — Configurable Network on Chip (Pionteck et al.).

A grid of tiles {0, S, H, V}: switches (S), horizontal/vertical line
tiles (H/V) and free tiles (0) holding modules and their network
interfaces. Virtual cut-through switches with four full-duplex links
route on *physical* addresses via local tables; a three-layer protocol
adds *logical* addresses resolved at the interfaces, so modules can be
moved or merged without touching their peers. A global control unit
adds or removes switches at runtime — rewriting routing tables and
redirecting packets — without stalling the rest of the NoC; this is the
architecture the survey ranks best on structural parameters.
"""

from repro.arch.conochi.arch import CoNoChi, build_conochi
from repro.arch.conochi.config import CoNoChiConfig
from repro.arch.conochi.control import GlobalControl, compute_tables
from repro.arch.conochi.faults import FaultInjector

__all__ = [
    "CoNoChi",
    "CoNoChiConfig",
    "FaultInjector",
    "GlobalControl",
    "build_conochi",
    "compute_tables",
]
