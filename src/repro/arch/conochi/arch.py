"""CoNoChi cycle-level model: tile grid, cut-through switches, runtime
topology reconfiguration.

Transport mirrors the DyNoC model (FIFO port reservations, virtual
cut-through) but routing is table-driven: every switch arrival consults
the *currently applied* tables, so when the global control unit rewrites
tables during a topology change, in-flight packets are transparently
redirected — the paper's "packet redirection" feature. Messages larger
than the 1024-byte maximum payload are segmented at the interface.

Topology changes follow the paper's discipline:

* **add_switch / add_wire** — the tile is swapped first; tables that
  exploit the new resource are applied ``table_update_latency`` cycles
  later. Traffic is never disturbed.
* **remove_switch** — tables avoiding the switch are applied first;
  the tile is swapped only once no packet still targets the switch.
  The rest of the NoC never stalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.base import CommArchitecture, Message
from repro.arch.conochi.config import CoNoChiConfig
from repro.arch.conochi.control import GlobalControl
from repro.core.parameters import PAPER_TABLE_1, DesignParameters
from repro.fabric.area import AreaModel
from repro.fabric.geometry import Rect
from repro.fabric.tiles import TileGrid, TileType
from repro.fabric.timing import ClockModel
from repro.sim import SLEEP, Component, SimError, Simulator

Coord = Tuple[int, int]


@dataclass
class _Packet:
    msg: Message
    dst_phys: int
    words: int
    fragment: int
    last_fragment: bool
    hops: int = 0


class CoNoChi(CommArchitecture, Component):
    """The CoNoChi interconnect over a tile grid."""

    KEY = "conochi"

    def __init__(self, sim: Simulator, cfg: CoNoChiConfig,
                 grid: Optional[TileGrid] = None,
                 area_model: Optional[AreaModel] = None,
                 clock_model: Optional[ClockModel] = None):
        CommArchitecture.__init__(self, sim, cfg.width)
        Component.__init__(self, "conochi")
        self.cfg = cfg
        self.grid = grid or TileGrid(cfg.grid_cols, cfg.grid_rows)
        self.control = GlobalControl(self.grid)
        self.area_model = area_model or AreaModel()
        self.clock_model = clock_model or ClockModel()
        self._module_switch: Dict[str, Coord] = {}
        self._arrivals: List[Tuple[int, _Packet, Coord]] = []
        self._port_free: Dict[Tuple[object, object], int] = {}
        self._deliveries: List[Tuple[int, Message]] = []
        self._landed_fragments: Dict[int, int] = {}  # msg.mid -> fragments in
        # migrations whose table update has not applied yet:
        # module -> target switch (remove_switch must respect these)
        self._pending_migrations: Dict[str, Coord] = {}
        # (start, end, msg-id): the parallelism probe counts distinct
        # messages on wires per cycle (independent data transfers).
        self._transmissions: List[Tuple[int, int, int]] = []
        self._link_wires: Dict[frozenset, int] = {}
        self._refresh_link_cache()

    # ==================================================================
    # topology bookkeeping
    # ==================================================================
    def _refresh_link_cache(self) -> None:
        self._link_wires = {
            frozenset((a, b)): w for a, b, w in self.grid.links()
        }

    def link_cycles(self, a: Coord, b: Coord) -> int:
        """Header cycles to cross the link between adjacent switches."""
        key = frozenset((a, b))
        if key not in self._link_wires:
            raise KeyError(f"no link between switches {a} and {b}")
        return (self._link_wires[key] + 1) * self.cfg.link_latency

    def switch_port_load(self, switch: Coord) -> int:
        degree = sum(1 for key in self._link_wires if switch in key)
        return degree + self.control.attachments_at(switch)

    # ==================================================================
    # CommArchitecture interface
    # ==================================================================
    def _attach_impl(self, module: str, rect: Optional[Rect] = None,
                     switch: Optional[Coord] = None, **_: object) -> None:
        if switch is None:
            switch = self._nearest_free_switch(rect)
        if self.grid.get(*switch) is not TileType.SWITCH:
            raise ValueError(f"{switch} is not a switch tile")
        if self.switch_port_load(switch) >= self.cfg.max_ports:
            raise ValueError(
                f"switch {switch} has no free port for {module!r}"
            )
        if rect is not None:
            if not self._rect_touches(rect, switch):
                raise ValueError(
                    f"module rect {rect} is not adjacent to switch {switch}"
                )
            self.grid.place_module(module, rect)
        self._module_switch[module] = switch
        self.control.register(module, switch)
        self.control.recompute_tables()

    def _rect_touches(self, rect: Rect, switch: Coord) -> bool:
        x, y = switch
        return any(
            abs(cx - x) + abs(cy - y) == 1 for cx, cy in rect.cells()
        )

    def _nearest_free_switch(self, rect: Optional[Rect]) -> Coord:
        candidates = [
            s for s in self.grid.switches()
            if self.switch_port_load(s) < self.cfg.max_ports
            and (rect is None or self._rect_touches(rect, s))
        ]
        if not candidates:
            raise ValueError("no switch with a free port available")
        return candidates[0]

    def _detach_impl(self, module: str) -> None:
        self.control.unregister(module)
        del self._module_switch[module]
        if module in self.grid.modules:
            self.grid.remove_module(module)
        self.control.recompute_tables()

    def _submit(self, msg: Message) -> None:
        if msg.src not in self._module_switch:
            raise KeyError(f"source module {msg.src!r} is not attached")
        dst_phys = self.control.resolve(msg.dst)  # raises for unknown dst
        now = self.sim.cycle
        msg.accepted_cycle = now
        src_switch = self._module_switch[msg.src]
        nfrag = self.cfg.fragments(msg.payload_bytes)
        remaining = msg.payload_bytes
        for i in range(nfrag):
            frag_bytes = min(remaining, self.cfg.max_payload_bytes)
            remaining -= frag_bytes
            pkt = _Packet(
                msg=msg,
                dst_phys=dst_phys,
                words=self.cfg.packet_words(frag_bytes),
                fragment=i,
                last_fragment=(i == nfrag - 1),
            )
            # NI serializes fragments onto the module->switch link.
            start = max(now + 1, self._port_free.get(("ni", msg.src), 0))
            self._port_free[("ni", msg.src)] = start + pkt.words
            if self.sim.journeying:
                jr = self.sim.journey
                jr.stamp_to(msg.mid, "ni_queue", start)
                jr.stamp_to(msg.mid, "link_transit",
                            start + self.cfg.link_latency)
            self._arrivals.append(
                (start + self.cfg.link_latency, pkt, src_switch)
            )
        self.sim.stats.counter("conochi.packets").inc(nfrag)
        self.sim.stats.counter("conochi.header_words").inc(
            nfrag * self.cfg.header_words
        )
        self.wake()  # new traffic ends any quiescent stretch

    def idle(self) -> bool:
        return not self._arrivals and not self._deliveries

    def descriptor(self) -> DesignParameters:
        return PAPER_TABLE_1["CoNoChi"]

    def area_slices(self) -> int:
        return self.area_model.conochi_total(
            len(self.grid.switches()), self.cfg.width
        )

    def system_area_slices(self) -> int:
        """Whole system: switches + interfaces + global control unit."""
        n_sw = len(self.grid.switches())
        return (
            self.area_model.conochi_total(n_sw, self.cfg.width)
            + len(self._module_switch)
            * self.area_model.conochi_interface(self.cfg.width)
            + self.area_model.conochi_control_unit(n_sw)
        )

    def fmax_hz(self) -> float:
        return self.clock_model.fmax_hz("conochi", self.cfg.width)

    def theoretical_dmax(self) -> int:
        return 2 * len(self._link_wires)

    # ==================================================================
    # runtime topology reconfiguration (global control unit)
    # ==================================================================
    def add_switch(self, coord: Coord,
                   wires: Optional[List[Tuple[Coord, TileType]]] = None) -> None:
        """Swap a FREE tile to a switch (plus optional wire tiles) and
        apply exploiting tables after the table-update latency."""
        if self.grid.get(*coord) is not TileType.FREE:
            raise ValueError(f"tile {coord} is not free")
        self.grid.set(*coord, TileType.SWITCH)
        for (wc, wt) in wires or []:
            if wt not in (TileType.HWIRE, TileType.VWIRE):
                raise ValueError(f"{wt} is not a wire tile type")
            if self.grid.get(*wc) is not TileType.FREE:
                raise ValueError(f"wire tile {wc} is not free")
            self.grid.set(*wc, wt)
        self._refresh_link_cache()
        self.sim.stats.counter("conochi.reconfig.switch_added").inc()
        if self.sim.tracing:
            self.sim.emit("conochi", "switch_added", at=coord)
            # insertion window: tile swapped -> exploiting tables applied
            self.sim.span_begin("conochi", "switch_insert", key=coord,
                                at=coord)

        def apply(_sim: Simulator) -> None:
            self.control.recompute_tables()
            if self.sim.tracing:
                self.sim.span_end("conochi", "switch_insert", key=coord)

        self.sim.after(self.cfg.table_update_latency, apply)

    def remove_switch(self, coord: Coord) -> None:
        """Remove a switch without stalling the NoC: re-route first,
        drain, then swap the tile to FREE."""
        if self.grid.get(*coord) is not TileType.SWITCH:
            raise ValueError(f"{coord} is not a switch")
        if self.control.attachments_at(coord):
            raise ValueError(f"switch {coord} still has attached modules")
        if coord in self._pending_migrations.values():
            raise ValueError(
                f"switch {coord} is the target of a pending migration"
            )
        # Hypothetical tables without the switch (but keep its own rows
        # so it can forward packets already heading to it while draining).
        old_row = dict(self.control.tables.get(coord, {}))
        self.grid.set(*coord, TileType.FREE)
        if not self.grid.is_connected():
            self.grid.set(*coord, TileType.SWITCH)
            raise ValueError(
                f"removing switch {coord} would disconnect the network"
            )
        try:
            new_tables = self.control.recompute_tables()
        except Exception:
            self.grid.set(*coord, TileType.SWITCH)
            self.control.recompute_tables()
            raise
        # Restore the tile until drained; tables already avoid it.
        self.grid.set(*coord, TileType.SWITCH)
        new_tables[coord] = old_row
        self._refresh_link_cache()
        if self.sim.tracing:
            # removal window: re-route decided -> drained and swapped out
            self.sim.span_begin("conochi", "switch_remove", key=coord,
                                at=coord)

        def try_swap(sim: Simulator) -> None:
            if any(c == coord for _, _, c in self._arrivals):
                sim.after(1, try_swap)
                return
            self.grid.set(*coord, TileType.FREE)
            self._prune_dangling_wires()
            self._refresh_link_cache()
            self.control.recompute_tables()
            self.sim.stats.counter("conochi.reconfig.switch_removed").inc()
            if self.sim.tracing:
                self.sim.emit("conochi", "switch_removed", at=coord)
                self.sim.span_end("conochi", "switch_remove", key=coord)

        self.sim.after(self.cfg.table_update_latency, try_swap)

    def _prune_dangling_wires(self) -> None:
        for pos in self.grid.dangling_wires():
            self.grid.set(*pos, TileType.FREE)

    def migrate_module(self, module: str, new_switch: Coord,
                       new_rect: Optional[Rect] = None) -> None:
        """Move a module to another switch; peers keep its logical name."""
        if module not in self._module_switch:
            raise KeyError(f"module {module!r} is not attached")
        if self.grid.get(*new_switch) is not TileType.SWITCH:
            raise ValueError(f"{new_switch} is not a switch tile")
        if self.switch_port_load(new_switch) >= self.cfg.max_ports:
            raise ValueError(f"switch {new_switch} has no free port")
        if module in self.grid.modules:
            self.grid.remove_module(module)
        if new_rect is not None:
            if not self._rect_touches(new_rect, new_switch):
                raise ValueError(
                    f"rect {new_rect} not adjacent to switch {new_switch}"
                )
            self.grid.place_module(module, new_rect)

        self._pending_migrations[module] = new_switch

        def apply(_sim: Simulator) -> None:
            # The control unit distributes tables for the new home
            # FIRST and only then cuts the interface over — otherwise
            # packets would inject at a switch that cannot route yet.
            if self._pending_migrations.get(module) != new_switch:
                return  # superseded by a newer migration of this module
            del self._pending_migrations[module]
            if self.grid.get(*new_switch) is not TileType.SWITCH:
                # target vanished despite the pending guard (defensive):
                # abort, the module stays at its old home
                self.sim.stats.counter(
                    "conochi.reconfig.migrations_aborted").inc()
                return
            self._module_switch[module] = new_switch
            self.control.migrate(module, new_switch)
            self.control.recompute_tables()

        self.sim.after(self.cfg.table_update_latency, apply)
        self.sim.stats.counter("conochi.reconfig.migrations").inc()

    # ==================================================================
    # per-cycle behaviour
    # ==================================================================
    def tick(self, sim: Simulator):
        now = sim.cycle
        self._transmissions = [t for t in self._transmissions if t[1] > now]
        self._note_parallelism(
            len({m for s, e, m in self._transmissions if s <= now < e})
        )
        if sim.telemetering:
            # packets awaiting switch routing = the fabric's input queue
            sim.telemetry.queue_depth(now, "conochi.fabric",
                                      len(self._arrivals))
        due_deliveries = [d for d in self._deliveries if d[0] <= now]
        for item in due_deliveries:
            self._deliveries.remove(item)
            self._deliver(item[1])
        due = [a for a in self._arrivals if a[0] <= now]
        for item in due:
            self._arrivals.remove(item)
            self._route(item[1], item[2], now)
        return self._quiescence(now)

    def _quiescence(self, now: int):
        """Quiescence hint: wake for the next switch arrival, delivery,
        or link-occupancy interval; stay hot while any link carries data
        next cycle (the parallelism probe samples every busy cycle)."""
        nxt: Optional[int] = None
        for start, end, _ in self._transmissions:
            if end <= now + 1:
                continue
            if start <= now + 1:
                return None
            nxt = start if nxt is None else min(nxt, start)
        for t, _, _ in self._arrivals:
            nxt = t if nxt is None else min(nxt, t)
        for t, _ in self._deliveries:
            nxt = t if nxt is None else min(nxt, t)
        if nxt is None:
            return SLEEP
        return nxt

    def _reserve(self, key: Tuple[object, object], now: int, words: int,
                 mid: int) -> int:
        earliest = now + self.cfg.switch_latency
        start = max(earliest, self._port_free.get(key, 0))
        # contention observability: cycles spent waiting for the port
        self.sim.stats.histogram("conochi.port_wait").add(start - earliest)
        if self.sim.telemetering:
            tel = self.sim.telemetry
            name = f"conochi.port.{key[0]}->{key[1]}"
            tel.link_busy(now, name, words)
            tel.backpressure(now, name, start - earliest)
        self._port_free[key] = start + words
        if key[1] != "local":
            # inter-switch links only (see DyNoC._reserve_port)
            self._transmissions.append((start, start + words, mid))
        return start

    # ------------------------------------------------------------------
    # fault hooks (repro.faults)
    # ------------------------------------------------------------------
    def route_around(self, failed) -> None:
        """Distribute routing tables avoiding every switch in ``failed``
        (empty set restores full routing) — the global control unit's
        fault response, reusing the planned table-update machinery."""
        self.control.recompute_avoiding(set(failed))
        self._refresh_link_cache()

    def _route(self, pkt: _Packet, at: Coord, now: int) -> None:
        if self.faulting and self.fault_injector.node_dead(at):
            # the switch died with this packet inside it
            self._landed_fragments.pop(pkt.msg.mid, None)
            self.fault_injector.kill_packet(pkt.msg, at,
                                            why="at_failed_switch")
            return
        pkt.hops += 1
        if pkt.hops > 4 * (self.cfg.grid_cols * self.cfg.grid_rows):
            raise SimError(
                f"CoNoChi packet looping: {pkt.msg.src}->{pkt.msg.dst} at {at}"
            )
        try:
            nxt = self.control.lookup(at, pkt.dst_phys)
        except KeyError:
            if self.faulting:
                # no route after a fault-driven table redistribution
                self._landed_fragments.pop(pkt.msg.mid, None)
                self.fault_injector.kill_packet(pkt.msg, at,
                                                why="unroutable")
                return
            raise
        if nxt == "local":
            start = self._reserve((at, "local"), now, pkt.words, pkt.msg.mid)
            if self.sim.journeying:
                jr = self.sim.journey
                jr.stamp_to(pkt.msg.mid, "arbitration_wait", start)
                jr.stamp_to(pkt.msg.mid, "delivery", start + pkt.words)
            self._land(pkt, start + pkt.words)
            self.sim.stats.histogram("conochi.hops").add(pkt.hops)
            return
        start = self._reserve((at, nxt), now, pkt.words, pkt.msg.mid)
        if self.sim.journeying:
            jr = self.sim.journey
            jr.stamp_to(pkt.msg.mid, "arbitration_wait", start)
            jr.stamp_to(pkt.msg.mid, "link_transit",
                        start + self.link_cycles(at, nxt))
        stats = self.sim.stats
        stats.counter("conochi.word_hops").inc(pkt.words)
        stats.counter("conochi.word_wire_tiles").inc(
            pkt.words * (self._link_wires[frozenset((at, nxt))] + 1)
        )
        if self.sim.tracing:
            self.sim.emit("conochi", "route", mid=pkt.msg.mid, at=at, nxt=nxt)
        self._arrivals.append(
            (start + self.link_cycles(at, nxt), pkt, nxt)  # type: ignore[arg-type]
        )

    def _land(self, pkt: _Packet, tail_cycle: int) -> None:
        msg = pkt.msg
        landed = self._landed_fragments.get(msg.mid, 0) + 1
        self._landed_fragments[msg.mid] = landed
        if landed >= self.cfg.fragments(msg.payload_bytes):
            del self._landed_fragments[msg.mid]
            self._deliveries.append((tail_cycle, msg))


# ----------------------------------------------------------------------
# standard topology + builder
# ----------------------------------------------------------------------
def standard_grid(num_modules: int, cols: int = 0, rows: int = 0) -> TileGrid:
    """A CoNoChi layout with one switch per module (the survey's Table 3
    assumption): switches form a chain with direct adjacency, modules
    occupy the free tiles beside their switch."""
    n = max(2, num_modules)
    cols = cols or (n + 2)
    rows = rows or 4
    grid = TileGrid(cols, rows)
    for i in range(n):
        grid.set(1 + i, 1, TileType.SWITCH)
    return grid


def ladder_grid(num_modules: int) -> TileGrid:
    """A two-row switch ladder for larger systems.

    Every interior switch uses exactly its four ports: west + east
    neighbours, the vertical rung, and one module — halving the network
    diameter relative to a chain while staying one-switch-per-module
    (the Table 3 accounting basis).
    """
    n = max(2, num_modules)
    half = -(-n // 2)
    grid = TileGrid(half + 2, 6)
    for i in range(half):
        grid.set(1 + i, 2, TileType.SWITCH)          # bottom rail
    for i in range(n - half):
        grid.set(1 + i, 3, TileType.SWITCH)          # top rail
    return grid


def _free_neighbor(grid: TileGrid, switch: Coord) -> Rect:
    """A FREE tile orthogonally adjacent to ``switch`` (module site)."""
    x, y = switch
    for dx, dy in ((0, -1), (0, 1), (-1, 0), (1, 0)):
        nx, ny = x + dx, y + dy
        if grid.in_bounds(nx, ny) and grid.get(nx, ny) is TileType.FREE:
            return Rect(nx, ny, 1, 1)
    raise ValueError(f"switch {switch} has no free neighbouring tile")


def build_conochi(
    num_modules: int = 4,
    width: int = 32,
    seed: int = 1,
    grid: Optional[TileGrid] = None,
    sim: Optional[Simulator] = None,
    cfg: Optional[CoNoChiConfig] = None,
    **cfg_overrides: object,
) -> CoNoChi:
    """Build a CoNoChi system: one switch per module, modules attached
    to the free tiles beside their switch."""
    if grid is None:
        grid = (standard_grid(num_modules) if num_modules <= 6
                else ladder_grid(num_modules))
    if cfg is None:
        cfg = CoNoChiConfig(grid_cols=grid.cols, grid_rows=grid.rows,
                            width=width, **cfg_overrides)  # type: ignore[arg-type]
    sim = sim or Simulator(name=f"conochi[{grid.cols}x{grid.rows}]")
    arch = CoNoChi(sim, cfg, grid=grid)
    sim.add(arch)
    switches = grid.switches()
    if len(switches) < num_modules:
        raise ValueError(
            f"grid has {len(switches)} switches for {num_modules} modules"
        )
    for i in range(num_modules):
        switch = switches[i]
        rect = _free_neighbor(grid, switch)
        arch.attach(f"m{i}", rect=rect, switch=switch)
    return arch
