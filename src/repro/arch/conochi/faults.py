"""CoNoChi fault injection — dependability beyond the paper.

The paper's reconfiguration machinery (table routing + global control)
is exactly what a NoC needs to also tolerate *unplanned* switch loss;
this extension exercises it as a fault-recovery path:

* :func:`fail_switch` marks a switch failed at once: packets at or
  routed to it are lost until the control unit *detects* the failure
  (after ``detection_latency`` cycles) and distributes tables that
  avoid it;
* modules homed at the failed switch become unreachable; packets toward
  them are dropped at the last healthy switch and counted;
* :func:`repair_switch` restores the switch (a fresh configuration of
  the same tile) and re-optimizes routes.

Loss is explicit: dropped messages are flagged, never silently retried
— retry policy belongs to the application, as the paper's protocol
philosophy ("the system application deals fairly with the resources")
prescribes.

This module predates the cross-architecture framework in
:mod:`repro.faults`, which supersedes it for new code (schedule-driven
injection, recovery policies, retransmission, resilience metrics); it
is kept as the stable CoNoChi-specific API and now delegates its table
redistribution to :meth:`CoNoChi.route_around` — the same machinery the
unified :class:`~repro.faults.policies.ConoChiPolicy` uses.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.arch.conochi.arch import CoNoChi
from repro.fabric.tiles import TileType

Coord = Tuple[int, int]


class FaultInjector:
    """Manages failed switches of one CoNoChi instance."""

    def __init__(self, arch: CoNoChi, detection_latency: Optional[int] = None):
        self.arch = arch
        self.detection_latency = (
            detection_latency
            if detection_latency is not None
            else 2 * arch.cfg.table_update_latency
        )
        self.failed: Set[Coord] = set()
        self._install_hooks()

    # ------------------------------------------------------------------
    def _install_hooks(self) -> None:
        """Interpose on the architecture's routing step: packets at a
        failed switch, or without a route, are dropped."""
        arch = self.arch
        original_route = arch._route
        injector = self

        def guarded_route(pkt, at, now):
            if at in injector.failed:
                injector._drop(pkt, at, "at_failed_switch")
                return
            try:
                original_route(pkt, at, now)
            except KeyError:
                # no table entry (destination unreachable after failure)
                injector._drop(pkt, at, "unroutable")

        arch._route = guarded_route  # type: ignore[method-assign]

    def _drop(self, pkt, at: Coord, why: str) -> None:
        msg = pkt.msg
        msg.dropped = True
        self.arch._landed_fragments.pop(msg.mid, None)
        self.arch.sim.stats.counter("conochi.packets.dropped").inc()
        if self.arch.sim.tracing:
            self.arch.sim.emit("conochi", "drop", mid=msg.mid, at=at, why=why)

    # ------------------------------------------------------------------
    def fail_switch(self, coord: Coord) -> None:
        """Inject an unplanned failure of the switch at ``coord``."""
        if self.arch.grid.get(*coord) is not TileType.SWITCH:
            raise ValueError(f"{coord} is not a switch")
        if coord in self.failed:
            raise ValueError(f"switch {coord} already failed")
        self.failed.add(coord)
        self.arch.sim.stats.counter("conochi.faults.injected").inc()
        if self.arch.sim.tracing:
            self.arch.sim.emit("conochi", "switch_failed", at=coord)
            # outage span: failure injected -> reconfigured back in
            self.arch.sim.span_begin("conochi", "switch_outage", key=coord,
                                     at=coord)
        self.arch.sim.after(self.detection_latency, self._recover)

    def repair_switch(self, coord: Coord) -> None:
        """Reconfigure the failed switch back into service."""
        if coord not in self.failed:
            raise ValueError(f"switch {coord} is not failed")
        self.failed.remove(coord)
        self.arch.sim.stats.counter("conochi.faults.repaired").inc()
        if self.arch.sim.tracing:
            self.arch.sim.emit("conochi", "switch_repaired", at=coord)
            self.arch.sim.span_end("conochi", "switch_outage", key=coord)
        self.arch.sim.after(self.arch.cfg.table_update_latency,
                            self._recover)

    # ------------------------------------------------------------------
    def _recover(self, _sim=None) -> None:
        """Control-unit response: distribute tables avoiding every
        currently failed switch (unreachable addresses get no entry)."""
        self.arch.route_around(self.failed)

    # ------------------------------------------------------------------
    def reachable(self, module: str) -> bool:
        """Whether the module's switch is currently healthy."""
        return self.arch._module_switch[module] not in self.failed
