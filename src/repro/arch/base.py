"""Common interface of all four communication architectures.

A :class:`CommArchitecture` owns a :class:`~repro.sim.Simulator`, a set
of attached hardware modules, and a :class:`MessageLog`. Modules talk to
the interconnect exclusively through :class:`ArchPort` objects, so every
workload generator and every metric works unchanged across RMBoC,
BUS-COM, DyNoC and CoNoChi.

The measurement hooks mirror the paper's taxonomy:

* message latency (creation to last-word delivery) feeds l_p studies;
* the per-cycle count of *independent concurrent transfers* feeds the
  parallelism measure d_max;
* byte counters feed effective-bandwidth studies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.parameters import DesignParameters
from repro.sim import Simulator

_msg_ids = itertools.count()

#: construction observer — see :func:`set_new_arch_hook`
_NEW_ARCH_HOOK: Optional[Callable[["CommArchitecture"], None]] = None


def set_new_arch_hook(
    hook: Optional[Callable[["CommArchitecture"], None]],
) -> Optional[Callable[["CommArchitecture"], None]]:
    """Install a hook called with every newly constructed architecture
    (the chaos harness uses this to discover which architectures an
    experiment builds); returns the previous hook for restoration."""
    global _NEW_ARCH_HOOK
    prev = _NEW_ARCH_HOOK
    _NEW_ARCH_HOOK = hook
    return prev


@dataclass
class Message:
    """One application-level transfer request."""

    src: str
    dst: str
    payload_bytes: int
    tag: str = ""
    created_cycle: int = -1
    accepted_cycle: int = -1   # first cycle the interconnect started serving it
    delivered_cycle: int = -1  # cycle the last payload word arrived
    dropped: bool = False      # lost to an injected fault (never delivered)
    mid: int = field(default_factory=lambda: next(_msg_ids))

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0:
            raise ValueError(f"payload must be positive, got {self.payload_bytes}")
        if self.src == self.dst:
            raise ValueError(f"message to self ({self.src!r})")

    @property
    def delivered(self) -> bool:
        return self.delivered_cycle >= 0

    @property
    def latency(self) -> int:
        """Cycles from injection to delivery of the last payload word."""
        if not self.delivered:
            raise ValueError(f"message {self.mid} not delivered")
        return self.delivered_cycle - self.created_cycle


class MessageLog:
    """Central record of all messages injected into one architecture."""

    def __init__(self) -> None:
        self._messages: List[Message] = []

    def sent(self, msg: Message) -> None:
        self._messages.append(msg)

    @property
    def messages(self) -> Tuple[Message, ...]:
        return tuple(self._messages)

    @property
    def total(self) -> int:
        return len(self._messages)

    def delivered(self) -> List[Message]:
        return [m for m in self._messages if m.delivered]

    def pending(self) -> List[Message]:
        return [m for m in self._messages
                if not m.delivered and not m.dropped]

    def dropped(self) -> List[Message]:
        return [m for m in self._messages if m.dropped]

    def latencies(
        self, src: Optional[str] = None, dst: Optional[str] = None
    ) -> List[int]:
        return [
            m.latency
            for m in self._messages
            if m.delivered
            and (src is None or m.src == src)
            and (dst is None or m.dst == dst)
        ]

    def delivered_payload_bytes(self) -> int:
        return sum(m.payload_bytes for m in self._messages if m.delivered)

    def all_delivered(self) -> bool:
        """Everything not lost to an injected fault has arrived."""
        return all(m.delivered or m.dropped for m in self._messages)

    def summary_by_pair(self) -> Dict[Tuple[str, str], Dict[str, float]]:
        """Per (src, dst) pair: message count, delivered payload bytes,
        mean latency — the raw material of fairness and hotspot studies."""
        out: Dict[Tuple[str, str], Dict[str, float]] = {}
        for m in self._messages:
            entry = out.setdefault(
                (m.src, m.dst),
                {"messages": 0, "bytes": 0, "_lat_sum": 0.0, "_lat_n": 0},
            )
            entry["messages"] += 1
            if m.delivered:
                entry["bytes"] += m.payload_bytes
                entry["_lat_sum"] += m.latency
                entry["_lat_n"] += 1
        for entry in out.values():
            n = entry.pop("_lat_n")
            total = entry.pop("_lat_sum")
            entry["mean_latency"] = total / n if n else float("nan")
        return out


class ArchPort:
    """A hardware module's attachment point to the interconnect."""

    def __init__(self, arch: "CommArchitecture", module: str):
        self.arch = arch
        self.module = module
        self.received: List[Message] = []

    def send(self, dst: str, payload_bytes: int, tag: str = "") -> Message:
        """Inject a message; returns the tracked :class:`Message`."""
        # per-architecture ids: traces of identical runs are identical,
        # whatever else ran in the process before them
        msg = Message(src=self.module, dst=dst, payload_bytes=payload_bytes,
                      tag=tag, mid=next(self.arch._mid_seq))
        sim = self.arch.sim
        msg.created_cycle = sim.cycle
        self.arch.log.sent(msg)
        # open the provenance record before _submit so the injection
        # path's stamps land on it (sampling decides inside start())
        if sim.journeying:
            sim.journey.start(msg, sim.cycle)
        self.arch._submit(msg)
        return msg

    def take_received(self) -> List[Message]:
        """Pop and return everything delivered since the last call."""
        out, self.received = self.received, []
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"ArchPort({self.arch.name}:{self.module})"


class CommArchitecture:
    """Base class: lifecycle, ports, logging, parallelism probes.

    Subclasses implement ``_submit`` (accept a message for transport),
    ``idle`` (no in-flight traffic), ``descriptor`` (Table 1 row),
    ``area_slices``/``fmax_hz`` (Tables 2-3), and the reconfiguration
    hooks meaningful for their style.
    """

    #: canonical lower-case architecture key ("rmboc", ...)
    KEY: str = "base"

    def __init__(self, sim: Simulator, width: int):
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        # `_sim` is shared with Component for subclasses inheriting both;
        # Component.bind() verifies the simulators agree.
        self._sim = sim
        self.width = width
        self.log = MessageLog()
        self.ports: Dict[str, ArchPort] = {}
        self._mid_seq = itertools.count()
        # one sample per active cycle: the biggest sample store in long
        # traffic runs, and only ever read via max/mean/count — so the
        # bounded bucketed mode loses nothing (exact min/max/mean) while
        # keeping memory O(1) in run length
        self._parallelism_hist = sim.stats.histogram(
            "parallelism.concurrent", mode="bucketed"
        )
        # fault-injection guard: raised only while a non-empty
        # FaultSchedule is attached, so the fault-free hot path costs
        # one dead boolean test (mirrors sim.tracing/sim.telemetering)
        self.faulting = False
        self.fault_injector: Optional[Any] = None
        #: installed batch kernel (repro.sim.vec), or None on the
        #: object path — subclasses dispatch their tick through it
        self.vec: Optional[Any] = None
        if _NEW_ARCH_HOOK is not None:
            _NEW_ARCH_HOOK(self)

    @property
    def sim(self) -> Simulator:
        return self._sim

    # -- module lifecycle ------------------------------------------------
    @property
    def modules(self) -> Tuple[str, ...]:
        return tuple(self.ports)

    def attach(self, module: str, **placement: Any) -> ArchPort:
        """Attach a module and return its port."""
        if module in self.ports:
            raise ValueError(f"module {module!r} already attached")
        self._attach_impl(module, **placement)
        port = ArchPort(self, module)
        self.ports[module] = port
        return port

    def detach(self, module: str) -> None:
        if module not in self.ports:
            raise KeyError(f"module {module!r} is not attached")
        self._detach_impl(module)
        del self.ports[module]

    # -- transport (subclass responsibilities) ----------------------------
    def _attach_impl(self, module: str, **placement: Any) -> None:
        raise NotImplementedError

    def _detach_impl(self, module: str) -> None:
        raise NotImplementedError

    def _submit(self, msg: Message) -> None:
        raise NotImplementedError

    def idle(self) -> bool:
        """True when no traffic is in flight anywhere in the interconnect."""
        raise NotImplementedError

    # -- delivery helper ---------------------------------------------------
    def _deliver(self, msg: Message) -> None:
        if self.faulting and self.fault_injector.intercept_delivery(msg):
            return  # consumed by an injected fault (dropped, crashed dst)
        sim = self.sim
        msg.delivered_cycle = sim.cycle
        port = self.ports.get(msg.dst)
        if port is not None:
            port.received.append(msg)
        sim.stats.counter("delivered.messages").inc()
        sim.stats.counter("delivered.bytes").inc(msg.payload_bytes)
        sim.stats.histogram("latency.message").add(msg.latency)
        # every architecture delivers through here, so one guarded site
        # gives per-flow latency/jitter telemetry across all six fabrics
        if sim.telemetering:
            sim.telemetry.record_flow(sim.cycle, msg.src, msg.dst,
                                      msg.latency, msg.payload_bytes)
        if sim.journeying:
            sim.journey.finalize(msg, sim.cycle)

    def _note_parallelism(self, concurrent_transfers: int) -> None:
        """Record the number of independent transfers active this cycle."""
        if concurrent_transfers > 0:
            self._parallelism_hist.add(concurrent_transfers)

    # -- vectorized backend (repro.sim.vec) --------------------------------
    def _init_vec(self, sim: Optional[Simulator] = None) -> None:
        """Install this architecture's batch kernel when running on a
        vectorizing simulator.  Called at the *end* of a subclass
        ``__init__`` (the kernel swaps hot containers in place); a
        subclass without a kernel (``_make_vec_kernel`` returning None)
        simply stays on the object path — hybrid execution.

        Architectures that also inherit :class:`~repro.sim.Component`
        pass their simulator explicitly: ``Component.__init__`` resets
        ``_sim`` to None until ``bind``, which runs only at ``sim.add``.
        """
        if sim is not None:
            self._sim = sim
        sim = self._sim
        if getattr(sim, "vectorized", False):
            kernel = self._make_vec_kernel()
            if kernel is not None:
                self.vec = kernel
                sim.register_vec_kernel(kernel)

    def _make_vec_kernel(self) -> Optional[Any]:
        """Build the architecture's compiled-tick batch kernel (see
        :mod:`repro.sim.vec.kernels`); None means no vec support."""
        return None

    @property
    def observed_dmax(self) -> int:
        """Maximum concurrent independent transfers seen so far."""
        h = self._parallelism_hist
        return int(h.max) if h.count else 0

    # -- paper-facing metadata ---------------------------------------------
    def descriptor(self) -> DesignParameters:
        raise NotImplementedError

    def area_slices(self) -> int:
        raise NotImplementedError

    def fmax_hz(self) -> float:
        raise NotImplementedError

    def theoretical_dmax(self) -> int:
        raise NotImplementedError

    # -- convenience -------------------------------------------------------
    def run_to_completion(self, max_cycles: int = 1_000_000) -> int:
        """Run until every injected message is delivered and the fabric
        drains; returns the final cycle."""
        return self.sim.run_until(
            lambda s: self.log.all_delivered() and self.idle(),
            max_cycles=max_cycles,
        )
