"""DyNoC configuration."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class DyNoCConfig:
    """Structural and timing parameters of a DyNoC instance.

    The survey gives no per-router latency for DyNoC; ``router_latency``
    defaults to 3 cycles (header decode + route + arbitrate), flagged as
    *assumed* in Table 2 output. The >= 4-bit control overhead of
    Table 1 rounds up to one header word on any supported width.
    """

    mesh_cols: int = 2
    mesh_rows: int = 2
    width: int = 32
    router_latency: int = 3   # header processing per router, cycles
    link_latency: int = 1     # wire cycles between adjacent routers
    header_words: int = 1     # >= 4 bit control overhead -> 1 word
    ttl_hops_factor: int = 8  # packet hop budget = factor * (cols + rows)
    #: "vct" (virtual cut-through: header forwarded while the payload
    #: streams) or "saf" (store-and-forward: full packet buffered per
    #: hop) — the switching-mode knob behind Table 1's classification
    switching: str = "vct"

    def __post_init__(self) -> None:
        if self.mesh_cols < 1 or self.mesh_rows < 1:
            raise ValueError("mesh must be at least 1x1")
        if self.width < 1:
            raise ValueError("width must be >= 1")
        if self.router_latency < 1 or self.link_latency < 1:
            raise ValueError("latencies must be >= 1")
        if self.header_words < 1:
            raise ValueError("header_words must be >= 1")
        if self.ttl_hops_factor < 2:
            raise ValueError("ttl_hops_factor must be >= 2")
        if self.switching not in ("vct", "saf"):
            raise ValueError(
                f"switching must be 'vct' or 'saf', got {self.switching!r}"
            )

    @property
    def num_routers(self) -> int:
        return self.mesh_cols * self.mesh_rows

    @property
    def ttl_hops(self) -> int:
        return self.ttl_hops_factor * (self.mesh_cols + self.mesh_rows)

    def payload_words(self, payload_bytes: int) -> int:
        return math.ceil(payload_bytes * 8 / self.width)

    def packet_words(self, payload_bytes: int) -> int:
        return self.header_words + self.payload_words(payload_bytes)

    @classmethod
    def for_modules(cls, num_modules: int, width: int = 32, **kw: object) -> "DyNoCConfig":
        """Smallest square mesh hosting ``num_modules`` 1x1 modules."""
        side = max(1, math.ceil(math.sqrt(num_modules)))
        return cls(mesh_cols=side, mesh_rows=side, width=width, **kw)  # type: ignore[arg-type]
