"""Placement integration: online placer + DyNoC routability.

The generic :class:`~repro.reconfig.placement.FreeRectPlacer` knows free
space; the DyNoC model knows S-XY routability. This glue searches the
placer's candidate positions (with DyNoC's margin/gap rules) and commits
the first one the network accepts, optionally ranking candidates by the
extra detour they impose on existing traffic pairs — the online-
placement concern the survey's §1 lists among DPR's open problems.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.arch.dynoc.arch import DyNoC
from repro.arch.dynoc.routing import RoutingError, trace_route
from repro.fabric.geometry import Rect
from repro.reconfig.placement import FreeRectPlacer, PlacementError


def placer_for(arch: DyNoC) -> FreeRectPlacer:
    """A placer matching the mesh with DyNoC's surround rules, seeded
    with the currently placed modules."""
    placer = FreeRectPlacer(arch.cfg.mesh_cols, arch.cfg.mesh_rows,
                            margin=1, gap=1)
    for name, pl in arch._placements.items():
        # existing placements may legally sit on the border (1x1
        # modules keep their router); seed them without margin checks
        placer.commit(name, pl.rect, force=True)
    return placer


def candidate_positions(placer: FreeRectPlacer, w: int, h: int
                        ) -> Iterator[Rect]:
    """All feasible positions in bottom-left scan order."""
    for y in range(placer.rows - h + 1):
        for x in range(placer.cols - w + 1):
            rect = Rect(x, y, w, h)
            if placer._candidate_ok(rect):
                yield rect


def detour_cost(arch: DyNoC, rect: Rect) -> Optional[int]:
    """Total S-XY path length between all module pairs if ``rect`` were
    placed (None when some pair becomes unroutable)."""
    blocked = set(rect.cells()) if rect.area_clbs > 1 else set()

    def active(c):
        return arch.is_active(c) and c not in blocked

    def extent(c):
        if c in blocked:
            return (rect.y, rect.y2 - 1, rect.x, rect.x2 - 1)
        return arch._extent(c)

    total = 0
    accesses = [pl.access for pl in arch._placements.values()]
    for a in accesses:
        for b in accesses:
            if a == b:
                continue
            try:
                total += len(trace_route(a, b, active, extent,
                                         max_hops=arch.cfg.ttl_hops)) - 1
            except RoutingError:
                return None
    return total


def place_module_online(
    arch: DyNoC,
    name: str,
    w: int,
    h: int,
    placer: Optional[FreeRectPlacer] = None,
    minimize_detour: bool = False,
) -> Rect:
    """Find a position for a ``w x h`` module and attach it.

    ``minimize_detour=True`` ranks feasible positions by the total extra
    path length they impose on traffic between the already placed
    modules (slower; use for latency-critical systems). Raises
    :class:`PlacementError` when no position both fits and routes.
    """
    placer = placer or placer_for(arch)
    candidates: List[Tuple[int, Rect]] = []
    for rect in candidate_positions(placer, w, h):
        if not minimize_detour:
            candidates.append((0, rect))
            continue
        cost = detour_cost(arch, rect)
        if cost is not None:
            candidates.append((cost, rect))
    if minimize_detour:
        candidates.sort(key=lambda cr: (cr[0], cr[1]))
    errors: List[str] = []
    for _, rect in candidates:
        try:
            arch.attach(name, rect=rect)
        except (RoutingError, ValueError) as exc:
            errors.append(f"{rect}: {exc}")
            continue
        placer.commit(name, rect)
        return rect
    raise PlacementError(
        f"no routable {w}x{h} position for {name!r}"
        + (f" (tried {len(candidates)})" if candidates else " (no space)")
    )
