"""S-XY routing: XY routing that surrounds placed modules.

The algorithm (Bobda et al.) behaves like deterministic XY routing until
the next hop is a removed router (a placed module's interior). It then
enters a *surround* mode:

* **SH** (blocked while travelling in X): the packet slides along the
  module face in Y — toward the destination row when possible, else
  toward the nearer module edge — until the X-neighbour clears, then
  resumes normal XY;
* **SV** (blocked while travelling in Y, i.e. already in the destination
  column): the packet slides in X along the face until the Y-neighbour
  clears, takes the Y step and resumes normal XY.

Routers adjacent to a module know its extent (the paper: "the routers
surrounding the component are informed in which direction a packet
should be sent"); here that knowledge is the ``extent`` callback, which
reports how far an obstacle stretches so ties pick the shorter detour.

Functions are pure so the algorithm is unit- and property-testable in
isolation; :func:`trace_route` walks a full path without a simulator and
is also used by the placement validator to certify that a configuration
is routable for all module pairs before it is accepted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

Coord = Tuple[int, int]
ActiveFn = Callable[[Coord], bool]
# extent(blocked_cell) -> (y_low, y_high, x_low, x_high) of the obstacle
# rectangle containing the cell, or None when unknown.
ExtentFn = Callable[[Coord], Optional[Tuple[int, int, int, int]]]


class Mode(enum.Enum):
    NORMAL = "N-XY"
    SURROUND_H = "SH-XY"
    SURROUND_V = "SV-XY"


@dataclass(frozen=True)
class RouteState:
    """Per-packet routing state (carried in the header in hardware)."""

    mode: Mode = Mode.NORMAL
    dir_x: int = 0        # blocked X direction (SH) / detour direction (SV)
    dir_y: int = 0        # detour direction (SH) / blocked Y direction (SV)
    flipped: bool = False  # whether the detour direction was reversed once


NORMAL = RouteState()


def _sign(v: int) -> int:
    return (v > 0) - (v < 0)


class RoutingError(RuntimeError):
    """Raised when S-XY cannot make progress (invalid placement)."""


def _no_extent(_cell: Coord) -> Optional[Tuple[int, int, int, int]]:
    return None


def sxy_next(
    cur: Coord,
    dst: Coord,
    state: RouteState,
    active: ActiveFn,
    extent: ExtentFn = _no_extent,
) -> Tuple[Coord, RouteState]:
    """One S-XY routing decision. ``cur`` must differ from ``dst``.

    Returns the next router coordinate and the updated packet state.
    Raises :class:`RoutingError` when boxed in, which placement
    validation turns into a rejected placement rather than a livelock.
    """
    if cur == dst:
        raise ValueError("sxy_next called at the destination")
    x, y = cur

    if state.mode is Mode.SURROUND_H:
        dx = state.dir_x
        # Exit condition: the blocked X direction has cleared.
        if active((x + dx, y)):
            return (x + dx, y), NORMAL
        return _slide_y(cur, state, active)

    if state.mode is Mode.SURROUND_V:
        dy = state.dir_y
        if active((x, y + dy)):
            return (x, y + dy), NORMAL
        return _slide_x(cur, state, active)

    # NORMAL: X first, then Y.
    if x != dst[0]:
        dx = _sign(dst[0] - x)
        nxt = (x + dx, y)
        if active(nxt):
            return nxt, NORMAL
        return _enter_surround_h(cur, dst, dx, active, extent)
    dy = _sign(dst[1] - y)
    nxt = (x, y + dy)
    if active(nxt):
        return nxt, NORMAL
    return _enter_surround_v(cur, dst, dy, active, extent)


def _enter_surround_h(
    cur: Coord, dst: Coord, dx: int, active: ActiveFn, extent: ExtentFn
) -> Tuple[Coord, RouteState]:
    x, y = cur
    dy = _sign(dst[1] - y)
    if dy == 0:
        # Destination row blocked head-on: detour toward the nearer
        # module edge (the surrounding routers' obstacle knowledge).
        box = extent((x + dx, y))
        if box is not None:
            y_low, y_high, _, _ = box
            dy = 1 if (y_high - y) <= (y - y_low) else -1
        else:
            dy = 1
    state = RouteState(Mode.SURROUND_H, dir_x=dx, dir_y=dy)
    return _slide_y(cur, state, active)


def _enter_surround_v(
    cur: Coord, dst: Coord, dy: int, active: ActiveFn, extent: ExtentFn
) -> Tuple[Coord, RouteState]:
    x, y = cur
    box = extent((x, y + dy))
    if box is not None:
        _, _, x_low, x_high = box
        dx = 1 if (x_high - x) <= (x - x_low) else -1
    else:
        dx = 1
    state = RouteState(Mode.SURROUND_V, dir_x=dx, dir_y=dy)
    return _slide_x(cur, state, active)


def _slide_y(
    cur: Coord, state: RouteState, active: ActiveFn
) -> Tuple[Coord, RouteState]:
    """SH mode: move along the module face in Y."""
    x, y = cur
    nxt = (x, y + state.dir_y)
    if active(nxt):
        return nxt, state
    if not state.flipped:
        flipped = replace(state, dir_y=-state.dir_y, flipped=True)
        nxt = (x, y - state.dir_y)
        if active(nxt):
            return nxt, flipped
    back = (x - state.dir_x, y)
    if active(back):
        return back, replace(state, flipped=True)
    raise RoutingError(f"S-XY boxed in at {cur} (SH)")


def _slide_x(
    cur: Coord, state: RouteState, active: ActiveFn
) -> Tuple[Coord, RouteState]:
    """SV mode: move along the module face in X."""
    x, y = cur
    nxt = (x + state.dir_x, y)
    if active(nxt):
        return nxt, state
    if not state.flipped:
        flipped = replace(state, dir_x=-state.dir_x, flipped=True)
        nxt = (x - state.dir_x, y)
        if active(nxt):
            return nxt, flipped
    back = (x, y - state.dir_y)
    if active(back):
        return back, replace(state, flipped=True)
    raise RoutingError(f"S-XY boxed in at {cur} (SV)")


def trace_route(
    src: Coord,
    dst: Coord,
    active: ActiveFn,
    extent: ExtentFn = _no_extent,
    max_hops: int = 10_000,
) -> List[Coord]:
    """Walk S-XY from ``src`` to ``dst``; returns the router path
    inclusive of both endpoints.

    Raises :class:`RoutingError` on livelock (a (coord, state) pair
    repeats) or when boxed in — used by placement validation.
    """
    path = [src]
    cur, state = src, NORMAL
    seen = {(cur, state)}
    while cur != dst:
        cur, state = sxy_next(cur, dst, state, active, extent)
        path.append(cur)
        key = (cur, state)
        if key in seen:
            raise RoutingError(
                f"S-XY livelock routing {src}->{dst} at {cur} ({state.mode.value})"
            )
        seen.add(key)
        if len(path) > max_hops:
            raise RoutingError(f"S-XY exceeded {max_hops} hops {src}->{dst}")
    return path
