"""DyNoC cycle-level model: router mesh, placement, packet transport.

Transport is virtual cut-through: a packet's header claims each router's
output port in FIFO order after ``router_latency`` cycles of processing;
the payload streams behind the header, occupying the link for the
packet's full word length. Buffers are unbounded (the prototype used
small handshaked buffers; unbounded buffers keep the model deadlock-free
so the survey's latency/parallelism properties are isolated from buffer
sizing) — queueing still shows up as port-busy waiting.

Placement follows the paper's rule: a module covering more than one PE
deactivates its interior routers and must remain completely surrounded
by active routers. Every placement mutation is validated by walking
S-XY for all module pairs; an unroutable placement is rejected up front
instead of livelocking mid-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.base import CommArchitecture, Message
from repro.arch.dynoc.config import DyNoCConfig
from repro.arch.dynoc.routing import (
    Coord,
    NORMAL,
    RouteState,
    RoutingError,
    trace_route,
    sxy_next,
)
from repro.core.parameters import PAPER_TABLE_1, DesignParameters
from repro.fabric.area import AreaModel
from repro.fabric.geometry import Rect
from repro.fabric.timing import ClockModel
from repro.sim import SLEEP, Component, SimError, Simulator
from repro.sim.vec.kernels import BatchKernel
from repro.sim.vec.store import EventQueue, IntervalSet


@dataclass
class _Packet:
    msg: Message
    dst_access: Coord
    words: int
    state: RouteState
    hops: int = 0


@dataclass
class _Placement:
    rect: Rect
    access: Coord

    @property
    def is_single_pe(self) -> bool:
        return self.rect.w == 1 and self.rect.h == 1


class DyNoC(CommArchitecture, Component):
    """The DyNoC interconnect on a ``cols x rows`` PE/router mesh."""

    KEY = "dynoc"

    #: hot containers the batch kernel swaps for SoA stores (QL006)
    VEC_FIELDS = ("_arrivals", "_deliveries", "_transmissions")
    #: tick-mutated state the kernel shares with the object path (QL006)
    VEC_SHARED = ("_port_free",)

    def __init__(self, sim: Simulator, cfg: DyNoCConfig,
                 area_model: Optional[AreaModel] = None,
                 clock_model: Optional[ClockModel] = None):
        CommArchitecture.__init__(self, sim, cfg.width)
        Component.__init__(self, "dynoc")
        self.cfg = cfg
        self.area_model = area_model or AreaModel()
        self.clock_model = clock_model or ClockModel()
        self._router_active: Dict[Coord, bool] = {
            (x, y): True
            for x in range(cfg.mesh_cols)
            for y in range(cfg.mesh_rows)
        }
        self._placements: Dict[str, _Placement] = {}
        self._pe_used: Dict[Coord, str] = {}
        # fault state: routers deactivated by failure (vs. by placement)
        self._failed_routers: set = set()
        # (arrive_cycle, packet, router) — header arrivals awaiting routing
        self._arrivals: List[Tuple[int, _Packet, Coord]] = []
        # output-port reservations: (router, next_router|"local") -> free_at
        self._port_free: Dict[Tuple[Coord, object], int] = {}
        self._deliveries: List[Tuple[int, Message]] = []
        # link-occupancy intervals (start, end, packet-id) — the
        # parallelism probe counts distinct packets on wires per cycle,
        # the paper's "independent data transfers".
        self._transmissions: List[Tuple[int, int, int]] = []
        self._init_vec(sim)

    # ==================================================================
    # activity / topology queries
    # ==================================================================
    def is_active(self, coord: Coord) -> bool:
        return self._router_active.get(coord, False)

    def _extent(self, cell: Coord) -> Optional[Tuple[int, int, int, int]]:
        for pl in self._placements.values():
            if not pl.is_single_pe and pl.rect.contains_point(*cell):
                r = pl.rect
                return (r.y, r.y2 - 1, r.x, r.x2 - 1)
        return None

    def active_routers(self) -> int:
        return sum(1 for v in self._router_active.values() if v)

    def active_links(self) -> int:
        """Unidirectional links between active routers (d_max bound)."""
        n = 0
        for (x, y), ok in self._router_active.items():
            if not ok:
                continue
            for dx, dy in ((1, 0), (0, 1)):
                if self.is_active((x + dx, y + dy)):
                    n += 2  # both directions
        return n

    # ==================================================================
    # placement
    # ==================================================================
    def place_module(self, name: str, rect: Rect,
                     access: Optional[Coord] = None) -> _Placement:
        """Place ``name`` over ``rect`` PEs, deactivating interior routers.

        Multi-PE modules must keep a one-router margin to the mesh border
        (the paper's "completely surrounded by routers" rule); their
        default access router sits immediately west of the lower-left
        corner. 1x1 modules keep and use their own router.
        """
        if name in self._placements:
            raise ValueError(f"module {name!r} already placed")
        if rect.x2 > self.cfg.mesh_cols or rect.y2 > self.cfg.mesh_rows:
            raise ValueError(f"rect {rect} outside mesh")
        for cell in rect.cells():
            if cell in self._pe_used:
                raise ValueError(
                    f"PE {cell} already used by {self._pe_used[cell]!r}"
                )
        single = rect.w == 1 and rect.h == 1
        if single:
            access = access or (rect.x, rect.y)
            if not self.is_active(access):
                raise ValueError(f"access router {access} is inactive")
        else:
            if (rect.x < 1 or rect.y < 1
                    or rect.x2 > self.cfg.mesh_cols - 1
                    or rect.y2 > self.cfg.mesh_rows - 1):
                raise ValueError(
                    f"multi-PE module {name!r} at {rect} is not completely "
                    "surrounded by routers"
                )
            if self._pending_inside(rect):
                raise SimError(
                    f"cannot place {name!r}: packets still routed through {rect}"
                )
            access = access or (rect.x - 1, rect.y)
            if rect.contains_point(*access) or not self.is_active(access):
                raise ValueError(f"access router {access} invalid for {rect}")

        placement = _Placement(rect, access)
        self._placements[name] = placement
        for cell in rect.cells():
            self._pe_used[cell] = name
        if not single:
            for cell in rect.cells():
                self._router_active[cell] = False
        try:
            self._validate_routability()
        except RoutingError:
            self._undo_place(name)
            raise
        return placement

    def _undo_place(self, name: str) -> None:
        pl = self._placements.pop(name)
        for cell in pl.rect.cells():
            self._pe_used.pop(cell, None)
            self._router_active[cell] = True

    def remove_module(self, name: str) -> Rect:
        """Remove a placed module, reactivating its interior routers."""
        if name not in self._placements:
            raise KeyError(f"module {name!r} is not placed")
        pl = self._placements.pop(name)
        for cell in pl.rect.cells():
            del self._pe_used[cell]
            self._router_active[cell] = True
        return pl.rect

    def _pending_inside(self, rect: Rect) -> bool:
        return any(
            rect.contains_point(*coord) for _, _, coord in self._arrivals
        )

    def _validate_routability(self) -> None:
        """Certify S-XY delivers between all module access routers."""
        accesses = [pl.access for pl in self._placements.values()]
        for a in accesses:
            for b in accesses:
                if a != b:
                    trace_route(a, b, self.is_active, self._extent,
                                max_hops=self.cfg.ttl_hops)

    def placement_of(self, name: str) -> _Placement:
        return self._placements[name]

    # ==================================================================
    # fault hooks (repro.faults)
    # ==================================================================
    def detour_routable(self, coord: Coord) -> bool:
        """Would all module pairs stay routable with ``coord`` failed?
        Pure query — nothing changes."""
        if not self.is_active(coord):
            return False
        accesses = [pl.access for pl in self._placements.values()]
        if coord in accesses:
            return False

        def active(c: Coord) -> bool:
            return c != coord and self.is_active(c)

        try:
            for a in accesses:
                for b in accesses:
                    if a != b:
                        trace_route(a, b, active, self._extent,
                                    max_hops=self.cfg.ttl_hops)
        except RoutingError:
            return False
        return True

    def fail_router(self, coord: Coord) -> bool:
        """Deactivate a failed router so S-XY detours around it as an
        obstacle (DyNoC's fault response *is* its obstacle routing).

        Returns ``True`` when the mesh stays fully routable; ``False``
        (and leaves the router active as a black hole — the injector's
        dead-node guard keeps eating packets) when deactivation would
        cut a module off."""
        if coord not in self._router_active:
            raise ValueError(f"{coord} is outside the mesh")
        if not self.is_active(coord):
            raise ValueError(f"router {coord} is already inactive")
        if any(pl.access == coord for pl in self._placements.values()):
            # an access router can't be masked: the module behind it
            # would vanish from the topology
            self.sim.stats.counter("dynoc.fault.undetourable").inc()
            return False
        self._router_active[coord] = False
        try:
            self._validate_routability()
        except RoutingError:
            self._router_active[coord] = True
            self.sim.stats.counter("dynoc.fault.undetourable").inc()
            return False
        self._failed_routers.add(coord)
        self.sim.stats.counter("dynoc.fault.router_masked").inc()
        self.wake()
        return True

    def repair_router(self, coord: Coord) -> None:
        """Reactivate a router previously masked by :meth:`fail_router`
        (no-op for undetourable faults, which never deactivated it)."""
        if coord in self._failed_routers:
            self._failed_routers.discard(coord)
            self._router_active[coord] = True
            self.wake()

    # ==================================================================
    # CommArchitecture interface
    # ==================================================================
    def _attach_impl(self, module: str, rect: Optional[Rect] = None,
                     access: Optional[Coord] = None, **_: object) -> None:
        if rect is None:
            rect = self._default_rect()
        self.place_module(module, rect, access)

    def _default_rect(self) -> Rect:
        for y in range(self.cfg.mesh_rows):
            for x in range(self.cfg.mesh_cols):
                if (x, y) not in self._pe_used:
                    return Rect(x, y, 1, 1)
        raise ValueError("mesh full: no free PE")

    def _detach_impl(self, module: str) -> None:
        self.remove_module(module)

    def _submit(self, msg: Message) -> None:
        if msg.src not in self._placements:
            raise KeyError(f"source module {msg.src!r} is not placed")
        if msg.dst not in self._placements:
            raise KeyError(f"destination module {msg.dst!r} is not placed")
        src_access = self._placements[msg.src].access
        dst_access = self._placements[msg.dst].access
        pkt = _Packet(
            msg=msg,
            dst_access=dst_access,
            words=self.cfg.packet_words(msg.payload_bytes),
            state=NORMAL,
        )
        msg.accepted_cycle = self.sim.cycle
        if self.sim.journeying:
            # module -> access-router injection wire transit
            self.sim.journey.stamp_to(
                msg.mid, "link_transit",
                self.sim.cycle + self.cfg.link_latency)
        self._arrivals.append(
            (self.sim.cycle + self.cfg.link_latency, pkt, src_access)
        )
        self.sim.stats.counter("dynoc.packets").inc()
        self.sim.stats.counter("dynoc.header_words").inc(self.cfg.header_words)
        self.wake()  # new traffic ends any quiescent stretch

    def idle(self) -> bool:
        return not self._arrivals and not self._deliveries

    def descriptor(self) -> DesignParameters:
        return PAPER_TABLE_1["DyNoC"]

    def area_slices(self) -> int:
        return self.area_model.dynoc_total(self.active_routers(), self.cfg.width)

    def fmax_hz(self) -> float:
        return self.clock_model.fmax_hz("dynoc", self.cfg.width)

    def theoretical_dmax(self) -> int:
        return self.active_links()

    # ==================================================================
    # per-cycle behaviour
    # ==================================================================
    def _make_vec_kernel(self):
        return _DyNoCVecKernel(self)

    def tick(self, sim: Simulator):
        if self.vec is not None:
            return self.vec.tick(sim)
        now = sim.cycle
        self._tick_parallelism(now)
        if sim.telemetering:
            # headers awaiting routing = the fabric's input queue
            sim.telemetry.queue_depth(now, "dynoc.fabric",
                                      len(self._arrivals))
        due_deliveries = [d for d in self._deliveries if d[0] <= now]
        for item in due_deliveries:
            self._deliveries.remove(item)
            self._deliver(item[1])
        due = [a for a in self._arrivals if a[0] <= now]
        for item in due:
            self._arrivals.remove(item)
            self._route(item[1], item[2], now)
        return self._quiescence(now)

    def _quiescence(self, now: int):
        """Quiescence hint: wake for the next header arrival, delivery,
        or link-occupancy interval; stay hot while any link carries data
        next cycle (the parallelism probe samples every busy cycle)."""
        nxt: Optional[int] = None
        for start, end, _ in self._transmissions:
            if end <= now + 1:
                continue
            if start <= now + 1:
                return None
            nxt = start if nxt is None else min(nxt, start)
        for t, _, _ in self._arrivals:
            nxt = t if nxt is None else min(nxt, t)
        for t, _ in self._deliveries:
            nxt = t if nxt is None else min(nxt, t)
        if nxt is None:
            return SLEEP
        return nxt

    def _reserve_port(self, router: Coord, target: object,
                      now: int, words: int, mid: int) -> int:
        """FIFO-reserve an output port; returns transmission start cycle."""
        key = (router, target)
        earliest = now + self.cfg.router_latency
        start = max(earliest, self._port_free.get(key, 0))
        # contention observability: cycles spent waiting for the port
        self.sim.stats.histogram("dynoc.port_wait").add(start - earliest)
        if self.sim.telemetering:
            tel = self.sim.telemetry
            if target == "local":
                name = f"dynoc.ej.{router[0]},{router[1]}"
            else:
                name = (f"dynoc.link.{router[0]},{router[1]}->"
                        f"{target[0]},{target[1]}")
            tel.link_busy(now, name, words)
            tel.backpressure(now, name, start - earliest)
        self._port_free[key] = start + words
        if target != "local":
            # the parallelism probe counts inter-router links only — the
            # paper's d_max is "limited by the number of links"
            self._transmissions.append((start, start + words, mid))
        return start

    def _route(self, pkt: _Packet, at: Coord, now: int) -> None:
        if self.faulting and self.fault_injector.node_dead(at):
            # the router died with this packet inside (silent phase
            # before detection, or an undetourable black hole)
            if self.sim.tracing and pkt.state.mode is not NORMAL.mode:
                self.sim.span_end("dynoc", "detour", key=pkt.msg.mid,
                                  left_at=at, delivered=False)
            self.fault_injector.kill_packet(pkt.msg, at,
                                            why="at_failed_router")
            return
        if at == pkt.dst_access:
            if self.sim.tracing and pkt.state.mode is not NORMAL.mode:
                # packet arrived while still skirting an obstacle
                self.sim.span_end("dynoc", "detour", key=pkt.msg.mid,
                                  left_at=at, delivered=True)
            start = self._reserve_port(at, "local", now, pkt.words, pkt.msg.mid)
            if self.sim.journeying:
                jr = self.sim.journey
                jr.stamp_to(pkt.msg.mid, "arbitration_wait", start)
                jr.stamp_to(pkt.msg.mid, "delivery", start + pkt.words)
            self._deliveries.append((start + pkt.words, pkt.msg))
            self.sim.stats.histogram("dynoc.hops").add(pkt.hops)
            return
        nxt, state = sxy_next(at, pkt.dst_access, pkt.state,
                              self.is_active, self._extent)
        if ((self.sim.tracing or self.sim.telemetering)
                and state.mode is not pkt.state.mode):
            # S-XY mode change: a surround detour starts or ends here
            if pkt.state.mode is NORMAL.mode:
                if self.sim.tracing:
                    self.sim.span_begin("dynoc", "detour", key=pkt.msg.mid,
                                        mid=pkt.msg.mid, entered_at=at,
                                        mode=state.mode.value)
                if self.sim.telemetering:
                    # detour-storm observability: entries per window
                    self.sim.telemetry.count(now, "dynoc.detour")
            elif state.mode is NORMAL.mode and self.sim.tracing:
                self.sim.span_end("dynoc", "detour", key=pkt.msg.mid,
                                  left_at=at, delivered=False)
        pkt.state = state
        pkt.hops += 1
        if pkt.hops > self.cfg.ttl_hops:
            raise SimError(
                f"DyNoC packet exceeded TTL ({self.cfg.ttl_hops} hops): "
                f"{pkt.msg.src}->{pkt.msg.dst} at {at}"
            )
        start = self._reserve_port(at, nxt, now, pkt.words, pkt.msg.mid)
        self.sim.stats.counter("dynoc.word_hops").inc(pkt.words)
        if self.sim.tracing:
            self.sim.emit("dynoc", "route", mid=pkt.msg.mid, at=at, nxt=nxt,
                          mode=pkt.state.mode.value)
        if self.cfg.switching == "saf":
            # store-and-forward: the next router sees the packet only
            # after the whole body crossed the link
            arrival = start + pkt.words + self.cfg.link_latency - 1
        else:
            arrival = start + self.cfg.link_latency
        if self.sim.journeying:
            jr = self.sim.journey
            jr.stamp_to(pkt.msg.mid, "arbitration_wait", start)
            # hops taken while skirting an obstacle are the detour cost
            jr.stamp_to(pkt.msg.mid,
                        ("router_detour"
                         if pkt.state.mode is not NORMAL.mode
                         else "link_transit"), arrival)
        self._arrivals.append((arrival, pkt, nxt))

    def _tick_parallelism(self, now: int) -> None:
        self._transmissions = [t for t in self._transmissions if t[1] > now]
        active = len({m for s, e, m in self._transmissions if s <= now < e})
        self._note_parallelism(active)


class _DyNoCVecKernel(BatchKernel):
    """Compiled tick for DyNoC/StaticMesh S-XY transport + ejection.

    Swaps the three hot containers for SoA stores, extracts due headers
    and deliveries with one masked scan each, and — with telemetry off —
    sleeps through busy stretches between events, back-filling the
    per-cycle link-parallelism samples from the occupancy intervals on
    wake-up (distinct-packet counts via interval merge + prefix sum).
    Routing itself stays the object code: it runs only at header-arrival
    cycles, which are identical in both backends.
    """

    def __init__(self, arch: "DyNoC") -> None:
        super().__init__(arch)
        arch._arrivals = EventQueue("dynoc.arrivals", arch._arrivals)
        arch._deliveries = EventQueue("dynoc.deliveries", arch._deliveries)
        arch._transmissions = IntervalSet("dynoc.links", arch._transmissions)
        #: last cycle whose parallelism sample is already recorded
        self._last = self.sim.cycle

    def _catch_up(self, through: int) -> None:
        """Replay the skipped stretch through cycle ``through``: the
        object path records one parallelism sample per cycle with a
        nonzero distinct-packet count (it sleeps exactly when the count
        is zero), so filtering the zeros reproduces its sample stream
        bit for bit."""
        if through > self._last:
            tx = self.arch._transmissions
            counts = tx.active_counts(self._last + 1, through + 1)
            busy = counts[counts > 0]
            if busy.size:
                self.arch._parallelism_hist.add_batch(busy)
            self._last = through

    def flush(self, now: int) -> None:
        self._catch_up(now - 1)

    def tick(self, sim: Simulator):
        arch = self.arch
        now = sim.cycle
        tx = arch._transmissions
        self._catch_up(now - 1)
        self._last = now
        tx.prune(now)
        arch._note_parallelism(tx.count_distinct_at(now))
        if sim.telemetering:
            sim.telemetry.queue_depth(now, "dynoc.fabric",
                                      len(arch._arrivals))
        for _, msg in arch._deliveries.pop_due(now):
            arch._deliver(msg)
        for _, pkt, coord in arch._arrivals.pop_due(now):
            arch._route(pkt, coord, now)
        if sim.telemetering:
            # telemetry samples per-tick queue depths: stay per-cycle
            return arch._quiescence(now)
        nxt = arch._arrivals.min_ready()
        nd = arch._deliveries.min_ready()
        if nd is not None and (nxt is None or nd < nxt):
            nxt = nd
        if nxt is None:
            # every link interval ends before its packet's delivery, so
            # no pending events implies no live link either
            return None if (tx.max_end() or 0) > now + 1 else SLEEP
        return nxt if nxt > now else now + 1


def build_dynoc(
    num_modules: int = 4,
    width: int = 32,
    seed: int = 1,
    mesh: Optional[Tuple[int, int]] = None,
    sim: Optional[Simulator] = None,
    cfg: Optional[DyNoCConfig] = None,
    **cfg_overrides: object,
) -> DyNoC:
    """Build a DyNoC with ``num_modules`` 1x1 modules placed row-major.

    The default mesh is the smallest square holding all modules — the
    survey's Table 3 assumption (one PE, hence one router, per module).
    """
    if cfg is None:
        if mesh is not None:
            cfg = DyNoCConfig(mesh_cols=mesh[0], mesh_rows=mesh[1],
                              width=width, **cfg_overrides)  # type: ignore[arg-type]
        else:
            cfg = DyNoCConfig.for_modules(num_modules, width=width,
                                          **cfg_overrides)  # type: ignore[arg-type]
    if num_modules > cfg.num_routers:
        raise ValueError(
            f"{num_modules} modules exceed {cfg.num_routers} mesh PEs"
        )
    sim = sim or Simulator(name=f"dynoc[{cfg.mesh_cols}x{cfg.mesh_rows}]")
    arch = DyNoC(sim, cfg)
    sim.add(arch)
    for i in range(num_modules):
        arch.attach(f"m{i}")
    return arch
