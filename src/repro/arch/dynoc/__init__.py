"""DyNoC — Dynamic Network on Chip (Bobda et al.).

A 2D array of processing elements, one router per PE. A hardware module
may cover several PEs; the routers in its interior are removed from the
network and reclaimed by the module, and the placement rule — a module
is always *completely surrounded* by active routers — keeps the network
connected. Packets are routed with the S-XY algorithm: plain XY routing
extended with surround modes that walk packets around placed modules.
"""

from repro.arch.dynoc.arch import DyNoC, build_dynoc
from repro.arch.dynoc.config import DyNoCConfig
from repro.arch.dynoc.routing import Mode, RouteState, sxy_next, trace_route

__all__ = [
    "DyNoC",
    "DyNoCConfig",
    "Mode",
    "RouteState",
    "build_dynoc",
    "sxy_next",
    "trace_route",
]
