"""TDMA slot tables — BUS-COM's virtual-topology mechanism.

A :class:`SlotTable` maps every (bus, slot) pair to either a statically
assigned owner module or the dynamic segment. The *virtual topology* of
a BUS-COM system is exactly this table: a module pair can communicate
with guaranteed bandwidth iff the sender owns static slots. Runtime
adaptation = rewriting entries (through the reconfiguration manager,
which charges the LUT-reconfiguration latency).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


class SlotKind(enum.Enum):
    STATIC = "static"
    DYNAMIC = "dynamic"


@dataclass
class SlotEntry:
    kind: SlotKind
    owner: Optional[str] = None  # meaningful for STATIC only

    def __post_init__(self) -> None:
        if self.kind is SlotKind.STATIC and self.owner is None:
            raise ValueError("static slot needs an owner")
        if self.kind is SlotKind.DYNAMIC and self.owner is not None:
            raise ValueError("dynamic slot cannot have an owner")


class SlotTable:
    """Per-bus TDMA schedules for a BUS-COM system."""

    def __init__(self, num_buses: int, slots_per_bus: int):
        if num_buses < 1 or slots_per_bus < 1:
            raise ValueError("need at least one bus and one slot")
        self.num_buses = num_buses
        self.slots_per_bus = slots_per_bus
        self._table: List[List[SlotEntry]] = [
            [SlotEntry(SlotKind.DYNAMIC) for _ in range(slots_per_bus)]
            for _ in range(num_buses)
        ]

    # ------------------------------------------------------------------
    def entry(self, bus: int, slot: int) -> SlotEntry:
        return self._table[bus][slot]

    def set_static(self, bus: int, slot: int, owner: str) -> None:
        self._table[bus][slot] = SlotEntry(SlotKind.STATIC, owner)

    def set_dynamic(self, bus: int, slot: int) -> None:
        self._table[bus][slot] = SlotEntry(SlotKind.DYNAMIC)

    # ------------------------------------------------------------------
    def static_slots_of(self, module: str) -> List[Tuple[int, int]]:
        """All (bus, slot) positions statically owned by ``module``."""
        return [
            (b, s)
            for b in range(self.num_buses)
            for s in range(self.slots_per_bus)
            if self._table[b][s].kind is SlotKind.STATIC
            and self._table[b][s].owner == module
        ]

    def bandwidth_share(self, module: str) -> float:
        """Fraction of all static slots owned by ``module``."""
        total = sum(
            1
            for b in range(self.num_buses)
            for s in range(self.slots_per_bus)
            if self._table[b][s].kind is SlotKind.STATIC
        )
        if total == 0:
            return 0.0
        return len(self.static_slots_of(module)) / total

    def owners(self) -> Dict[str, int]:
        """Module -> number of static slots owned."""
        out: Dict[str, int] = {}
        for bus in self._table:
            for entry in bus:
                if entry.kind is SlotKind.STATIC and entry.owner:
                    out[entry.owner] = out.get(entry.owner, 0) + 1
        return out

    def drop_module(self, module: str) -> int:
        """Convert all of ``module``'s static slots to dynamic; returns count."""
        n = 0
        for b in range(self.num_buses):
            for s in range(self.slots_per_bus):
                e = self._table[b][s]
                if e.kind is SlotKind.STATIC and e.owner == module:
                    self._table[b][s] = SlotEntry(SlotKind.DYNAMIC)
                    n += 1
        return n

    # ------------------------------------------------------------------
    def plan_migration_off_bus(
        self, bus: int, healthy: Sequence[int]
    ) -> List[Tuple[int, int, int, int, str]]:
        """Plan moving every static slot of a failed ``bus`` into free
        dynamic slots of ``healthy`` buses (BUS-COM's fault response:
        the virtual topology is rewritten, not the wires).

        Pure computation — nothing is applied.  Returns plan entries
        ``(from_bus, from_slot, to_bus, to_slot, owner)``; an empty plan
        means there is nowhere to migrate (no healthy dynamic slot).
        Slots that cannot be placed are simply left off the plan."""
        free = [
            (b, s)
            for b in healthy
            for s in range(self.slots_per_bus)
            if self._table[b][s].kind is SlotKind.DYNAMIC
        ]
        plan: List[Tuple[int, int, int, int, str]] = []
        it = iter(free)
        for s in range(self.slots_per_bus):
            e = self._table[bus][s]
            if e.kind is not SlotKind.STATIC or e.owner is None:
                continue
            spot = next(it, None)
            if spot is None:
                break
            plan.append((bus, s, spot[0], spot[1], e.owner))
        return plan

    def apply_migration(
        self, plan: Sequence[Tuple[int, int, int, int, str]]
    ) -> None:
        """Rewrite the table per ``plan``: the dead bus's static slots
        become dynamic, the chosen healthy slots become static."""
        for from_bus, from_slot, to_bus, to_slot, owner in plan:
            self.set_dynamic(from_bus, from_slot)
            self.set_static(to_bus, to_slot, owner)

    def undo_migration(
        self, plan: Sequence[Tuple[int, int, int, int, str]]
    ) -> None:
        """Restore the pre-fault table after the bus is repaired."""
        for from_bus, from_slot, to_bus, to_slot, owner in plan:
            self.set_static(from_bus, from_slot, owner)
            self.set_dynamic(to_bus, to_slot)

    # ------------------------------------------------------------------
    @classmethod
    def round_robin(
        cls,
        num_buses: int,
        slots_per_bus: int,
        static_slots: int,
        modules: Sequence[str],
    ) -> "SlotTable":
        """Design-time default: the first ``static_slots`` positions of
        every bus are dealt round-robin to the modules; the rest are
        dynamic."""
        table = cls(num_buses, slots_per_bus)
        if modules:
            for b in range(num_buses):
                for s in range(static_slots):
                    table.set_static(b, s, modules[(s + b) % len(modules)])
        return table
