"""BUS-COM cycle-level model: k TDMA buses + interface modules.

Each bus runs its own FlexRay-like schedule. A slot opens, the owner (or
— in the dynamic segment — the highest-priority module with pending
data) drives a guard cycle, a one-word 20-bit header and then payload
words; static slots always consume their full fixed duration, which is
exactly the rigidity the survey's flexibility ranking penalizes, while
dynamic slots shrink to a minislot when unclaimed.

A message larger than a slot's payload capacity is segmented into
frames; frames of one message may leave simultaneously on different
buses (every module is physically attached to all buses), which is how
BUS-COM aggregates bandwidth up to its d_max = k.

Interface queues follow the FlexRay buffer discipline: messages tagged
``"stream"``/``"rt"``/``"ctrl"`` go to a real-time queue served first by
the module's guaranteed static slots, everything else queues as bulk —
so a module's real-time frames never wait behind its own bulk backlog
(the property behind the E11 deadline guarantees).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.arch.base import CommArchitecture, Message
from repro.arch.buscom.config import BusComConfig
from repro.arch.buscom.schedule import SlotKind, SlotTable
from repro.core.parameters import PAPER_TABLE_1, DesignParameters
from repro.fabric.area import AreaModel
from repro.fabric.timing import ClockModel
from repro.sim import Component, Simulator
from repro.sim.vec.kernels import BatchKernel


@dataclass
class _SendItem:
    """NI queue entry: a message with bytes still to be transmitted."""

    msg: Message
    bytes_left: int


@dataclass
class _BusState:
    """Runtime state of one bus."""

    index: int
    slot_idx: int = 0
    slot_remaining: int = 0     # cycles left in the current slot
    dyn_budget: int = 0         # dynamic-segment cycles left this round
    frame_msg: Optional[Message] = None
    frame_bytes: int = 0
    frame_done_at: int = -1     # cycle the frame's last word is on the bus
    frames_sent: int = 0
    busy_cycles: int = 0
    total_cycles: int = 0


class BusCom(CommArchitecture, Component):
    """The BUS-COM interconnect."""

    KEY = "buscom"

    #: no containers to swap — the batch kernel replays whole TDMA
    #: slot bodies arithmetically between boundaries (QL006)
    VEC_FIELDS = ()
    VEC_SHARED = ("_last_ticked", "_delivered_bytes", "_queues", "_bulk")

    def __init__(self, sim: Simulator, cfg: BusComConfig,
                 table: Optional[SlotTable] = None,
                 area_model: Optional[AreaModel] = None,
                 clock_model: Optional[ClockModel] = None):
        CommArchitecture.__init__(self, sim, cfg.width)
        Component.__init__(self, "buscom")
        self.cfg = cfg
        self.table = table or SlotTable(cfg.num_buses, cfg.slots_per_bus)
        self.area_model = area_model or AreaModel()
        self.clock_model = clock_model or ClockModel()
        self._buses = [_BusState(i) for i in range(cfg.num_buses)]
        # FlexRay-style split interface buffers: rt served before bulk
        self._queues: Dict[str, Deque[_SendItem]] = {}       # real-time
        self._bulk: Dict[str, Deque[_SendItem]] = {}         # best-effort
        self._priority: List[str] = []           # dynamic-segment arbitration order
        self._frozen: Dict[str, bool] = {}
        self._dead_buses: set = set()  # fault state: buses out of service
        self._delivered_bytes: Dict[int, int] = {}  # msg.mid -> bytes landed
        # last cycle this component ticked; cycles slept through are
        # replayed arithmetically by _account_idle on wake
        self._last_ticked = sim.cycle - 1
        self._init_vec(sim)

    # ==================================================================
    # CommArchitecture interface
    # ==================================================================
    RT_TAGS = ("stream", "rt", "ctrl")

    def _attach_impl(self, module: str, **_: object) -> None:
        self._queues[module] = deque()
        self._bulk[module] = deque()
        self._priority.append(module)
        self._frozen[module] = False

    def _detach_impl(self, module: str) -> None:
        q = self._queues.pop(module)
        b = self._bulk.pop(module)
        if q or b:
            self._queues[module] = q
            self._bulk[module] = b
            raise RuntimeError(
                f"detaching {module!r} with {len(q) + len(b)} queued "
                f"messages"
            )
        self._priority.remove(module)
        del self._frozen[module]

    def _submit(self, msg: Message) -> None:
        if msg.src not in self._queues:
            raise KeyError(f"source module {msg.src!r} is not attached")
        queue = (self._queues if msg.tag in self.RT_TAGS
                 else self._bulk)[msg.src]
        queue.append(_SendItem(msg, msg.payload_bytes))
        self.wake()  # new traffic ends any quiescent stretch

    def idle(self) -> bool:
        return (
            all(not q for q in self._queues.values())
            and all(not q for q in self._bulk.values())
            and all(b.frame_msg is None for b in self._buses)
        )

    def descriptor(self) -> DesignParameters:
        return PAPER_TABLE_1["BUS-COM"]

    def area_slices(self) -> int:
        return self.area_model.buscom_total(
            len(self._priority) or self.cfg.num_modules,
            self.cfg.num_buses,
            self.cfg.width,
        )

    def fmax_hz(self) -> float:
        return self.clock_model.fmax_hz("buscom", self.cfg.width)

    def theoretical_dmax(self) -> int:
        return self.cfg.theoretical_dmax

    # ==================================================================
    # control / reconfiguration
    # ==================================================================
    def set_priorities(self, order: List[str]) -> None:
        """Arbitration order for the dynamic segment (first = highest)."""
        if sorted(order) != sorted(self._priority):
            raise ValueError("priority list must be a permutation of modules")
        self._priority = list(order)

    def freeze_module(self, module: str) -> None:
        """Module slot under reconfiguration: its traffic and grants pause."""
        if module not in self._frozen:
            raise KeyError(f"module {module!r} is not attached")
        self._frozen[module] = True

    def unfreeze_module(self, module: str) -> None:
        if module not in self._frozen:
            raise KeyError(f"module {module!r} is not attached")
        self._frozen[module] = False

    def reassign_slot(self, bus: int, slot: int,
                      owner: Optional[str] = None) -> None:
        """Rewrite one slot entry after the LUT-reconfiguration latency.

        ``owner=None`` converts the slot to the dynamic segment. This is
        BUS-COM's runtime topology-adaptation primitive.
        """
        def apply(_sim: Simulator) -> None:
            if owner is None:
                self.table.set_dynamic(bus, slot)
            else:
                self.table.set_static(bus, slot, owner)
            self.sim.stats.counter("buscom.slots.reassigned").inc()

        self.sim.after(self.cfg.reassign_latency, apply)

    # ==================================================================
    # fault hooks (repro.faults)
    # ==================================================================
    def fail_bus(self, bus: int) -> List[Message]:
        """A bus goes dead: the in-flight frame (if any) is lost, its
        slots stop serving.  Returns the victim messages so the caller
        (the fault injector) can record the drops."""
        if not 0 <= bus < self.cfg.num_buses:
            raise ValueError(
                f"bus {bus} outside 0..{self.cfg.num_buses - 1}")
        if bus in self._dead_buses:
            raise ValueError(f"bus {bus} already failed")
        self._dead_buses.add(bus)
        state = self._buses[bus]
        victims: List[Message] = []
        if state.frame_msg is not None:
            victims.append(state.frame_msg)
            # partial landings of the lost message are void
            self._delivered_bytes.pop(state.frame_msg.mid, None)
            state.frame_msg = None
            state.frame_bytes = 0
            state.frame_done_at = -1
        self.wake()
        return victims

    def repair_bus(self, bus: int) -> None:
        if bus not in self._dead_buses:
            raise ValueError(f"bus {bus} is not failed")
        self._dead_buses.discard(bus)
        self.wake()

    def purge_message(self, msg: Message) -> None:
        """Remove a dropped message's queued fragments from its source
        interface so they are not transmitted pointlessly."""
        for queues in (self._queues, self._bulk):
            q = queues.get(msg.src)
            if q is not None:
                stale = [item for item in q if item.msg.mid == msg.mid]
                for item in stale:
                    q.remove(item)

    def migrate_slots_off_bus(self, bus: int):
        """Fault response at detection: move the dead bus's static slots
        into healthy dynamic slots, charged at the LUT-reconfiguration
        latency.  Returns the plan (empty if nowhere to migrate)."""
        healthy = [b for b in range(self.cfg.num_buses)
                   if b != bus and b not in self._dead_buses]
        plan = self.table.plan_migration_off_bus(bus, healthy)
        if plan:
            def apply(_sim: Simulator) -> None:
                self.table.apply_migration(plan)
                self.sim.stats.counter("buscom.slots.reassigned").inc(
                    2 * len(plan))
                self.wake()

            self.sim.after(self.cfg.reassign_latency, apply)
        return plan

    def restore_slots(self, plan) -> None:
        """Undo a fault migration after repair (same reassign latency)."""
        def apply(_sim: Simulator) -> None:
            self.table.undo_migration(plan)
            self.sim.stats.counter("buscom.slots.reassigned").inc(
                2 * len(plan))
            self.wake()

        self.sim.after(self.cfg.reassign_latency, apply)

    # ==================================================================
    # per-cycle behaviour
    # ==================================================================
    def _make_vec_kernel(self):
        return _BusComVecKernel(self)

    def tick(self, sim: Simulator):
        if self.vec is not None:
            return self.vec.tick(sim)
        now = sim.cycle
        if self._last_ticked < now - 1:
            self._account_idle(now - 1)
        self._last_ticked = now
        return self._tick_cycle(sim, now)

    def _tick_cycle(self, sim: Simulator, now: int):
        """One cycle of TDMA behaviour (shared by both backends)."""
        if sim.telemetering:
            tel = sim.telemetry
            for module, q in self._queues.items():
                tel.queue_depth(now, f"buscom.ni.{module}",
                                len(q) + len(self._bulk[module]))
        active = 0
        for bus in self._buses:
            bus.total_cycles += 1
            if bus.slot_remaining == 0:
                self._start_slot(bus, now)
            if bus.frame_msg is not None:
                active += 1
                bus.busy_cycles += 1
                if now >= bus.frame_done_at:
                    self._land_frame(bus)
            bus.slot_remaining -= 1
            if bus.slot_remaining == 0:
                # wrap on the *table's* round length — a custom table may
                # be shorter than the config default
                bus.slot_idx = (bus.slot_idx + 1) % self.table.slots_per_bus
        self._note_parallelism(active)
        return self._quiescence(now)

    def _account_idle(self, through: int) -> None:
        """Replay the cycles slept through, up to and including ``through``.

        The sleep hint always lands on the next slot start across all
        buses, so a skipped cycle never runs ``_start_slot`` and never
        carries a frame: its whole effect is counting time and running
        down the current slot (with the slot-index wrap when a slot's
        countdown completes).  That makes the replay pure arithmetic,
        identical to having ticked each skipped cycle with empty queues.
        """
        gap = through - self._last_ticked
        if gap <= 0:
            return
        for bus in self._buses:
            bus.total_cycles += gap
            bus.slot_remaining -= gap
            if bus.slot_remaining == 0:
                bus.slot_idx = (bus.slot_idx + 1) % self.table.slots_per_bus
        self._last_ticked = through

    def _quiescence(self, now: int):
        """With nothing queued and no frame on any wire, the only thing
        ticks would do is run slot countdowns — sleep to the earliest
        next slot start and let :meth:`_account_idle` replay the rest."""
        if any(self._queues.values()) or any(self._bulk.values()):
            return None
        if any(b.frame_msg is not None for b in self._buses):
            return None
        return now + 1 + min(b.slot_remaining for b in self._buses)

    # ------------------------------------------------------------------
    def _queue_for(self, module: str) -> Optional[Deque[_SendItem]]:
        """The queue the module's next frame comes from: rt first."""
        for queues in (self._queues, self._bulk):
            q = queues.get(module)
            if q and q[0].msg.dst in self._queues:
                return q
        return None

    def _sendable(self, module: str) -> bool:
        if module not in self._queues or self._frozen.get(module, True):
            return False
        return self._queue_for(module) is not None

    def _pop_fragment(self, module: str, cap_bytes: int) -> Optional[_SendItem]:
        """Take up to ``cap_bytes`` from the head message (real-time
        queue first); returns a bookkeeping item for the fragment."""
        q = self._queue_for(module)
        assert q is not None
        item = q[0]
        frag = min(cap_bytes, item.bytes_left)
        item.bytes_left -= frag
        if item.msg.accepted_cycle < 0:
            item.msg.accepted_cycle = self.sim.cycle
        if item.bytes_left == 0:
            q.popleft()
        return _SendItem(item.msg, frag)  # bytes_left field reused as size

    def _start_slot(self, bus: _BusState, now: int) -> None:
        if bus.slot_idx == 0:
            bus.dyn_budget = self.cfg.dynamic_segment_cycles
        entry = self.table.entry(bus.index, bus.slot_idx)
        bus.frame_msg = None
        if self._dead_buses and bus.index in self._dead_buses:
            # a dead bus keeps its TDMA clock (slot indices stay in sync
            # with the global round) but never carries a frame
            if entry.kind is SlotKind.STATIC:
                bus.slot_remaining = self.cfg.static_slot_cycles
            else:
                bus.slot_remaining = self.cfg.empty_dynamic_slot_cycles
                bus.dyn_budget = max(0, bus.dyn_budget - bus.slot_remaining)
            return
        if entry.kind is SlotKind.STATIC:
            bus.slot_remaining = self.cfg.static_slot_cycles
            owner = entry.owner
            if owner is not None and self._sendable(owner):
                frag = self._pop_fragment(owner, self.cfg.static_payload_bytes)
                self._launch_frame(bus, frag, now)
                # a used static slot occupies the wire for its full
                # fixed duration, used or not — the basis of the ~90 %
                # effective-bandwidth figure
                self.sim.stats.counter("buscom.busy_wire_cycles").inc(
                    self.cfg.static_slot_cycles
                )
        else:
            granted = next(
                (m for m in self._priority if self._sendable(m)), None
            )
            # FlexRay bound: a dynamic frame may only start if it fits
            # in the remaining dynamic-segment budget of this round
            fixed = self.cfg.guard_cycles + self.cfg.header_words
            budget_payload_bytes = max(
                0, (bus.dyn_budget - fixed) * self.cfg.width // 8
            )
            cap = min(self.cfg.max_dynamic_payload, budget_payload_bytes)
            if granted is None or cap < 1:
                if (granted is not None and self.sim.telemetering):
                    # TDMA slot overrun: a sender held a grant but the
                    # dynamic-segment budget could not fit even one byte
                    self.sim.telemetry.count(now, "buscom.slot_overrun")
                bus.slot_remaining = self.cfg.empty_dynamic_slot_cycles
                bus.dyn_budget = max(
                    0, bus.dyn_budget - bus.slot_remaining
                )
                return
            frag = self._pop_fragment(granted, cap)
            bus.slot_remaining = self.cfg.dynamic_slot_cycles(frag.bytes_left)
            bus.dyn_budget -= bus.slot_remaining
            self._launch_frame(bus, frag, now)
            self.sim.stats.counter("buscom.busy_wire_cycles").inc(
                bus.slot_remaining
            )

    def _launch_frame(self, bus: _BusState, frag: _SendItem, now: int) -> None:
        bus.frame_msg = frag.msg
        bus.frame_bytes = frag.bytes_left  # fragment size
        bus.frame_done_at = (
            now
            + self.cfg.guard_cycles
            + self.cfg.header_words
            + self.cfg.payload_words(frag.bytes_left)
            - 1
        )
        bus.frames_sent += 1
        if self.sim.journeying:
            jr = self.sim.journey
            # everything since the last frame (or creation) was TDMA
            # slot alignment; the frame then occupies this bus through
            # its last word — concurrent frames on other buses merge
            # through the record's cursor
            jr.stamp_to(frag.msg.mid, "slot_wait", now)
            jr.stamp_to(frag.msg.mid, "link_transit", bus.frame_done_at)
        if self.sim.telemetering:
            # the frame occupies this bus from launch to its last word
            self.sim.telemetry.link_busy(
                now, f"buscom.bus{bus.index}",
                bus.frame_done_at - now + 1,
            )
        self.sim.stats.counter("buscom.frames").inc()
        self.sim.stats.counter("buscom.frame_words").inc(
            self.cfg.header_words + self.cfg.payload_words(frag.bytes_left)
        )
        if self.sim.tracing:
            self.sim.emit("buscom", "frame", bus=bus.index, slot=bus.slot_idx,
                          src=frag.msg.src, dst=frag.msg.dst,
                          bytes=frag.bytes_left)
            # the frame occupies the wire from launch to its last word
            self.sim.span_event("buscom", "frame", now, bus.frame_done_at,
                                bus=bus.index, slot=bus.slot_idx,
                                src=frag.msg.src, dst=frag.msg.dst,
                                bytes=frag.bytes_left)
        self.sim.stats.counter("buscom.header_words").inc(self.cfg.header_words)
        self.sim.stats.counter("buscom.payload_bytes").inc(frag.bytes_left)

    def _land_frame(self, bus: _BusState) -> None:
        msg = bus.frame_msg
        assert msg is not None
        if msg.dropped:
            # another bus lost a frame of this message to a fault; the
            # surviving fragments land into the void
            bus.frame_msg = None
            bus.frame_bytes = 0
            bus.frame_done_at = -1
            return
        done = self._delivered_bytes.get(msg.mid, 0) + bus.frame_bytes
        self._delivered_bytes[msg.mid] = done
        if done >= msg.payload_bytes:
            del self._delivered_bytes[msg.mid]
            self._deliver(msg)
        bus.frame_msg = None
        bus.frame_bytes = 0
        bus.frame_done_at = -1

    # ------------------------------------------------------------------
    def backlog_bytes(self, module: str) -> int:
        """Bytes queued at a module's interface (both buffers)."""
        if module not in self._queues:
            raise KeyError(f"module {module!r} is not attached")
        return (
            sum(item.bytes_left for item in self._queues[module])
            + sum(item.bytes_left for item in self._bulk[module])
        )

    def total_backlog(self) -> Dict[str, int]:
        return {m: self.backlog_bytes(m) for m in self._queues}

    # ------------------------------------------------------------------
    def bus_utilization(self) -> List[float]:
        """Fraction of cycles each bus spent carrying a frame."""
        # catch up on any cycles currently being slept through so the
        # denominator matches the wall clock
        if self.vec is not None:
            self.vec.catch_up(self.sim.cycle - 1)
        else:
            self._account_idle(self.sim.cycle - 1)
        return [
            b.busy_cycles / b.total_cycles if b.total_cycles else 0.0
            for b in self._buses
        ]


class _BusComVecKernel(BatchKernel):
    """Compiled tick for BUS-COM TDMA frame slots.

    Between slot boundaries nothing consults the queues or the table —
    each skipped cycle only counts time, runs the slot countdowns, and
    samples the (constant) number of frame-carrying buses.  So even
    while busy, the kernel sleeps to the earliest next slot start or
    frame landing across all buses and replays the stretch
    arithmetically on wake.  Boundary and landing cycles always run a
    real tick, so slot grants, budget accounting and deliveries stay
    the object code.

    Per-bus carrying flags are stashed at sleep time: ``fail_bus`` may
    void a frame at event phase mid-stretch, but the object path would
    still have counted the bus busy on every cycle before the failure
    tick.
    """

    def __init__(self, arch: "BusCom") -> None:
        super().__init__(arch)
        #: per-bus frame-carrying flags at sleep time (None = idle sleep)
        self._stretch: Optional[List[bool]] = None

    def catch_up(self, through: int) -> None:
        """Replay slept-through cycles up to and including ``through``."""
        arch = self.arch
        gap = through - arch._last_ticked
        if gap <= 0:
            return
        flags = self._stretch
        if flags is None:
            # idle stretch: the object path's replay already matches
            arch._account_idle(through)
            return
        carrying = 0
        for bus, busy in zip(arch._buses, flags):
            bus.total_cycles += gap
            if busy:
                bus.busy_cycles += gap
                carrying += 1
            bus.slot_remaining -= gap
            if bus.slot_remaining == 0:
                bus.slot_idx = (bus.slot_idx + 1) % arch.table.slots_per_bus
        if carrying:
            self.backfill_constant(
                arch._parallelism_hist, gap, float(carrying))
        arch._last_ticked = through

    def flush(self, now: int) -> None:
        self.catch_up(now - 1)

    def tick(self, sim: Simulator):
        arch = self.arch
        now = sim.cycle
        self.catch_up(now - 1)
        arch._last_ticked = now
        self._stretch = None
        hint = arch._tick_cycle(sim, now)
        if hint is None and not sim.telemetering:
            # busy, but deterministic until the next slot boundary or
            # frame landing — sleep there and replay the stretch
            nxt = None
            for bus in arch._buses:
                boundary = now + 1 + bus.slot_remaining
                if nxt is None or boundary < nxt:
                    nxt = boundary
                if bus.frame_msg is not None and bus.frame_done_at < nxt:
                    nxt = bus.frame_done_at
            if nxt is not None and nxt > now + 1:
                self._stretch = [b.frame_msg is not None
                                 for b in arch._buses]
                return nxt
        return hint


def build_buscom(
    num_modules: int = 4,
    width: int = 32,
    seed: int = 1,
    num_buses: int = 4,
    sim: Optional[Simulator] = None,
    cfg: Optional[BusComConfig] = None,
    table: Optional[SlotTable] = None,
    **cfg_overrides: object,
) -> BusCom:
    """Build a BUS-COM system with a round-robin design-time slot table."""
    if cfg is None:
        cfg = BusComConfig(num_modules=num_modules, num_buses=num_buses,
                           width=width, **cfg_overrides)  # type: ignore[arg-type]
    sim = sim or Simulator(name=f"buscom[{cfg.num_modules}x{cfg.num_buses}]")
    modules = [f"m{i}" for i in range(cfg.num_modules)]
    if table is None:
        table = SlotTable.round_robin(
            cfg.num_buses, cfg.slots_per_bus, cfg.static_slots, modules
        )
    arch = BusCom(sim, cfg, table=table)
    sim.add(arch)
    for name in modules:
        arch.attach(name)
    return arch
