"""BUS-COM (Hübner et al.): unsegmented multi-bus with TDMA arbitration.

All modules are physically connected to all ``k`` buses through BUS-COM
interface modules; *virtual* network topologies are formed purely by the
slot-assignment tables of a FlexRay-like TDMA scheme (32 time slots per
bus, split into fixed-duration *static* slots granting guaranteed
bandwidth and priority-arbitrated *dynamic* slots with payloads up to
256 bytes). Changing the tables — by dynamic reconfiguration of the
LUT-based arbiter — re-shapes the topology at runtime without touching
the physical buses.
"""

from repro.arch.buscom.adaptivity import AdaptiveArbiter
from repro.arch.buscom.arch import BusCom, build_buscom
from repro.arch.buscom.config import BusComConfig
from repro.arch.buscom.schedule import SlotKind, SlotTable

__all__ = ["AdaptiveArbiter", "BusCom", "BusComConfig", "SlotKind",
           "SlotTable", "build_buscom"]
