"""BUS-COM configuration."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class BusComConfig:
    """Structural and timing parameters of a BUS-COM instance.

    Defaults reproduce the survey's published figures: 32 slots per bus,
    a 20-bit frame header (Table 1), 256-byte maximum dynamic payload,
    and a 72-byte static payload which — with one guard cycle and a one-
    word header on a 32-bit bus — yields the ~90 % effective bandwidth
    the survey quotes for BUS-COM (18 payload words per 20-cycle slot).
    """

    num_modules: int = 4
    num_buses: int = 4              # k unsegmented buses
    width: int = 32                 # bus width in bits (symmetric links)
    slots_per_bus: int = 32         # TDMA round length
    static_slots: int = 16          # leading static slots per round
    static_payload_bytes: int = 72  # fixed payload capacity of a static slot
    max_dynamic_payload: int = 256  # FlexRay-style dynamic frame limit
    header_bits: int = 20           # frame header (Table 1 "Overhead")
    guard_cycles: int = 1           # inter-frame gap / arbitration cycle
    reassign_latency: int = 64      # cycles to reconfigure one slot entry
    #: FlexRay property: the dynamic segment has a bounded duration per
    #: round, so the communication-cycle length — and with it the static
    #: slots' worst-case wait — is bounded even under bulk saturation.
    dynamic_segment_cycles: int = 320

    def __post_init__(self) -> None:
        if self.num_modules < 2:
            raise ValueError("BUS-COM needs at least 2 modules")
        if self.num_buses < 1:
            raise ValueError("BUS-COM needs at least 1 bus")
        if not 0 <= self.static_slots <= self.slots_per_bus:
            raise ValueError(
                f"static_slots {self.static_slots} outside "
                f"0..{self.slots_per_bus}"
            )
        if self.width < 1 or self.header_bits < 1:
            raise ValueError("width and header_bits must be >= 1")
        if self.static_payload_bytes < 1 or self.max_dynamic_payload < 1:
            raise ValueError("payload capacities must be >= 1")
        if self.guard_cycles < 0 or self.reassign_latency < 0:
            raise ValueError("latencies must be >= 0")
        if self.dynamic_segment_cycles < 0:
            raise ValueError("dynamic_segment_cycles must be >= 0")

    # ------------------------------------------------------------------
    @property
    def header_words(self) -> int:
        return math.ceil(self.header_bits / self.width)

    def payload_words(self, payload_bytes: int) -> int:
        return math.ceil(payload_bytes * 8 / self.width)

    @property
    def static_slot_cycles(self) -> int:
        """Fixed duration of a static slot (used or not)."""
        return (
            self.guard_cycles
            + self.header_words
            + self.payload_words(self.static_payload_bytes)
        )

    def dynamic_slot_cycles(self, payload_bytes: int) -> int:
        """Duration of a dynamic slot carrying ``payload_bytes``."""
        if payload_bytes > self.max_dynamic_payload:
            raise ValueError(
                f"dynamic payload {payload_bytes} exceeds "
                f"{self.max_dynamic_payload}"
            )
        return (
            self.guard_cycles
            + self.header_words
            + self.payload_words(payload_bytes)
        )

    @property
    def empty_dynamic_slot_cycles(self) -> int:
        """A dynamic minislot nobody claims."""
        return max(1, self.guard_cycles)

    @property
    def static_efficiency(self) -> float:
        """Payload fraction of a fully used static slot (~0.9 @ defaults)."""
        return (
            self.payload_words(self.static_payload_bytes)
            / self.static_slot_cycles
        )

    @property
    def max_round_cycles(self) -> int:
        """Upper bound of one TDMA round — the static-slot guarantee."""
        return (
            self.static_slots * self.static_slot_cycles
            + self.dynamic_segment_cycles
            + (self.slots_per_bus - self.static_slots)
            * self.empty_dynamic_slot_cycles
        )

    @property
    def theoretical_dmax(self) -> int:
        """One concurrent frame per bus."""
        return self.num_buses
