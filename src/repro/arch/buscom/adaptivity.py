"""Application-dependent slot adaptation — BUS-COM's defining feature.

The BUS-COM source paper ("Scalable Application-dependent Network on
Chip Adaptivity for Dynamical Reconfigurable Real-Time Systems")
adapts the distribution of bus resources to the running application by
rewriting the LUT-based slot tables. :class:`AdaptiveArbiter` implements
that control loop:

* each *epoch*, it samples every module's transmit backlog;
* modules get static-slot shares proportional to their demand (with a
  guaranteed floor, so a quiet control module never starves);
* changed table entries are rewritten through
  :meth:`~repro.arch.buscom.arch.BusCom.reassign_slot`, charging the
  reconfiguration latency per entry — adaptation is never free.

The controller only touches the static segment; the dynamic segment
already self-arbitrates by priority.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.arch.buscom.arch import BusCom
from repro.arch.buscom.schedule import SlotKind
from repro.sim import Component, QuiescenceHint, Simulator


class AdaptiveArbiter(Component):
    """Epoch-based demand-proportional static-slot allocator."""

    def __init__(self, name: str, arch: BusCom, epoch_cycles: int = 2048,
                 min_slots_per_module: int = 1, hysteresis: float = 0.15):
        super().__init__(name)
        if epoch_cycles < 1:
            raise ValueError("epoch_cycles must be >= 1")
        if min_slots_per_module < 0:
            raise ValueError("min_slots_per_module must be >= 0")
        if not 0.0 <= hysteresis < 1.0:
            raise ValueError("hysteresis must be in [0, 1)")
        self.arch = arch
        self.epoch_cycles = epoch_cycles
        self.min_slots = min_slots_per_module
        self.hysteresis = hysteresis
        self.adaptations = 0
        self.slots_moved = 0
        self._demand: Dict[str, float] = {}
        self._samples = 0

    # ------------------------------------------------------------------
    def tick(self, sim: Simulator) -> QuiescenceHint:
        # sample demand continuously; act on epoch boundaries.  The
        # demand integral must cover every cycle, so the arbiter never
        # returns a quiescence hint — but its signature must be able to.
        for module, backlog in self.arch.total_backlog().items():
            self._demand[module] = self._demand.get(module, 0.0) + backlog
        self._samples += 1
        if sim.cycle and sim.cycle % self.epoch_cycles == 0:
            self._adapt(sim)
        return None

    # ------------------------------------------------------------------
    def _static_positions(self) -> List[Tuple[int, int]]:
        table = self.arch.table
        return [
            (b, s)
            for b in range(table.num_buses)
            for s in range(table.slots_per_bus)
            if table.entry(b, s).kind is SlotKind.STATIC
        ]

    def target_shares(self) -> Optional[Dict[str, int]]:
        """Demand-proportional static-slot counts (None: no demand)."""
        modules = list(self.arch.modules)
        if not modules:
            return None
        positions = self._static_positions()
        n_static = len(positions)
        if n_static == 0:
            return None
        mean_demand = {
            m: self._demand.get(m, 0.0) / max(self._samples, 1)
            for m in modules
        }
        total = sum(mean_demand.values())
        floor = min(self.min_slots, n_static // max(len(modules), 1))
        spare = n_static - floor * len(modules)
        shares = {m: floor for m in modules}
        if total <= 0:
            # no demand anywhere: spread evenly
            for i, m in enumerate(modules):
                shares[m] += spare // len(modules) + (
                    1 if i < spare % len(modules) else 0
                )
            return shares
        # largest-remainder proportional split of the spare slots
        quotas = {m: spare * mean_demand[m] / total for m in modules}
        for m in modules:
            shares[m] += math.floor(quotas[m])
        leftover = spare - sum(math.floor(quotas[m]) for m in modules)
        for m in sorted(modules, key=lambda x: quotas[x] - math.floor(quotas[x]),
                        reverse=True)[:leftover]:
            shares[m] += 1
        return shares

    def _adapt(self, sim: Simulator) -> None:
        shares = self.target_shares()
        self._reset_window()
        if shares is None:
            return
        table = self.arch.table
        current = {m: 0 for m in shares}
        positions = self._static_positions()
        for b, s in positions:
            owner = table.entry(b, s).owner
            if owner in current:
                current[owner] += 1
        # hysteresis: skip when the largest deviation is small
        n_static = len(positions)
        worst = max(abs(shares[m] - current.get(m, 0)) for m in shares)
        if worst <= self.hysteresis * n_static:
            return
        # move slots from over-provisioned to under-provisioned modules
        overs = {m: current[m] - shares[m] for m in shares
                 if current[m] > shares[m]}
        unders = [m for m in shares for _ in range(shares[m] - current[m])
                  if shares[m] > current[m]]
        moved = 0
        idx = 0
        for b, s in positions:
            owner = table.entry(b, s).owner
            if idx >= len(unders):
                break
            if owner in overs and overs[owner] > 0:
                target = unders[idx]
                idx += 1
                overs[owner] -= 1
                self.arch.reassign_slot(b, s, target)
                moved += 1
        if moved:
            self.adaptations += 1
            self.slots_moved += moved
            sim.stats.counter("buscom.adaptivity.epochs").inc()
            sim.stats.counter("buscom.adaptivity.slots_moved").inc(moved)

    def _reset_window(self) -> None:
        self._demand.clear()
        self._samples = 0
