"""The four surveyed communication architectures.

Each subpackage implements one architecture behind the common
:class:`~repro.arch.base.CommArchitecture` interface, so workloads,
metrics, and the comparison framework are architecture-agnostic.
"""

from typing import Any, Dict

from repro.arch.base import ArchPort, CommArchitecture, Message, MessageLog

ARCHITECTURES = ("rmboc", "buscom", "dynoc", "conochi")
#: static §2.2 baselines (no reconfiguration support; experiment E10)
BASELINES = ("sharedbus", "staticmesh")


def build_architecture(
    name: str,
    num_modules: int = 4,
    width: int = 32,
    seed: int = 1,
    engine: str = None,
    **kwargs: Any,
) -> CommArchitecture:
    """Construct an architecture with its own simulator and ``num_modules``
    attached hardware modules named ``m0`` .. ``m{n-1}``.

    ``engine`` selects the simulation backend (``"object"`` or
    ``"vec"``; None defers to ``REPRO_SIM_ENGINE``, default object) —
    see :func:`repro.sim.vec.make_simulator`.  Extra keyword arguments
    are forwarded to the architecture's config (e.g. ``num_buses`` for
    the bus systems, ``mesh`` for DyNoC, ``grid`` for CoNoChi).
    """
    key = name.lower().replace("-", "").replace("_", "")
    if engine is not None and "sim" in kwargs:
        raise ValueError("pass either engine= or sim=, not both")
    if "sim" not in kwargs:
        from repro.sim.vec.engine import make_simulator, resolve_engine

        resolved = resolve_engine(engine)
        if engine is not None or resolved != "object":
            # leave the builders' own default Simulator (and its
            # descriptive name) untouched unless an engine was chosen
            # explicitly or ambiently via REPRO_SIM_ENGINE
            kwargs["sim"] = make_simulator(name=key, engine=resolved)
    if key == "rmboc":
        from repro.arch.rmboc import build_rmboc

        return build_rmboc(num_modules=num_modules, width=width, seed=seed, **kwargs)
    if key == "buscom":
        from repro.arch.buscom import build_buscom

        return build_buscom(num_modules=num_modules, width=width, seed=seed, **kwargs)
    if key == "dynoc":
        from repro.arch.dynoc import build_dynoc

        return build_dynoc(num_modules=num_modules, width=width, seed=seed, **kwargs)
    if key == "conochi":
        from repro.arch.conochi import build_conochi

        return build_conochi(num_modules=num_modules, width=width, seed=seed, **kwargs)
    if key == "sharedbus":
        from repro.arch.baselines import build_sharedbus

        return build_sharedbus(num_modules=num_modules, width=width,
                               seed=seed, **kwargs)
    if key == "staticmesh":
        from repro.arch.baselines import build_staticmesh

        return build_staticmesh(num_modules=num_modules, width=width,
                                seed=seed, **kwargs)
    raise KeyError(
        f"unknown architecture {name!r}; known: "
        f"{ARCHITECTURES + BASELINES}"
    )


def build_all(num_modules: int = 4, width: int = 32, seed: int = 1) -> Dict[str, CommArchitecture]:
    """One instance of each architecture under identical top-level config."""
    return {
        name: build_architecture(name, num_modules=num_modules, width=width, seed=seed)
        for name in ARCHITECTURES
    }


__all__ = [
    "ARCHITECTURES",
    "BASELINES",
    "ArchPort",
    "CommArchitecture",
    "Message",
    "MessageLog",
    "build_all",
    "build_architecture",
]
