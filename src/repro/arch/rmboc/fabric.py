"""RMBoC cycle-level model: cross-points, segmented lanes, circuits.

The whole interconnect is a single clocked component that advances three
planes each cycle, in a fixed order that mirrors the hardware:

1. **data plane** — every established circuit moves one word per cycle
   (path latency 1, the headline property of Table 2);
2. **control plane** — REQUEST/CANCEL/DESTROY messages whose per-cross-
   point processing delay has elapsed take their next hop;
3. **network interfaces** — per-module queues start transfers on
   established channels, issue new REQUESTs, and retire idle circuits.

Lane accounting is exact: a lane (segment, bus) is held from the cycle a
REQUEST reserves it until the CANCEL/DESTROY that releases it is
*processed at that segment's cross-point*, so contention timing is
faithful to hop-by-hop hardware behaviour.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.arch.base import CommArchitecture, Message
from repro.arch.rmboc.config import RMBoCConfig
from repro.arch.rmboc.protocol import Channel, ChannelState, CtrlKind, CtrlMsg, Transfer
from repro.core.parameters import PAPER_TABLE_1, DesignParameters
from repro.fabric.area import AreaModel
from repro.fabric.timing import ClockModel
from repro.sim import SLEEP, Component, Simulator
from repro.sim.backoff import bounded_backoff
from repro.sim.vec.kernels import BatchKernel
from repro.sim.vec.store import CountdownSet


class RMBoC(CommArchitecture, Component):
    """The RMBoC interconnect for ``cfg.num_modules`` slots."""

    KEY = "rmboc"

    #: SoA-swapped container: in-flight word streams (QL006)
    VEC_FIELDS = ("_transfers",)
    #: state the object-code planes mutate that the kernel shares as-is
    VEC_SHARED = (
        "_ctrl", "_lanes", "_channels", "_chan_by_pair", "_queues",
        "_retry_at", "_fault_attempts", "_idle_since",
    )

    def __init__(self, sim: Simulator, cfg: RMBoCConfig,
                 area_model: Optional[AreaModel] = None,
                 clock_model: Optional[ClockModel] = None):
        CommArchitecture.__init__(self, sim, cfg.width)
        Component.__init__(self, "rmboc")
        self.cfg = cfg
        self.area_model = area_model or AreaModel()
        self.clock_model = clock_model or ClockModel()

        # lane occupancy: lanes[segment][bus] -> channel cid or None
        self._lanes: List[List[Optional[int]]] = [
            [None] * cfg.num_buses for _ in range(cfg.num_segments)
        ]
        self._frozen = [False] * cfg.num_modules
        # fault state: dead cross-points reject every REQUEST, and pairs
        # whose CANCEL was fault-induced back off exponentially (capped)
        self._dead_xps: set = set()
        self._fault_attempts: Dict[Tuple[str, str], int] = {}
        self._xp_module: Dict[int, str] = {}      # cross-point -> module name
        self._module_xp: Dict[str, int] = {}

        self._ctrl: List[CtrlMsg] = []
        self._transfers: List[Transfer] = []
        self._channels: Dict[int, Channel] = {}   # cid -> channel
        # per-module NI state
        self._queues: Dict[str, Deque[Message]] = {}
        # RMBoC's bandwidth adaptation: a pair may hold a *variable
        # number* of parallel circuits (Table 4 flexibility credit).
        self._chan_by_pair: Dict[Tuple[str, str], List[Channel]] = {}
        self._retry_at: Dict[Tuple[str, str], int] = {}
        self._idle_since: Dict[int, int] = {}     # cid -> cycle it went idle
        # runtime lane-allocation knob (defaults to the static config
        # cap; the control plane throttles it under backoff storms)
        self._channel_cap = cfg.channels_per_module
        # per-fabric cids keep traces of identical runs identical
        self._cid_seq = itertools.count()
        self._init_vec(sim)

    # ==================================================================
    # CommArchitecture interface
    # ==================================================================
    def _attach_impl(self, module: str, xp: Optional[int] = None, **_: object) -> None:
        if xp is None:
            used = set(self._xp_module)
            xp = next(i for i in range(self.cfg.num_modules) if i not in used)
        if not 0 <= xp < self.cfg.num_modules:
            raise ValueError(f"cross-point {xp} outside 0..{self.cfg.num_modules - 1}")
        if xp in self._xp_module:
            raise ValueError(f"cross-point {xp} already hosts {self._xp_module[xp]!r}")
        self._xp_module[xp] = module
        self._module_xp[module] = xp
        self._queues[module] = deque()

    def _detach_impl(self, module: str) -> None:
        xp = self._module_xp.pop(module)
        del self._xp_module[xp]
        q = self._queues.pop(module)
        if q:
            raise RuntimeError(
                f"detaching {module!r} with {len(q)} queued messages"
            )

    def _submit(self, msg: Message) -> None:
        if msg.src not in self._module_xp:
            raise KeyError(f"source module {msg.src!r} is not attached")
        self._queues[msg.src].append(msg)
        self.wake()  # new traffic ends any quiescent stretch

    def idle(self) -> bool:
        return (
            not self._ctrl
            and not self._transfers
            and not self._channels
            and all(not q for q in self._queues.values())
        )

    def descriptor(self) -> DesignParameters:
        return PAPER_TABLE_1["RMBoC"]

    def area_slices(self) -> int:
        return self.area_model.rmboc_total(
            self.cfg.num_modules, self.cfg.num_buses, self.cfg.width
        )

    def fmax_hz(self) -> float:
        return self.clock_model.fmax_hz("rmboc", self.cfg.width)

    def theoretical_dmax(self) -> int:
        return self.cfg.theoretical_dmax

    # ==================================================================
    # reconfiguration hooks
    # ==================================================================
    def freeze_slot(self, xp: int) -> None:
        """Freeze a cross-point during slot reconfiguration: established
        circuits through it keep streaming, new REQUESTs are cancelled."""
        self._frozen[xp] = True

    def unfreeze_slot(self, xp: int) -> None:
        self._frozen[xp] = False
        self.wake()  # held traffic may resume

    def module_at(self, xp: int) -> Optional[str]:
        return self._xp_module.get(xp)

    def xp_of(self, module: str) -> int:
        return self._module_xp[module]

    # ==================================================================
    # fault hooks (repro.faults)
    # ==================================================================
    def _spans(self, ch: Channel, xp: int) -> bool:
        lo, hi = min(ch.src_xp, ch.dst_xp), max(ch.src_xp, ch.dst_xp)
        return lo <= xp <= hi

    def fail_crosspoint(self, xp: int) -> List[Message]:
        """A cross-point dies.  Circuits crossing it are torn down with
        the existing CANCEL machinery (lane release, retry bookkeeping);
        words in flight on them are lost.  Returns the victim messages
        so the caller (the fault injector) can record the drops."""
        if not 0 <= xp < self.cfg.num_modules:
            raise ValueError(
                f"cross-point {xp} outside 0..{self.cfg.num_modules - 1}")
        if xp in self._dead_xps:
            raise ValueError(f"cross-point {xp} already failed")
        self._dead_xps.add(xp)
        now = self.sim.cycle
        victims: List[Message] = []
        for tr in [t for t in self._transfers if self._spans(t.channel, xp)]:
            self._transfers.remove(tr)
            victims.append(tr.msg)
        for ch in [c for c in self._channels.values()
                   if self._spans(c, xp)]:
            # the source NI's watchdog reclaims the whole circuit: purge
            # its in-flight control messages and cancel it outright
            self._ctrl = [cm for cm in self._ctrl if cm.channel is not ch]
            self._idle_since.pop(ch.cid, None)
            ch.state = ChannelState.CANCELLED
            self._finish_cancel(ch, now)
        self.wake()
        return victims

    def repair_crosspoint(self, xp: int) -> None:
        """The cross-point is back; let backed-off pairs retry at once."""
        if xp not in self._dead_xps:
            raise ValueError(f"cross-point {xp} is not failed")
        self._dead_xps.discard(xp)
        if not self._dead_xps and self._fault_attempts:
            now = self.sim.cycle
            for pair in self._fault_attempts:
                self._retry_at[pair] = now + 1
            self._fault_attempts.clear()
        self.wake()

    # ==================================================================
    # lane helpers
    # ==================================================================
    def _free_lane(self, segment: int) -> Optional[int]:
        for bus, owner in enumerate(self._lanes[segment]):
            if owner is None:
                return bus
        return None

    def _reserve(self, ch: Channel, segment: int, bus: int) -> None:
        assert self._lanes[segment][bus] is None
        self._lanes[segment][bus] = ch.cid
        ch.lanes[segment] = bus

    def _release(self, ch: Channel, segment: int) -> None:
        bus = ch.lanes.pop(segment, None)
        if bus is not None and self._lanes[segment][bus] == ch.cid:
            self._lanes[segment][bus] = None

    def lanes_in_use(self) -> int:
        return sum(
            1 for seg in self._lanes for owner in seg if owner is not None
        )

    @property
    def channel_cap(self) -> int:
        """Current per-module concurrent-circuit cap (lane allocation)."""
        return self._channel_cap

    def set_channel_cap(self, cap: int) -> None:
        """Re-allocate lane budget: cap concurrent circuits per module.

        The runtime counterpart of ``max_channels_per_module`` — the
        control plane lowers it during a backoff storm so competing
        REQUESTs stop re-colliding on saturated segments, and restores
        it afterwards.  Established circuits are never torn down; a
        lowered cap only gates *new* channel setup.
        """
        if not 1 <= cap <= self.cfg.num_buses:
            raise ValueError(
                f"channel cap {cap} outside 1..{self.cfg.num_buses}"
            )
        if cap == self._channel_cap:
            return
        self._channel_cap = cap
        self.sim.stats.counter("rmboc.channel_cap.set").inc()
        if self.sim.telemetering:
            self.sim.telemetry.count(self.sim.cycle,
                                     "rmboc.channel_cap.set")
        if self.sim.tracing:
            self.sim.emit("rmboc", "channel_cap", cap=cap)
        self.wake()  # a raised cap lets queued traffic open circuits

    # ==================================================================
    # per-cycle behaviour
    # ==================================================================
    def _make_vec_kernel(self):
        return _RMBoCVecKernel(self)

    def tick(self, sim: Simulator):
        if self.vec is not None:
            return self.vec.tick(sim)
        now = sim.cycle
        self._tick_data(now)
        self._tick_control(now)
        self._tick_ni(now)
        return self._quiescence(now)

    def _quiescence(self, now: int):
        """Quiescence hint for the activity-driven kernel.

        The fabric is inert when there are no in-flight control
        messages, no streaming transfers and no queued requests; the
        only self-generated future work is then retiring established
        idle circuits, which happens at a known linger deadline.
        Anything external (a new submit, an unfreeze) wakes us.
        """
        if self._ctrl or self._transfers:
            return None
        if any(self._queues.values()):
            return None
        if not self._channels:
            return SLEEP
        # Remaining channels should all be established-and-idle with a
        # linger clock running; if any lacks one (e.g. a REQUESTING
        # channel whose REPLY handshake is a scheduled event), stay hot.
        if len(self._idle_since) != len(self._channels):
            return None
        return max(min(self._idle_since.values()) + self.cfg.channel_linger,
                   now + 1)

    # -- data plane -----------------------------------------------------
    def _tick_data(self, now: int) -> None:
        active = 0
        finished: List[Transfer] = []
        for tr in self._transfers:
            if tr.words_left > 0:
                tr.words_left -= 1
                active += 1
            if tr.words_left == 0:
                finished.append(tr)
        self._note_parallelism(active)
        for tr in finished:
            self._transfers.remove(tr)
            self._finish_transfer(tr, now)

    def _finish_transfer(self, tr: Transfer, now: int) -> None:
        """Retire a completed transfer (already off ``_transfers``)."""
        words = self.cfg.words(tr.msg.payload_bytes)
        dist = tr.channel.distance
        stats = self.sim.stats
        stats.counter("rmboc.word_segments").inc(words * dist)
        stats.counter("rmboc.word_crosspoints").inc(words * (dist + 1))
        if self.sim.telemetering:
            # lane occupancy: the transfer held each reserved
            # (segment, bus) lane for its full word count
            tel = self.sim.telemetry
            for seg, bus in tr.channel.lanes.items():
                tel.link_busy(now, f"rmboc.lane.s{seg}b{bus}", words)
        if self.sim.journeying:
            # the word stream held the circuit from acceptance to now
            self.sim.journey.stamp_to(tr.msg.mid, "link_transit", now)
        self._deliver(tr.msg)
        self._idle_since[tr.channel.cid] = now

    # -- control plane ----------------------------------------------------
    def _next_xp(self, ch: Channel, at_xp: int) -> int:
        return at_xp + ch.direction

    def _segment_toward(self, ch: Channel, at_xp: int) -> int:
        """Segment index from ``at_xp`` toward the destination."""
        return at_xp if ch.direction > 0 else at_xp - 1

    def _segment_back(self, ch: Channel, at_xp: int) -> int:
        """Segment index from ``at_xp`` back toward the source."""
        return at_xp - 1 if ch.direction > 0 else at_xp

    def _tick_control(self, now: int) -> None:
        ready = [m for m in self._ctrl if m.ready_at <= now]
        for cm in ready:
            self._ctrl.remove(cm)
            if cm.kind is CtrlKind.REQUEST:
                self._process_request(cm, now)
            elif cm.kind is CtrlKind.CANCEL:
                self._process_cancel(cm, now)
            elif cm.kind is CtrlKind.DESTROY:
                self._process_destroy(cm, now)
            else:  # pragma: no cover - REPLY handled via scheduled establish
                raise AssertionError(cm.kind)

    def _process_request(self, cm: CtrlMsg, now: int) -> None:
        ch = cm.channel
        xp = cm.at_xp
        stats = self.sim.stats
        if self._dead_xps and xp in self._dead_xps:
            stats.counter("rmboc.cancel.dead_xp").inc()
            pair = (ch.src_module, ch.dst_module)
            self._fault_attempts[pair] = self._fault_attempts.get(pair, 0) + 1
            self._start_cancel(ch, xp, now)
            return
        if self._frozen[xp]:
            stats.counter("rmboc.cancel.frozen").inc()
            self._start_cancel(ch, xp, now)
            return
        if xp == ch.dst_xp:
            dst_mod = self._xp_module.get(xp)
            if dst_mod is None:
                stats.counter("rmboc.cancel.no_dest").inc()
                self._start_cancel(ch, xp, now)
                return
            # destination handshake + REPLY over the reserved circuit
            est = now + self.cfg.accept_cycles + self.cfg.reply_cycles
            self.sim.at(est, lambda s, c=ch: self._establish(c, s.cycle))
            return
        seg = self._segment_toward(ch, xp)
        bus = self._free_lane(seg)
        if bus is None:
            stats.counter("rmboc.cancel.blocked").inc()
            if self.sim.telemetering:
                # all lanes of this segment taken: the sender backs off
                # for at least the retry interval before trying again
                tel = self.sim.telemetry
                tel.count(now, "rmboc.blocked")
                tel.backpressure(now, f"rmboc.seg{seg}",
                                 self.cfg.retry_backoff)
            self._start_cancel(ch, xp, now)
            return
        self._reserve(ch, seg, bus)
        self._ctrl.append(
            CtrlMsg(CtrlKind.REQUEST, ch, self._next_xp(ch, xp),
                    ready_at=now + self.cfg.xp_proc_cycles)
        )

    def _establish(self, ch: Channel, now: int) -> None:
        if ch.state is not ChannelState.REQUESTING:
            return  # raced with a cancel (e.g. source slot frozen meanwhile)
        ch.state = ChannelState.ESTABLISHED
        ch.established_cycle = now
        if self._fault_attempts:
            # a successful setup resets the pair's fault backoff
            self._fault_attempts.pop((ch.src_module, ch.dst_module), None)
        self.sim.stats.counter("rmboc.channels.established").inc()
        if self.sim.tracing:
            self.sim.emit("rmboc", "establish", cid=ch.cid,
                          lanes=dict(ch.lanes))
            self.sim.span_end("rmboc", "setup", key=ch.cid,
                              status="established")
        self.sim.stats.histogram("rmboc.setup_latency").add(
            now - ch.requested_cycle
        )
        self._idle_since[ch.cid] = now
        self.wake()  # the circuit may start serving queued traffic

    def _start_cancel(self, ch: Channel, from_xp: int, now: int) -> None:
        ch.state = ChannelState.CANCELLED
        if from_xp == ch.src_xp:
            self._finish_cancel(ch, now)
        else:
            self._ctrl.append(
                CtrlMsg(CtrlKind.CANCEL, ch, from_xp,
                        ready_at=now + self.cfg.cancel_proc_cycles)
            )

    def _process_cancel(self, cm: CtrlMsg, now: int) -> None:
        ch, xp = cm.channel, cm.at_xp
        seg = self._segment_back(ch, xp)
        self._release(ch, seg)
        prev = xp - ch.direction
        if prev == ch.src_xp and not ch.lanes:
            self._finish_cancel(ch, now)
        else:
            self._ctrl.append(
                CtrlMsg(CtrlKind.CANCEL, ch, prev,
                        ready_at=now + self.cfg.cancel_proc_cycles)
            )

    def _drop_pair_entry(self, ch: Channel) -> None:
        pair = (ch.src_module, ch.dst_module)
        chans = self._chan_by_pair.get(pair)
        if chans and ch in chans:
            chans.remove(ch)
            if not chans:
                del self._chan_by_pair[pair]

    def _finish_cancel(self, ch: Channel, now: int) -> None:
        for seg in list(ch.lanes):
            self._release(ch, seg)
        self._channels.pop(ch.cid, None)
        self._drop_pair_entry(ch)
        src_mod = ch.src_module
        dst_mod = ch.dst_module
        if src_mod is not None and dst_mod is not None:
            # stagger retries by cross-point index: identical backoffs
            # would otherwise retry in lockstep and re-collide forever
            # on a saturated single bus (deterministic livelock)
            self._retry_at[(src_mod, dst_mod)] = (
                now + self.cfg.retry_backoff + ch.src_xp
            )
            if self._fault_attempts:
                # fault-induced cancels escalate: capped exponential
                # backoff so a dead cross-point isn't hammered forever
                n = self._fault_attempts.get((src_mod, dst_mod), 0)
                if n:
                    backoff = bounded_backoff(
                        self.cfg.retry_backoff, n,
                        cap=self.cfg.fault_backoff_cap,
                    )
                    self._retry_at[(src_mod, dst_mod)] = (
                        now + backoff + ch.src_xp
                    )
        self.sim.stats.counter("rmboc.channels.cancelled").inc()
        if self.sim.tracing:
            self.sim.emit("rmboc", "cancel", cid=ch.cid)
            self.sim.span_end("rmboc", "setup", key=ch.cid,
                              status="cancelled")
            self.sim.span_end("rmboc", "circuit", key=ch.cid,
                              status="cancelled")

    def _start_destroy(self, ch: Channel, now: int) -> None:
        ch.state = ChannelState.CLOSED
        self._drop_pair_entry(ch)
        self._idle_since.pop(ch.cid, None)
        self._ctrl.append(
            CtrlMsg(CtrlKind.DESTROY, ch, ch.src_xp,
                    ready_at=now + self.cfg.cancel_proc_cycles)
        )

    def _process_destroy(self, cm: CtrlMsg, now: int) -> None:
        ch, xp = cm.channel, cm.at_xp
        if xp != ch.dst_xp:
            seg = self._segment_toward(ch, xp)
            self._release(ch, seg)
            self._ctrl.append(
                CtrlMsg(CtrlKind.DESTROY, ch, self._next_xp(ch, xp),
                        ready_at=now + self.cfg.cancel_proc_cycles)
            )
        else:
            self._channels.pop(ch.cid, None)
            self.sim.stats.counter("rmboc.channels.destroyed").inc()
            if self.sim.tracing:
                self.sim.emit("rmboc", "destroy", cid=ch.cid)
                self.sim.span_end("rmboc", "circuit", key=ch.cid,
                                  status="destroyed")

    # -- network interfaces -------------------------------------------------
    def _tick_ni(self, now: int) -> None:
        for module in list(self._queues):
            self._ni_for(module, now)
        self._retire_idle_channels(now)

    def _module_channels(self, module: str) -> int:
        return sum(
            1
            for (src, _), chans in self._chan_by_pair.items()
            if src == module
            for ch in chans
            if ch.state in (ChannelState.REQUESTING,
                            ChannelState.ESTABLISHED)
        )

    def _ni_for(self, module: str, now: int) -> None:
        queue = self._queues[module]
        if self.sim.telemetering and queue:
            self.sim.telemetry.queue_depth(now, f"rmboc.ni.{module}",
                                           len(queue))
        if not queue:
            return
        xp = self._module_xp[module]
        if self._frozen[xp]:
            return  # slot under reconfiguration: hold traffic
        if self._dead_xps and xp in self._dead_xps:
            return  # local cross-point dead: NI cut off until repair
        # Serve the head-of-line message; later messages to other
        # destinations may also start if channel budget allows.
        busy_channels = {tr.channel.cid for tr in self._transfers}
        served: List[Message] = []
        # channels already spoken for by an earlier queued message this
        # cycle: a REQUESTING channel serves exactly one waiting message
        claimed_requests: Dict[Tuple[str, str], int] = {}
        for msg in list(queue):
            pair = (module, msg.dst)
            chans = self._chan_by_pair.get(pair, [])
            free = next(
                (ch for ch in chans
                 if ch.state is ChannelState.ESTABLISHED
                 and ch.cid not in busy_channels),
                None,
            )
            if free is not None:
                words = self.cfg.words(msg.payload_bytes)
                self._transfers.append(Transfer(free, words, msg))
                busy_channels.add(free.cid)
                self._idle_since.pop(free.cid, None)
                msg.accepted_cycle = now
                if self.sim.journeying:
                    # split the wait: NI queueing before the REQUEST,
                    # circuit setup, then queueing for a free lane on
                    # the established channel (cursor clipping makes
                    # pre-existing circuits attribute zero setup)
                    jr = self.sim.journey
                    jr.stamp_to(msg.mid, "ni_queue", free.requested_cycle)
                    jr.stamp_to(msg.mid, "setup_wait",
                                free.established_cycle)
                    jr.stamp_to(msg.mid, "ni_queue", now)
                served.append(msg)
                continue
            requesting = sum(
                1 for ch in chans if ch.state is ChannelState.REQUESTING
            )
            if claimed_requests.get(pair, 0) < requesting:
                claimed_requests[pair] = claimed_requests.get(pair, 0) + 1
                continue  # a circuit is already on its way for this message
            if self._retry_at.get(pair, -1) > now:
                continue
            if self._module_channels(module) >= self._channel_cap:
                continue
            if msg.dst not in self._module_xp:
                continue  # destination currently detached; wait
            self._open_channel(module, msg.dst, now)
            claimed_requests[pair] = claimed_requests.get(pair, 0) + 1
        for msg in served:
            queue.remove(msg)

    def _open_channel(self, src_module: str, dst_module: str, now: int) -> None:
        ch = Channel(src_xp=self._module_xp[src_module],
                     dst_xp=self._module_xp[dst_module],
                     requested_cycle=now,
                     src_module=src_module,
                     dst_module=dst_module,
                     cid=next(self._cid_seq))
        self._channels[ch.cid] = ch
        self._chan_by_pair.setdefault((src_module, dst_module), []).append(ch)
        self._ctrl.append(
            CtrlMsg(CtrlKind.REQUEST, ch, ch.src_xp,
                    ready_at=now + self.cfg.xp_proc_cycles)
        )
        self.sim.stats.counter("rmboc.channels.requested").inc()
        if self.sim.tracing:
            self.sim.emit("rmboc", "request", cid=ch.cid, src=src_module,
                          dst=dst_module)
            # circuit lifetime (request -> destroy/cancel) and the setup
            # handshake (request -> establish/cancel) as spans
            self.sim.span_begin("rmboc", "circuit", key=ch.cid, cid=ch.cid,
                                src=src_module, dst=dst_module)
            self.sim.span_begin("rmboc", "setup", key=ch.cid, cid=ch.cid,
                                src=src_module, dst=dst_module)

    def _retire_idle_channels(self, now: int) -> None:
        busy = {tr.channel.cid for tr in self._transfers}
        for cid, idle_since in list(self._idle_since.items()):
            ch = self._channels.get(cid)
            if ch is None or ch.state is not ChannelState.ESTABLISHED:
                self._idle_since.pop(cid, None)
                continue
            if cid in busy:
                continue
            pair = (ch.src_module, ch.dst_module)
            has_waiting = any(
                m.dst == pair[1] for m in self._queues.get(pair[0], ())
            )
            if has_waiting:
                continue
            if now - idle_since >= self.cfg.channel_linger:
                self._start_destroy(ch, now)


class _RMBoCVecKernel(BatchKernel):
    """Compiled tick for the RMBoC data plane.

    ``_transfers`` becomes a :class:`CountdownSet` keyed on
    ``words_left``: a whole quiescent-control stretch (no control
    message due, no NI decision able to change) advances every word
    stream with one array subtraction, and the skipped per-cycle
    parallelism samples are back-filled as a constant run.  Control
    plane and network interfaces stay the exact object code — they
    only run at wake cycles, where both backends execute identically.

    Sleep legality: the kernel only stretches past ``now + 1`` when
    every way the skipped ticks could differ from pure streaming has a
    computable deadline (first word-stream completion, earliest control
    message, earliest retry-backoff expiry, earliest idle-linger
    deadline) or arrives through an explicit ``wake()`` (submits,
    establishes, unfreeze, fault repair).  A queued message whose
    destination is not attached keeps the kernel on the per-cycle path:
    ``attach`` does not wake, so no deadline exists for it.  The
    streaming count is stashed at sleep time — ``fail_crosspoint`` may
    tear transfers down at event phase mid-stretch, but the object path
    would still have sampled every pre-fault cycle.
    """

    def __init__(self, arch: "RMBoC") -> None:
        super().__init__(arch)
        arch._transfers = CountdownSet("rmboc.transfers", "words_left",
                                       arch._transfers)
        self._last = self.sim.cycle
        self._streaming = 0

    def _catch_up(self, through: int) -> None:
        gap = through - self._last
        if gap <= 0:
            return
        if self._streaming:
            self.backfill_constant(self.arch._parallelism_hist, gap,
                                   float(self._streaming))
            self.arch._transfers.decrement(gap)
        self._last = through

    def flush(self, now: int) -> None:
        self._catch_up(now - 1)

    def tick(self, sim: Simulator):
        arch = self.arch
        now = sim.cycle
        self._catch_up(now - 1)
        self._last = now
        self._streaming = 0
        # data plane — CountdownSet form of _tick_data
        transfers = arch._transfers
        active = len(transfers)
        if active:
            transfers.decrement(1)
            finished = transfers.take_finished()
        else:
            finished = ()
        arch._note_parallelism(active)
        for tr in finished:
            arch._finish_transfer(tr, now)
        # control plane and NIs: object code, wake cycles only
        arch._tick_control(now)
        arch._tick_ni(now)
        hint = arch._quiescence(now)
        if sim.telemetering or hint is not None:
            # telemetry samples per executed cycle, or the fabric is
            # already quiescent — the object hint is authoritative
            return hint
        candidates = []
        remaining = len(transfers)
        if remaining:
            candidates.append(now + transfers.min_count())
        if arch._ctrl:
            candidates.append(min(cm.ready_at for cm in arch._ctrl))
        queued = any(arch._queues.values())
        if queued:
            candidates.extend(
                t for t in arch._retry_at.values() if t > now
            )
        if arch._idle_since:
            candidates.append(
                min(arch._idle_since.values()) + arch.cfg.channel_linger
            )
        nxt = min(candidates) if candidates else None
        if nxt is not None and nxt <= now + 1:
            # next deadline is immediate: stay hot.  Checked before the
            # queued-destination scan — on a saturated fabric (retries
            # every few cycles) that scan is the per-tick cost, and its
            # outcome would be the same ``None``.
            return None
        if queued:
            for q in arch._queues.values():
                for msg in q:
                    if msg.dst not in arch._module_xp:
                        return None  # attach does not wake: stay hot
        if nxt is None:
            # nothing has a deadline (and no stream in flight): progress
            # can only come from an explicit wake — establish event,
            # submit, repair, unfreeze
            return SLEEP
        self._streaming = remaining
        return nxt


def build_rmboc(
    num_modules: int = 4,
    width: int = 32,
    seed: int = 1,
    num_buses: int = 4,
    sim: Optional[Simulator] = None,
    cfg: Optional[RMBoCConfig] = None,
    **cfg_overrides: object,
) -> RMBoC:
    """Build an RMBoC system with modules ``m0`` .. ``m{n-1}`` attached."""
    if cfg is None:
        cfg = RMBoCConfig(num_modules=num_modules, num_buses=num_buses,
                          width=width, **cfg_overrides)  # type: ignore[arg-type]
    sim = sim or Simulator(name=f"rmboc[{cfg.num_modules}x{cfg.num_buses}]")
    arch = RMBoC(sim, cfg)
    sim.add(arch)
    for i in range(cfg.num_modules):
        arch.attach(f"m{i}", xp=i)
    return arch
