"""RMBoC — Reconfigurable Multiple Bus on Chip (Ahmadinia et al.).

A 1D array of *cross-points*, one per module slot, joined by ``k``
parallel buses that are segmented between neighbouring cross-points.
Channels are circuit-switched: a REQUEST walks hop-by-hop reserving one
free lane per segment (lanes of different buses may be mixed, the
cross-point bridges them); the destination answers with a REPLY over the
reserved circuit; CANCEL rolls back a blocked request; DESTROY tears an
idle channel down. Once established, data moves one word per cycle with
a path latency of one cycle — the defining advantage the survey's
Table 2 reports (minimum 8-cycle setup for the 4-module/4-bus system,
then single-cycle transfers).
"""

from repro.arch.rmboc.config import RMBoCConfig
from repro.arch.rmboc.fabric import RMBoC, build_rmboc
from repro.arch.rmboc.protocol import Channel, ChannelState, CtrlKind

__all__ = [
    "Channel",
    "ChannelState",
    "CtrlKind",
    "RMBoC",
    "RMBoCConfig",
    "build_rmboc",
]
