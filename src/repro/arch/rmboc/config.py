"""RMBoC configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RMBoCConfig:
    """Structural and timing parameters of an RMBoC instance.

    The timing constants reproduce the survey's Table 2 figures: with
    ``xp_proc_cycles = 2``, ``accept_cycles = 2`` and
    ``reply_cycles = 2`` the contention-free setup latency is
    ``2*d + 6`` for a distance of ``d`` segments — minimum 8 cycles for
    neighbouring modules, upper bound ``2*m + 4`` over an ``m``-slot
    system — and data then moves one word per cycle.
    """

    num_modules: int = 4
    num_buses: int = 4          # k parallel segmented buses
    width: int = 32             # link width in bits

    xp_proc_cycles: int = 2     # control-message processing per cross-point
    accept_cycles: int = 2      # destination module handshake
    reply_cycles: int = 2       # REPLY transit over the reserved circuit
    cancel_proc_cycles: int = 1  # CANCEL/DESTROY processing per cross-point
    retry_backoff: int = 8      # NI wait before re-requesting after CANCEL
    #: ceiling of the exponential backoff applied to re-requests whose
    #: CANCEL was caused by a dead cross-point (fault recovery)
    fault_backoff_cap: int = 4096
    channel_linger: int = 0     # cycles an idle channel is kept before DESTROY
    max_channels_per_module: int = 0  # 0 -> defaults to num_buses

    def __post_init__(self) -> None:
        if self.num_modules < 2:
            raise ValueError("RMBoC needs at least 2 modules")
        if self.num_buses < 1:
            raise ValueError("RMBoC needs at least 1 bus")
        if self.width < 1:
            raise ValueError("width must be >= 1")
        for f in ("xp_proc_cycles", "accept_cycles", "reply_cycles",
                  "cancel_proc_cycles", "retry_backoff"):
            if getattr(self, f) < 1:
                raise ValueError(f"{f} must be >= 1")
        if self.channel_linger < 0:
            raise ValueError("channel_linger must be >= 0")

    @property
    def num_segments(self) -> int:
        """Segments s per bus in the linear array (m-1)."""
        return self.num_modules - 1

    @property
    def channels_per_module(self) -> int:
        return self.max_channels_per_module or self.num_buses

    def setup_latency(self, distance: int) -> int:
        """Contention-free channel-setup latency over ``distance`` segments."""
        if not 1 <= distance <= self.num_segments:
            raise ValueError(f"distance {distance} outside 1..{self.num_segments}")
        return self.xp_proc_cycles * (distance + 1) + self.accept_cycles + self.reply_cycles

    @property
    def min_setup_latency(self) -> int:
        return self.setup_latency(1)

    @property
    def max_setup_latency(self) -> int:
        return self.setup_latency(self.num_segments)

    @property
    def theoretical_dmax(self) -> int:
        """d_max = s * k: one transfer per segment-lane."""
        return self.num_segments * self.num_buses

    def words(self, payload_bytes: int) -> int:
        """Payload words at the configured link width."""
        return -(-payload_bytes * 8 // self.width)
