"""RMBoC circuit-switching protocol objects.

The protocol is deliberately minimal (the survey: "the protocol is
rather simple and demands the system application to deal fairly with the
resources"): four control-message kinds and a per-channel FSM.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

_channel_ids = itertools.count()


class CtrlKind(enum.Enum):
    REQUEST = "request"   # forward, reserving one lane per segment
    REPLY = "reply"       # back over the reserved circuit: established
    CANCEL = "cancel"     # back, releasing reservations (blocked/refused)
    DESTROY = "destroy"   # forward, releasing the established circuit


class ChannelState(enum.Enum):
    REQUESTING = "requesting"
    ESTABLISHED = "established"
    CANCELLED = "cancelled"
    CLOSED = "closed"


@dataclass
class Channel:
    """A (possibly partially) reserved circuit between two cross-points.

    ``lanes`` maps segment index -> bus index: the lane reserved on that
    segment. Lanes of different buses may be chained — the cross-point
    bridges buses, which is what lets RMBoC beat a single bus's
    parallelism (d_max = s*k).
    """

    src_xp: int
    dst_xp: int
    state: ChannelState = ChannelState.REQUESTING
    lanes: Dict[int, int] = field(default_factory=dict)
    established_cycle: int = -1
    requested_cycle: int = -1
    src_module: Optional[str] = None
    dst_module: Optional[str] = None
    cid: int = field(default_factory=lambda: next(_channel_ids))

    def __post_init__(self) -> None:
        if self.src_xp == self.dst_xp:
            raise ValueError("channel endpoints must differ")

    @property
    def direction(self) -> int:
        """+1 when the destination lies right of the source, else -1."""
        return 1 if self.dst_xp > self.src_xp else -1

    @property
    def distance(self) -> int:
        return abs(self.dst_xp - self.src_xp)

    def segments(self):
        """Segment indices along the path, in traversal order.

        Segment ``i`` joins cross-points ``i`` and ``i+1``.
        """
        if self.direction > 0:
            return range(self.src_xp, self.dst_xp)
        return range(self.src_xp - 1, self.dst_xp - 1, -1)


@dataclass
class CtrlMsg:
    """A control message being processed by a cross-point."""

    kind: CtrlKind
    channel: Channel
    at_xp: int          # cross-point currently holding the message
    ready_at: int       # cycle its processing at `at_xp` completes


@dataclass
class Transfer:
    """An in-progress payload stream over an established channel."""

    channel: Channel
    words_left: int
    msg: object  # repro.arch.base.Message (kept loose to avoid a cycle)
