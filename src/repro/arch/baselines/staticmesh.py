"""A static mesh NoC baseline: DyNoC's transport without its
reconfigurability.

Same virtual cut-through router pipeline and plain XY routing (there
are never obstacles — the module set is fixed at design time, one
module per PE), but no router removal, no placement machinery, no
surround modes. The router is correspondingly smaller and faster
(``AreaModel.staticmesh_router``), which is exactly the area/clock
price DyNoC pays for supporting dynamic module exchange — measured by
experiment E10.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.arch.dynoc.arch import DyNoC
from repro.arch.dynoc.config import DyNoCConfig
from repro.core.parameters import (
    DesignParameters,
    ModuleShape,
    Switching,
    Topology,
)
from repro.fabric.geometry import Rect
from repro.sim import Simulator

STATICMESH_DESCRIPTOR = DesignParameters(
    name="StaticMesh",
    arch_type="NoC",
    topology=Topology.ARRAY_2D,
    module_size=ModuleShape.FIXED,   # fixed at design time
    switching=Switching.PACKET,
    bit_width=(8, 64),
    overhead=">= 4 bit",
    overhead_bits=4,
    max_payload_bytes=None,
    protocol_layers=1,
)


class StaticMesh(DyNoC):
    """DyNoC transport with the reconfiguration machinery welded shut."""

    KEY = "staticmesh"

    # ------------------------------------------------------------------
    def place_module(self, name: str, rect: Rect,
                     access: Optional[Tuple[int, int]] = None):
        if self.sim.cycle != 0:
            raise RuntimeError(
                "StaticMesh is a static design: modules are fixed at "
                "design time (cycle 0)"
            )
        if rect.w != 1 or rect.h != 1:
            raise ValueError(
                "StaticMesh hosts one design-time module per PE; "
                "multi-PE placement needs DyNoC"
            )
        return super().place_module(name, rect, access)

    def remove_module(self, name: str) -> Rect:
        raise RuntimeError(
            "StaticMesh is a static design: modules cannot be removed"
        )

    def _detach_impl(self, module: str) -> None:
        self.remove_module(module)

    # ------------------------------------------------------------------
    def descriptor(self) -> DesignParameters:
        return STATICMESH_DESCRIPTOR

    def area_slices(self) -> int:
        return self.area_model.staticmesh_total(
            self.active_routers(), self.cfg.width
        )

    def fmax_hz(self) -> float:
        return self.clock_model.fmax_hz("staticmesh", self.cfg.width)


def build_staticmesh(
    num_modules: int = 4,
    width: int = 32,
    seed: int = 1,
    mesh: Optional[Tuple[int, int]] = None,
    sim: Optional[Simulator] = None,
    **cfg_overrides: object,
) -> StaticMesh:
    """Smallest square mesh of design-time 1x1 modules."""
    if mesh is not None:
        cfg = DyNoCConfig(mesh_cols=mesh[0], mesh_rows=mesh[1],
                          width=width, **cfg_overrides)  # type: ignore[arg-type]
    else:
        cfg = DyNoCConfig.for_modules(num_modules, width=width,
                                      **cfg_overrides)  # type: ignore[arg-type]
    if num_modules > cfg.num_routers:
        raise ValueError(
            f"{num_modules} modules exceed {cfg.num_routers} mesh PEs"
        )
    sim = sim or Simulator(name=f"staticmesh[{cfg.mesh_cols}x{cfg.mesh_rows}]")
    arch = StaticMesh(sim, cfg)
    sim.add(arch)
    for i in range(num_modules):
        arch.attach(f"m{i}")
    return arch
