"""A conventional single shared bus (AMBA/CoreConnect-style baseline).

One bus, one central arbiter, round-robin grants, burst transfers of a
whole message per grant. Exactly the §2.2 textbook scheme: lowest area
and lowest idle latency of anything in the repository, d_max = 1, and
*no* reconfiguration support — module attach/detach after cycle 0
raises, and the reconfiguration manager refuses to operate on it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.arch.base import CommArchitecture, Message
from repro.core.parameters import (
    DesignParameters,
    ModuleShape,
    Switching,
    Topology,
)
from repro.fabric.area import AreaModel
from repro.fabric.timing import ClockModel
from repro.sim import SLEEP, Component, Simulator
from repro.sim.vec.kernels import BatchKernel

SHAREDBUS_DESCRIPTOR = DesignParameters(
    name="SharedBus",
    arch_type="Bus",
    topology=Topology.ARRAY_1D,
    module_size=ModuleShape.FIXED,
    switching=Switching.TIME_MULTIPLEXED,
    bit_width=(1, 64),
    overhead="addr phase",
    overhead_bits=None,
    max_payload_bytes=None,
    protocol_layers=1,
)


class SharedBus(CommArchitecture, Component):
    """Single-bus baseline: static design, central round-robin arbiter."""

    KEY = "sharedbus"

    #: no containers to swap — the batch kernel is pure cross-cycle
    #: burst batching over shared scalars (QL006)
    VEC_FIELDS = ()
    VEC_SHARED = ("_current", "_done_at", "_rr_next", "_queues")

    def __init__(self, sim: Simulator, num_modules: int = 4,
                 width: int = 32, grant_cycles: int = 2,
                 addr_cycles: int = 1,
                 area_model: Optional[AreaModel] = None,
                 clock_model: Optional[ClockModel] = None):
        if num_modules < 2:
            raise ValueError("need at least 2 modules")
        if grant_cycles < 1 or addr_cycles < 0:
            raise ValueError("invalid bus timing")
        CommArchitecture.__init__(self, sim, width)
        Component.__init__(self, "sharedbus")
        self.num_modules = num_modules
        self.grant_cycles = grant_cycles
        self.addr_cycles = addr_cycles
        self.area_model = area_model or AreaModel()
        self.clock_model = clock_model or ClockModel()
        self._queues: Dict[str, Deque[Message]] = {}
        self._rr_order: list = []
        self._rr_next = 0
        # current transfer: (message, done_at cycle)
        self._current: Optional[Message] = None
        self._done_at = -1
        self._grant_at = -1
        self._halted = False  # fault state: arbitration stopped
        self._init_vec(sim)

    # ------------------------------------------------------------------
    def _attach_impl(self, module: str, **_: object) -> None:
        if self.sim.cycle != 0:
            raise RuntimeError(
                "SharedBus is a static design: modules are fixed at "
                "design time (cycle 0)"
            )
        self._queues[module] = deque()
        self._rr_order.append(module)

    def _detach_impl(self, module: str) -> None:
        raise RuntimeError(
            "SharedBus is a static design: modules cannot be removed"
        )

    def _submit(self, msg: Message) -> None:
        if msg.src not in self._queues:
            raise KeyError(f"source module {msg.src!r} is not attached")
        self._queues[msg.src].append(msg)
        self.wake()  # new traffic ends any quiescent stretch

    def idle(self) -> bool:
        return self._current is None and all(
            not q for q in self._queues.values()
        )

    # ------------------------------------------------------------------
    def descriptor(self) -> DesignParameters:
        return SHAREDBUS_DESCRIPTOR

    def area_slices(self) -> int:
        return self.area_model.sharedbus_total(
            len(self._rr_order) or self.num_modules, self.width
        )

    def fmax_hz(self) -> float:
        return self.clock_model.fmax_hz("sharedbus", self.width)

    def theoretical_dmax(self) -> int:
        return 1  # the defining limit of a single shared bus

    # ------------------------------------------------------------------
    # fault hooks (repro.faults)
    # ------------------------------------------------------------------
    def halt_bus(self) -> List[Message]:
        """The bus fails: the in-flight burst is lost, arbitration
        stops.  Returns the victim messages for the fault injector."""
        if self._halted:
            raise RuntimeError("bus already halted")
        self._halted = True
        victims: List[Message] = []
        if self._current is not None:
            victims.append(self._current)
            self._current = None
            self._done_at = -1
        self.wake()
        return victims

    def resume_bus(self) -> None:
        if not self._halted:
            raise RuntimeError("bus is not halted")
        self._halted = False
        self.wake()

    # ------------------------------------------------------------------
    # arbiter rebalancing (repro.control)
    # ------------------------------------------------------------------
    def arbitration_order(self) -> List[str]:
        """Service order as the arbiter will scan it at the next grant."""
        n = len(self._rr_order)
        return [self._rr_order[(self._rr_next + i) % n] for i in range(n)]

    def backlogs(self) -> Dict[str, int]:
        """Messages queued at each module's send port."""
        return {m: len(q) for m, q in sorted(self._queues.items())}

    def set_arbitration_order(self, order: List[str]) -> None:
        """Rebalance arbiter priority: install a new scan order.

        The only runtime adaptation a single shared bus allows — the
        control plane rotates a starved module to the front of the
        round-robin scan.  ``order`` must be a permutation of the
        attached modules; the scan restarts at its head.
        """
        if sorted(order) != sorted(self._rr_order):
            raise ValueError(
                f"order {order!r} is not a permutation of the attached "
                f"modules {sorted(self._rr_order)!r}"
            )
        self._rr_order = list(order)
        self._rr_next = 0
        self.sim.stats.counter("sharedbus.arbiter.rebalanced").inc()
        if self.sim.telemetering:
            self.sim.telemetry.count(self.sim.cycle,
                                     "sharedbus.arbiter.rebalanced")
        if self.sim.tracing:
            self.sim.emit("sharedbus", "arbiter_rebalance",
                          head=order[0] if order else "")
        self.wake()

    # ------------------------------------------------------------------
    def words(self, payload_bytes: int) -> int:
        return -(-payload_bytes * 8 // self.width)

    def _make_vec_kernel(self):
        return _SharedBusVecKernel(self)

    def tick(self, sim: Simulator):
        if self.vec is not None:
            return self.vec.tick(sim)
        return self._tick_object(sim)

    def _tick_object(self, sim: Simulator):
        now = sim.cycle
        if self._halted:
            return SLEEP  # dead bus: resume_bus() wakes us
        if sim.telemetering:
            tel = sim.telemetry
            if self._current is not None:
                tel.link_busy(now, "sharedbus.bus")
            tel.queue_depth(
                now, "sharedbus.arbiter",
                sum(len(q) for q in self._queues.values()),
            )
        if self._current is not None:
            self._note_parallelism(1)
            if now >= self._done_at:
                self._deliver(self._current)
                self._current = None
            else:
                return None  # burst in progress: sample parallelism each cycle
        # arbitration: round-robin over modules with queued traffic
        # whose destination is attached
        n = len(self._rr_order)
        for i in range(n):
            module = self._rr_order[(self._rr_next + i) % n]
            queue = self._queues[module]
            if queue and queue[0].dst in self._queues:
                msg = queue.popleft()
                msg.accepted_cycle = now
                self._rr_next = (self._rr_next + i + 1) % n
                duration = (
                    self.grant_cycles
                    + self.addr_cycles
                    + self.words(msg.payload_bytes)
                )
                self._current = msg
                self._done_at = now + duration - 1
                if sim.journeying:
                    jr = sim.journey
                    # queued-since-creation wait ends at the grant; the
                    # burst (grant + addr phases + payload words) then
                    # occupies the bus through _done_at
                    jr.stamp_to(msg.mid, "arbitration_wait", now)
                    jr.stamp_to(msg.mid, "link_transit", self._done_at)
                self.sim.stats.counter("sharedbus.grants").inc()
                if sim.telemetering:
                    sim.telemetry.backpressure(
                        now, "sharedbus.bus", now - msg.created_cycle
                    )
                return None
        if any(self._queues.values()):
            return None  # queued traffic waiting on a detached destination
        return SLEEP  # bus and queues empty: wait for the next submit


class _SharedBusVecKernel(BatchKernel):
    """Compiled tick for shared-bus arbitration: a granted burst is
    fully deterministic until ``_done_at``, so the kernel sleeps
    through it and back-fills the per-cycle ``parallelism == 1``
    samples on wake.  Arbitration itself (queue scans, round-robin
    state) stays the object code, which only runs at grant/completion
    cycles — identical in both backends.

    The in-burst flag is stashed *at sleep time*: ``halt_bus`` may
    clear the live transfer at event phase mid-stretch, but the object
    path would still have sampled every cycle before the halt tick.
    """

    def __init__(self, arch: "SharedBus") -> None:
        super().__init__(arch)
        self._last = self.sim.cycle
        self._in_burst = False

    def _catch_up(self, through: int) -> None:
        if through > self._last:
            if self._in_burst:
                self.backfill_constant(
                    self.arch._parallelism_hist, through - self._last, 1.0)
            self._last = through

    def flush(self, now: int) -> None:
        self._catch_up(now - 1)

    def tick(self, sim: Simulator):
        arch = self.arch
        now = sim.cycle
        self._catch_up(now - 1)
        self._last = now
        self._in_burst = False
        hint = arch._tick_object(sim)
        if (hint is None and arch._current is not None
                and not sim.telemetering and arch._done_at > now + 1):
            self._in_burst = True
            return arch._done_at
        return hint


def build_sharedbus(num_modules: int = 4, width: int = 32, seed: int = 1,
                    sim: Optional[Simulator] = None,
                    **kwargs: object) -> SharedBus:
    sim = sim or Simulator(name=f"sharedbus[{num_modules}]")
    arch = SharedBus(sim, num_modules=num_modules, width=width,
                     **kwargs)  # type: ignore[arg-type]
    sim.add(arch)
    for i in range(num_modules):
        arch.attach(f"m{i}")
    return arch
