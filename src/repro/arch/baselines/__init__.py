"""Static baseline architectures — §2.2's conventional schemes.

The survey's §2.2 frames the four DPR architectures against the
*conventional* SoC interconnects they grew out of: a plain shared bus
(AMBA/CoreConnect-style) and a static mesh NoC. Neither supports
runtime module exchange — their module set is fixed at design time —
which makes them the reference points for quantifying what
reconfigurability costs (experiment E10): bus macros, freezeable
cross-points, removable routers, routing tables and control units all
show up as area, clock and latency deltas against these baselines.
"""

from repro.arch.baselines.sharedbus import SharedBus, build_sharedbus
from repro.arch.baselines.staticmesh import StaticMesh, build_staticmesh

__all__ = ["SharedBus", "StaticMesh", "build_sharedbus", "build_staticmesh"]
